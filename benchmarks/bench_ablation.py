"""Ablation benches for the design choices DESIGN.md calls out.

* why only feature HVs are locked (correlated value-lock bases leak);
* L = 1 is latency-free, L = 2 costs the paper's 21 %;
* P and L mutually enhance attack complexity (Fig. 7b observation);
* the Sec. 3 attack collapses against a locked deployment.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    layer_one_is_free,
    naive_attack_on_locked,
    pool_layer_synergy,
    render_ablations,
    single_layer_breakability,
    value_lock_leakage,
)
from repro.experiments.config import DEFAULT_SEED


def test_ablation_value_lock_leaks(benchmark):
    """A correlated value-lock base pool leaks the level order with
    zero oracle queries; the feature-lock pool is featureless."""
    result = benchmark.pedantic(
        lambda: value_lock_leakage(seed=DEFAULT_SEED), rounds=1, iterations=1
    )
    assert result.recovered_order_correct
    assert result.correlated_profile_error < 0.02
    assert result.orthogonal_max_deviation < 0.06


def test_ablation_layer_costs(benchmark):
    """L=1 free, L=2 at +21% — the Sec. 5.2 latency claims."""
    result = benchmark(layer_one_is_free)
    assert result.relative_time_l1 == 1.0
    assert abs(result.relative_time_l2 - 1.21) < 0.01


def test_ablation_pool_layer_synergy(benchmark):
    """Growing P from 100 to 700 buys 7x at L=1 but 343x at L=3."""
    result = benchmark(pool_layer_synergy)
    assert result.mutually_enhanced
    assert result.gain_at_l1 == 7.0
    assert result.gain_at_l3 == 343.0


def test_ablation_single_layer_breaks(benchmark):
    """An L=1 key falls to exhaustive sweep; the measured guess rate
    projects L=2 out of reach (the layer-depth design guidance)."""
    result = benchmark.pedantic(
        lambda: single_layer_breakability(seed=DEFAULT_SEED),
        rounds=1,
        iterations=1,
    )
    assert result.key_recovered
    assert result.l2_infeasible_factor > 1e3
    benchmark.extra_info["l1_seconds"] = round(result.measured_seconds, 3)
    benchmark.extra_info["l2_projected_seconds"] = result.projected_l2_seconds


def test_ablation_naive_attack_collapses(benchmark, bench_scale):
    """The unprotected divide-and-conquer sweep loses its dip on a
    locked deployment (no candidate beats chance)."""

    def run():
        return naive_attack_on_locked(scale=bench_scale, seed=DEFAULT_SEED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_ablations(
            value_lock_leakage(seed=DEFAULT_SEED),
            layer_one_is_free(),
            pool_layer_synergy(),
            result,
            single_layer_breakability(seed=DEFAULT_SEED),
        )
    )
    assert result.lock_removed_the_dip
    assert result.locked_best > 0.35
    assert result.unprotected_best < 0.15
