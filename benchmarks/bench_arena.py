"""Attack-arena throughput: the full robustness matrix, cold vs warm.

One timed run of the 4x6 attacker-vs-defender matrix
(:func:`repro.experiments.arena.run_arena`) against an empty disk cache,
then one against the cache the first run left behind. The delta isolates
what the per-defender system cache buys (pool + key generation + derived
feature matrix, built once per matrix *row* and replayed for every
attacker in it); the warm figure is the steady-state cost of re-scoring
the matrix, which is what nightly trending should watch.

Results land in ``BENCH_arena.json`` (schema-stable, uploaded by the
nightly CI perf job next to the other ``BENCH_*.json`` artifacts), so
arena cost becomes part of the repo's diffable perf trajectory. The
bench also re-asserts the matrix's headline invariant — the paper's
``L >= 2`` row holds against every strategy — because a perf number for
a wrong matrix would be worse than no number.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.arena import ARENA_VOLATILE_FIELDS, run_arena
from repro.experiments.cache import DiskCache
from repro.experiments.config import ExperimentScale
from repro.utils.timer import Timer

ARTIFACT = Path("BENCH_arena.json")

#: Bench schema version — bump on any RESULTS layout change.
SCHEMA_VERSION = 1

RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_artifact():
    """Write the collected payload once after the module's benches ran."""
    yield
    if RESULTS:
        ARTIFACT.write_text(json.dumps(RESULTS, indent=2))


@pytest.fixture(scope="module")
def arena_scale(quick) -> ExperimentScale:
    """Reduced matrix width in ``--quick`` smoke mode."""
    dim = 512 if quick else 2048
    return ExperimentScale(
        name="bench-arena",
        dim=dim,
        sample_scale=0.05,
        retrain_epochs=1,
        sweep_max_wrong=20,
        fig8_dim=dim,
        fig8_sample_scale=0.04,
    )


def _stable(cell) -> dict:
    return {
        k: v
        for k, v in cell.to_dict().items()
        if k not in ARENA_VOLATILE_FIELDS
    }


def _matrix_run(scale, cache):
    with Timer() as timer:
        result = run_arena(scale=scale, cache=cache)
    return result, timer.elapsed


def test_arena_matrix_cold_vs_warm(benchmark, quick, tmp_path, arena_scale):
    cache = DiskCache(tmp_path / "cache")
    cold_result, cold_seconds = _matrix_run(arena_scale, cache)
    warm = benchmark.pedantic(
        lambda: _matrix_run(arena_scale, cache), rounds=1, iterations=1
    )
    if warm is None:  # --quick disables pytest-benchmark
        warm = _matrix_run(arena_scale, cache)
    warm_result, warm_seconds = warm

    cells = cold_result.cells
    n_cells = len(cells)
    assert n_cells == 24  # 4 attackers x 6 defenders
    # cache replay must be invisible in the results
    assert [_stable(c) for c in warm_result.cells] == [
        _stable(c) for c in cells
    ]
    # the paper's L >= 2 row holds against every strategy
    assert all(
        c.features_recovered == 0 for c in cells if c.defender == "baseline-l2"
    )

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    print()
    print(
        f"arena matrix ({n_cells} cells, D={cells[0].dim}): "
        f"cold {cold_seconds:.2f}s, warm {warm_seconds:.2f}s "
        f"({n_cells / max(warm_seconds, 1e-9):.1f} cells/s warm, "
        f"cache speedup {speedup:.2f}x)"
    )
    broken = sum(
        1 for c in cells if c.features_recovered == c.features_attacked
    )
    RESULTS.update(
        {
            "schema": SCHEMA_VERSION,
            "bench": "arena",
            "quick": quick,
            "dim": int(cells[0].dim),
            "cells": n_cells,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_cells_per_second": n_cells / max(warm_seconds, 1e-9),
            "cache_speedup": speedup,
            "cells_broken": broken,
            "cells_locked_out": sum(1 for c in cells if c.locked_out),
        }
    )
    benchmark.extra_info.update(RESULTS)
