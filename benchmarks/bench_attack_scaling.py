"""Attack-cost scaling: reasoning time vs model width N.

The paper states the divide-and-conquer complexity is O(N^2); Table 1's
timings across the five benchmarks follow it. This bench measures the
attack on a family of models with growing N (same D, M) and checks the
fitted growth exponent lands near 2 (between linear and cubic — the
candidate-table build adds an O(N * D) term that flattens small N).
"""

from __future__ import annotations

import math

from repro.attack.pipeline import run_reasoning_attack
from repro.attack.threat_model import expose_model
from repro.encoding.record import RecordEncoder
from repro.utils.timer import Timer

WIDTHS = (64, 128, 256, 512)
M = 8


def _attack_seconds(n: int, dim: int) -> float:
    encoder = RecordEncoder.random(n, M, dim, rng=n)
    surface, _ = expose_model(encoder, binary=True, rng=n + 1)
    with Timer() as t:
        run_reasoning_attack(surface, rng=n + 2)
    return t.elapsed


def test_attack_scaling_quadratic(benchmark, bench_scale):
    """Time the attack across N in WIDTHS and fit the exponent."""

    def run():
        return {n: _attack_seconds(n, bench_scale.dim) for n in WIDTHS}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for n, seconds in times.items():
        print(f"  N={n:4d}: {seconds * 1e3:8.1f} ms")
    # fit log(time) ~ alpha * log(N) over the largest span
    alpha = math.log(times[WIDTHS[-1]] / times[WIDTHS[0]]) / math.log(
        WIDTHS[-1] / WIDTHS[0]
    )
    print(f"  fitted exponent: {alpha:.2f} (theory: 2.0)")
    assert 1.2 < alpha < 3.0
    benchmark.extra_info["exponent"] = round(alpha, 3)
    benchmark.extra_info["times_ms"] = {
        n: round(s * 1e3, 1) for n, s in times.items()
    }


def test_guess_budget_matches_formula(benchmark, bench_scale):
    """The executed guess count equals the N(N+1)/2 divide-and-conquer
    budget the O(N^2) claim counts."""

    def run():
        encoder = RecordEncoder.random(128, M, bench_scale.dim, rng=0)
        surface, _ = expose_model(encoder, binary=True, rng=1)
        return run_reasoning_attack(surface, rng=2)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.total_guesses == 128 * 129 // 2
