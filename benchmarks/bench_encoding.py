"""Encoding-path benchmarks: software throughput vs the cycle model.

The paper measures encoding overhead in FPGA clock cycles (Fig. 9); the
software encoder here shows the same *relative* behavior — L = 1 costs
the same as unprotected (derivation is cached/rotation-only), deeper
keys only pay at derivation time, and the per-sample multiply-accumulate
dominates — plus absolute per-sample figures for this machine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoding.record import RecordEncoder
from repro.hdlock.feature_factory import derive_feature_matrix
from repro.hdlock.lock import create_locked_encoder

N, M = 784, 16


@pytest.fixture(scope="module")
def dim(bench_scale):
    return bench_scale.dim


@pytest.fixture(scope="module")
def sample(dim):
    return np.random.default_rng(0).integers(0, M, N)


def test_encode_single_plain(benchmark, dim, sample):
    encoder = RecordEncoder.random(N, M, dim, rng=1)
    benchmark(encoder.encode, sample, True)


def test_encode_single_locked_l2(benchmark, dim, sample):
    system = create_locked_encoder(N, M, dim, layers=2, rng=2)
    benchmark(system.encoder.encode, sample, True)


def test_encode_batch_plain(benchmark, dim):
    encoder = RecordEncoder.random(N, M, dim, rng=3)
    batch = np.random.default_rng(4).integers(0, M, (16, N))
    benchmark(encoder.encode_batch, batch, True)


@pytest.mark.parametrize("layers", [1, 2, 3, 5])
def test_feature_derivation_cost(benchmark, dim, layers):
    """Key-application cost: one gather-rotate-multiply pass per layer.

    This is the work the FPGA bind unit pipelines; in software it is a
    one-time cost per (pool, key) pair, linear in L.
    """
    system = create_locked_encoder(N, M, dim, layers=layers, rng=layers)
    result = benchmark(derive_feature_matrix, system.base_pool, system.key)
    np.testing.assert_array_equal(result, system.encoder.feature_matrix)
