"""Encoding-path benchmarks: software throughput vs the cycle model.

The paper measures encoding overhead in FPGA clock cycles (Fig. 9); the
software encoder here shows the same *relative* behavior — L = 1 costs
the same as unprotected (derivation is cached/rotation-only), deeper
keys only pay at derivation time, and the per-sample multiply-accumulate
dominates — plus absolute per-sample figures for this machine.

The batch benches compare the vectorized engine
(:class:`repro.encoding.engine.EncodingPlan`) against the retired
per-sample loop (:func:`repro.encoding.engine.encode_batch_reference`)
and print the speedup (run with ``-s``); parity is asserted on every
run, so the speedup numbers are for bit-identical outputs. The packed
benches do the same for the fused packed path (dense binarize + pack
vs ``encode_batch_packed``) and for the bit-sliced fallback kernel
against the retained per-sample einsum.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.encoding.engine import encode_batch_reference
from repro.encoding.record import RecordEncoder
from repro.hdlock.feature_factory import derive_feature_matrix
from repro.hdlock.lock import create_locked_encoder
from repro.hv.packing import pack_words
from repro.hv.random import random_pool
from repro.memory.item_memory import FeatureMemory, LevelMemory

N, M = 784, 16


@pytest.fixture(scope="module")
def dim(bench_scale):
    return bench_scale.dim


@pytest.fixture(scope="module")
def sample(dim):
    return np.random.default_rng(0).integers(0, M, N)


def test_encode_single_plain(benchmark, dim, sample):
    encoder = RecordEncoder.random(N, M, dim, rng=1)
    benchmark(encoder.encode, sample, True)


def test_encode_single_locked_l2(benchmark, dim, sample):
    system = create_locked_encoder(N, M, dim, layers=2, rng=2)
    benchmark(system.encoder.encode, sample, True)


def test_encode_batch_plain(benchmark, dim):
    encoder = RecordEncoder.random(N, M, dim, rng=3)
    batch = np.random.default_rng(4).integers(0, M, (16, N))
    benchmark(encoder.encode_batch, batch, True)


@pytest.mark.parametrize(
    "shape",
    [
        pytest.param((512, 64), id="acceptance-512x64"),
        pytest.param((64, N), id="wide-64x784"),
    ],
)
def test_encode_batch_old_vs_new(benchmark, dim, quick, shape):
    """Old per-sample loop vs the batch engine, bit-exact, with speedup.

    The ``acceptance-512x64`` shape is the engine's acceptance
    criterion: a (512, 64) batch at paper dimensionality must encode at
    least 5x faster than the reference loop (the slow-marked test in
    ``tests/encoding/test_engine_perf.py`` enforces it; this bench
    reports the actual ratio at the active scale).
    """
    batch, n_features = shape
    if quick:
        batch = min(batch, 32)
    levels = M
    engine_side = RecordEncoder.random(n_features, levels, dim, rng=5)
    reference_side = RecordEncoder.random(n_features, levels, dim, rng=5)
    samples = np.random.default_rng(6).integers(0, levels, (batch, n_features))

    start = time.perf_counter()
    want = encode_batch_reference(
        reference_side.level_memory.matrix,
        reference_side.feature_matrix,
        samples,
        binary=True,
        rng=reference_side._tie_rng,
    )
    reference_seconds = time.perf_counter() - start

    # Parity is asserted on a fresh identically-seeded encoder: the
    # benchmarked encoder's tie-break rng advances across calibration
    # rounds, so its later outputs legitimately differ in tie bits.
    parity_side = RecordEncoder.random(n_features, levels, dim, rng=5)
    np.testing.assert_array_equal(parity_side.encode_batch(samples, True), want)

    benchmark(engine_side.encode_batch, samples, True)

    start = time.perf_counter()
    fresh = RecordEncoder.random(n_features, levels, dim, rng=5)
    _ = fresh.plan  # include the one-time plan compile in the honest figure
    fresh.encode_batch(samples, True)
    engine_seconds = time.perf_counter() - start
    print(
        f"\n[old-vs-new] B={batch} N={n_features} D={dim}: "
        f"reference {reference_seconds * 1e3:8.1f} ms | "
        f"engine (cold plan) {engine_seconds * 1e3:7.1f} ms | "
        f"speedup {reference_seconds / engine_seconds:6.1f}x"
    )


def test_encode_batch_packed_vs_dense(benchmark, dim, quick):
    """Fused packed path vs dense-binarize-then-pack, bit-exact.

    The packed path is the classifier's binary inference feed; the
    printed per-row figures are the PR 2 steady-state comparison in the
    ROADMAP's packed-path table.
    """
    batch, n_features = (32, 64) if quick else (512, 64)
    dense_side = RecordEncoder.random(n_features, M, dim, rng=9)
    packed_side = RecordEncoder.random(n_features, M, dim, rng=9)
    samples = np.random.default_rng(10).integers(0, M, (batch, n_features))
    _ = dense_side.plan
    _ = packed_side.plan

    start = time.perf_counter()
    want = pack_words(dense_side.encode_batch(samples, binary=True))
    dense_seconds = time.perf_counter() - start

    parity_side = RecordEncoder.random(n_features, M, dim, rng=9)
    np.testing.assert_array_equal(parity_side.encode_batch_packed(samples), want)

    benchmark(packed_side.encode_batch_packed, samples)

    fresh = RecordEncoder.random(n_features, M, dim, rng=9)
    _ = fresh.plan
    start = time.perf_counter()
    fresh.encode_batch_packed(samples)
    packed_seconds = time.perf_counter() - start
    print(
        f"\n[packed-vs-dense] B={batch} N={n_features} D={dim}: "
        f"dense+pack {dense_seconds * 1e6 / batch:7.1f} us/row | "
        f"fused packed {packed_seconds * 1e6 / batch:7.1f} us/row | "
        f"{dense_seconds / packed_seconds:5.2f}x"
    )


def test_encode_batch_bitslice_fallback(benchmark, dim, quick):
    """Bit-sliced kernel vs the per-sample einsum on non-linear levels."""
    batch, n_features, levels = (16, 64, 32) if quick else (128, 64, 32)
    encoder = RecordEncoder(
        FeatureMemory(random_pool(n_features, dim, rng=11)),
        LevelMemory(random_pool(levels, dim, rng=12)),
        rng=13,
    )
    plan = encoder.plan
    assert plan.mode == "bitslice"
    samples = np.random.default_rng(14).integers(0, levels, (batch, n_features))

    start = time.perf_counter()
    want = plan._accumulate_einsum(samples)
    reference_seconds = time.perf_counter() - start

    np.testing.assert_array_equal(plan.accumulate(samples), want)
    benchmark(plan.accumulate, samples)

    start = time.perf_counter()
    plan.accumulate(samples)
    bitslice_seconds = time.perf_counter() - start
    print(
        f"\n[bitslice-fallback] B={batch} N={n_features} M={levels} D={dim}: "
        f"per-sample einsum {reference_seconds * 1e6 / batch:7.1f} us/row | "
        f"bit-sliced {bitslice_seconds * 1e6 / batch:7.1f} us/row | "
        f"{reference_seconds / bitslice_seconds:5.2f}x"
    )


def test_encode_batch_nonbinary_engine(benchmark, dim, quick):
    batch = 32 if quick else 256
    encoder = RecordEncoder.random(N, M, dim, rng=7)
    samples = np.random.default_rng(8).integers(0, M, (batch, N))
    _ = encoder.plan
    benchmark(encoder.encode_batch, samples, False)


@pytest.mark.parametrize("layers", [1, 2, 3, 5])
def test_feature_derivation_cost(benchmark, dim, layers):
    """Key-application cost: one gather-rotate-multiply pass per layer.

    This is the work the FPGA bind unit pipelines; in software it is a
    one-time cost per (pool, key) pair, linear in L.
    """
    system = create_locked_encoder(N, M, dim, layers=layers, rng=layers)
    result = benchmark(derive_feature_matrix, system.base_pool, system.key)
    if result is not None:
        np.testing.assert_array_equal(result, system.encoder.feature_matrix)
