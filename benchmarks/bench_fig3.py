"""Fig. 3 — Hamming distances of the 784 feature guesses (MNIST shape).

Regenerates the guess-distance series for the attacked first pixel: the
correct candidate dips clearly below every wrong one. The paper plots
the raw series; the bench prints its summary statistics and asserts the
dip.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import DEFAULT_SEED
from repro.experiments.fig3 import render_fig3, run_fig3


def test_fig3_guess_distances(benchmark, bench_scale):
    """One deployment + one 784-candidate scoring pass."""

    def run():
        return run_fig3(scale=bench_scale, seed=DEFAULT_SEED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_fig3(result))

    assert result.distances.shape == (784,)
    assert int(np.argmin(result.distances)) == result.correct_index
    assert result.separation > 0
    benchmark.extra_info["correct_distance"] = result.correct_distance
    benchmark.extra_info["min_wrong"] = float(result.wrong_distances.min())


def test_fig3_nonbinary_confidence(benchmark, bench_scale):
    """The non-binary variant: correct guess at cosine exactly 1
    ('100% confidence', paper Sec. 3.2 last paragraph)."""

    def run():
        return run_fig3(scale=bench_scale, seed=DEFAULT_SEED, binary=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # scores are 1 - cosine for the non-binary surface
    assert result.correct_distance < 1e-9
    assert float(result.wrong_distances.min()) > 0.5
