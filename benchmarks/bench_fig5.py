"""Fig. 5 — HDLock security validation, binary model (four panels).

Setup: MNIST shape, P = N = 784, L = 2. Three of the four key
parameters of feature 1 are known; the fourth is swept. The correct
value scores ~0 Hamming distance on the difference support; every wrong
value sits near chance — identifiable, but one of ``(D*P)^2`` states.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SEED
from repro.experiments.fig56 import render_fig56, run_fig5


def test_fig5_binary_sweeps(benchmark, bench_scale):
    """All four parameter sweeps of the binary model."""

    def run():
        return run_fig5(scale=bench_scale, seed=DEFAULT_SEED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_fig56(result))

    assert result.all_separated
    for panel in result.panels:
        assert panel.correct_score < 0.05
        assert panel.scores[1:].min() > panel.correct_score
    benchmark.extra_info["separations"] = [
        round(p.separation, 4) for p in result.panels
    ]
