"""Fig. 6 — HDLock security validation, non-binary model (four panels).

Same setup as Fig. 5 but with the non-binary encoder: the criterion is
cosine similarity, and the correct guess scores exactly 1 while wrong
guesses hover near 0.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import DEFAULT_SEED
from repro.experiments.fig56 import render_fig56, run_fig6


def test_fig6_nonbinary_sweeps(benchmark, bench_scale):
    """All four parameter sweeps of the non-binary model."""

    def run():
        return run_fig6(scale=bench_scale, seed=DEFAULT_SEED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_fig56(result))

    assert result.all_separated
    for panel in result.panels:
        assert panel.correct_score == pytest.approx(1.0)
        assert panel.scores[1:].max() < 0.5
    benchmark.extra_info["separations"] = [
        round(p.separation, 4) for p in result.panels
    ]
