"""Fig. 7 — attack-complexity landscape (analytic).

Panel (a): guesses per feature over a (D, P) grid at L = 2. Panel (b):
guesses vs L for several pool sizes. Also verifies the four complexity
numbers the paper quotes for MNIST in Sec. 5.2 to < 1 % relative error.
"""

from __future__ import annotations

from repro.experiments.fig7 import render_fig7, run_fig7


def test_fig7_complexity_series(benchmark):
    """Both panels plus the quoted-number checkpoints."""
    result = benchmark(run_fig7)
    print()
    print(render_fig7(result))

    assert result.checkpoints_match
    # monomial growth in 7a: fixing P, guesses scale with D^2 at L=2
    by_pool = {}
    for dim, pool, guesses in result.surface_7a:
        by_pool.setdefault(pool, []).append((dim, guesses))
    for series in by_pool.values():
        (d1, g1), (d2, g2) = series[0], series[-1]
        assert g2 / g1 == (d2 / d1) ** 2
    # exponential growth in 7b: constant ratio D*P between layers
    for pool, curve in result.curves_7b.items():
        values = [g for _, g in curve]
        for a, b in zip(values, values[1:], strict=False):
            assert b // a == 10_000 * pool
    benchmark.extra_info["checkpoints"] = {
        c.label: c.computed for c in result.checkpoints
    }
