"""Fig. 8 — classification accuracy vs key depth L (0..5).

Trains one model per (benchmark, flavor, L) and asserts the paper's
finding: locking costs no accuracy at any depth (flat curves). At the
reduced bench scale the test sets are small, so "flat" is asserted with
a noise allowance; at ``REPRO_FULL_SCALE=1`` the curves tighten to the
paper's <1 % band.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SEED
from repro.experiments.fig8 import LAYER_RANGE, render_fig8, run_fig8

#: Accuracy-drop allowance: generous at reduced scale (test splits of
#: ~50 samples), tight at paper scale.
NOISE_ALLOWANCE = {"reduced": 0.15, "test": 0.25, "full": 0.02}


def test_fig8_accuracy_vs_layers(benchmark, bench_scale):
    """Full sweep: 5 benchmarks x 2 flavors x 6 depths = 60 models."""

    def run():
        return run_fig8(scale=bench_scale, seed=DEFAULT_SEED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_fig8(result))

    allowance = NOISE_ALLOWANCE.get(bench_scale.name, 0.15)
    benchmarks = sorted({c.benchmark for c in result.cells})
    for name in benchmarks:
        for binary in (False, True):
            drop = result.max_accuracy_drop(name, binary)
            assert drop < allowance, (
                f"{name} binary={binary}: locked model lost {drop:.3f} "
                f"accuracy vs L=0 (allowance {allowance})"
            )
    assert len(result.cells) == len(benchmarks) * 2 * len(LAYER_RANGE)
