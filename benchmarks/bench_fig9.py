"""Fig. 9 — relative encoding time vs key depth (cycle model).

Regenerates the five benchmark curves from the datapath model at the
paper's D = 10,000 and asserts its three observations: L = 1 is free,
L = 2 costs ~21 %, growth is linear and dataset-independent.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig9 import PAPER_L2_OVERHEAD, render_fig9, run_fig9


def test_fig9_relative_encoding_time(benchmark):
    """Cycle-model evaluation across all benchmark shapes and depths."""
    result = benchmark(run_fig9)
    print()
    print(render_fig9(result))

    for name, value in result.overhead_at(1).items():
        assert value == pytest.approx(1.0), f"{name}: L=1 must be free"
    for name, value in result.overhead_at(2).items():
        assert value == pytest.approx(PAPER_L2_OVERHEAD, abs=0.02), (
            f"{name}: L=2 overhead {value:.3f} vs paper 1.21"
        )
    # linearity: equal increments between consecutive depths
    for curve in result.curves.values():
        values = [v for _, v in sorted(curve)]
        increments = [b - a for a, b in zip(values, values[1:], strict=False)]
        assert max(increments) - min(increments) < 1e-6
    # dataset independence: curves nearly coincide
    assert result.curve_spread_at_l2 < 0.02
    benchmark.extra_info["l2_overhead"] = result.overhead_at(2)
