"""Fleet provisioning benchmarks: bulk keygen, key store, re-lock.

Answers the three questions a rollout plan needs numbers for — how many
keys per second provisioning sustains (and its speedup over the scalar
reference loop), how many bytes per key the packed store spends at rest
relative to the information floor, and how long re-locking one deployed
device takes end to end (fresh key + feature re-derivation).

Results accumulate in one payload written to ``BENCH_provisioning.json``
at module teardown, alongside the population-scale collision /
guessability report for the measured fleet shape — the file the nightly
CI job uploads as a machine-readable artifact.

Timings are taken with ``perf_counter`` directly rather than
pytest-benchmark calibration: each body is a single deliberate run at
fleet scale, and the derived metrics (keys/sec, speedup, bytes/key) are
the product, not the raw wall time.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.hdlock.keygen import generate_key_reference, generate_keys
from repro.hdlock.keystore import KeyStore
from repro.hdlock.lock import create_locked_encoder, rotate_system
from repro.hv.capacity import fleet_key_report
from repro.memory.key import storage_bits_per_key

ARTIFACT = Path("BENCH_provisioning.json")

#: MNIST feature count at key depth 2 — the paper's headline key shape.
N_FEATURES, LAYERS, POOL = 784, 2, 784

#: Keys in the scalar reference loop sample (looping the whole fleet
#: through the per-key path would take minutes for no extra precision).
LOOP_SAMPLE = 16

RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_artifact():
    """Write the collected payload once after the module's benches ran."""
    yield
    if RESULTS:
        ARTIFACT.write_text(json.dumps(RESULTS, indent=2))


@pytest.fixture(scope="module")
def fleet_devices(request) -> int:
    return 2_000 if request.config.getoption("--quick") else 100_000


@pytest.fixture(scope="module")
def fleet_batch(fleet_devices, bench_scale):
    start = time.perf_counter()
    batch = generate_keys(
        fleet_devices, N_FEATURES, LAYERS, POOL, bench_scale.dim, rng=0
    )
    elapsed = time.perf_counter() - start
    RESULTS["bulk_keygen"] = {
        "n_devices": fleet_devices,
        "n_features": N_FEATURES,
        "layers": LAYERS,
        "pool_size": POOL,
        "dim": bench_scale.dim,
        "seconds": elapsed,
        "keys_per_second": fleet_devices / elapsed,
    }
    return batch


def test_bulk_keygen_rate(fleet_batch, fleet_devices):
    assert len(fleet_batch) == fleet_devices
    print(
        f"\nbulk keygen: {RESULTS['bulk_keygen']['keys_per_second']:,.0f} "
        f"keys/s over {fleet_devices:,} devices"
    )


def test_reference_loop_rate_and_speedup(fleet_batch, bench_scale):
    start = time.perf_counter()
    for seed in range(LOOP_SAMPLE):
        generate_key_reference(
            N_FEATURES, LAYERS, POOL, bench_scale.dim, rng=seed
        )
    loop_rate = LOOP_SAMPLE / (time.perf_counter() - start)
    speedup = RESULTS["bulk_keygen"]["keys_per_second"] / loop_rate
    RESULTS["reference_loop"] = {
        "sample": LOOP_SAMPLE,
        "keys_per_second": loop_rate,
        "bulk_speedup": speedup,
    }
    print(f"\nreference loop: {loop_rate:,.1f} keys/s ({speedup:.1f}x slower)")


def test_bytes_per_key_at_rest(tmp_path, fleet_batch, bench_scale):
    store = KeyStore.create(
        tmp_path / "ks", N_FEATURES, LAYERS, POOL, bench_scale.dim
    )
    start = time.perf_counter()
    store.append(fleet_batch)
    append_seconds = time.perf_counter() - start
    floor_bits = storage_bits_per_key(
        N_FEATURES, LAYERS, POOL, bench_scale.dim
    )
    RESULTS["key_store"] = {
        "stride_bytes_per_key": store.stride_bytes,
        "floor_bits_per_key": floor_bits,
        "floor_ratio": store.stride_bytes * 8 / floor_bits,
        "bulk_append_seconds": append_seconds,
    }
    # acceptance: at-rest bytes/key within 1.25x of the packed floor
    assert store.stride_bytes * 8 <= floor_bits * 1.25
    print(
        f"\nat rest: {store.stride_bytes} B/key "
        f"({RESULTS['key_store']['floor_ratio']:.2f}x floor)"
    )


def test_relock_latency(bench_scale, quick):
    levels = 16
    system = create_locked_encoder(
        N_FEATURES, levels, bench_scale.dim, layers=LAYERS, rng=7
    )
    rounds = 1 if quick else 3
    start = time.perf_counter()
    for round_id in range(rounds):
        system = rotate_system(system, rng=round_id)
    per_relock = (time.perf_counter() - start) / rounds
    RESULTS["relock"] = {
        "rounds": rounds,
        "seconds_per_relock": per_relock,
        "dim": bench_scale.dim,
        "levels": levels,
    }
    print(f"\nre-lock: {per_relock * 1e3:.0f} ms/device")


def test_fleet_report_attached(fleet_devices, bench_scale):
    RESULTS["fleet_report"] = fleet_key_report(
        fleet_devices, N_FEATURES, LAYERS, POOL, bench_scale.dim
    ).to_dict()
    assert RESULTS["fleet_report"]["collision_probability"] == 0.0
