"""Micro-benchmarks of the hypervector substrate.

Not a paper figure — these keep the primitive costs visible (the attack
and the encoder are built from exactly these operations) and guard
against performance regressions in the kernels the Table 1 timings
depend on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hv.ops import bind, bundle, permute, sign
from repro.hv.packing import (
    hamming_packed,
    pack,
    pack_signs,
    pack_words,
    pairwise_hamming_packed,
)
from repro.hv.random import random_pool
from repro.hv.similarity import hamming, nearest_batch, pairwise_hamming

D = 10_000
POOL = 784


@pytest.fixture(scope="module")
def pool():
    return random_pool(POOL, D, rng=0)


@pytest.fixture(scope="module")
def pair(pool):
    return pool[0], pool[1]


def test_bind_throughput(benchmark, pair):
    a, b = pair
    benchmark(bind, a, b)


def test_bundle_pool(benchmark, pool):
    benchmark(bundle, pool)


def test_permute_throughput(benchmark, pair):
    benchmark(permute, pair[0], 4321)


def test_sign_with_ties(benchmark, pool):
    accum = bundle(pool)
    gen = np.random.default_rng(1)
    benchmark(sign, accum, gen)


def test_hamming_pool_vs_vector(benchmark, pool):
    benchmark(hamming, pool, pool[0])


def test_packed_hamming_pool_vs_vector(benchmark, pool):
    packed = pack(pool)
    row = pack(pool[0])
    result = benchmark(hamming_packed, packed, row, D)
    if result is not None:
        np.testing.assert_allclose(result, hamming(pool, pool[0]))


def test_pairwise_hamming_value_pool(benchmark):
    values = random_pool(16, D, rng=2)
    benchmark(pairwise_hamming, values)


def test_pairwise_hamming_chunked_large_pool(benchmark, pool):
    """Chunked Gram over the full feature-pool-sized candidate set."""
    benchmark(pairwise_hamming, pool, 128)


def test_pairwise_packed_stack_vs_stack(benchmark, pool):
    """Packed XOR-popcount scoring of a pool against a query stack —
    the attack's candidate-scoring access pattern."""
    queries = pack(random_pool(64, D, rng=3))
    packed = pack(pool)
    benchmark(pairwise_hamming_packed, packed, queries, D, 128)


def test_nearest_batch_pool(benchmark, pool):
    """Batched nearest-row lookup (classifier inference access pattern)."""
    targets = random_pool(64, D, rng=4)
    result = benchmark(nearest_batch, pool, targets)
    if result is not None:
        assert result.shape == (64,)


def test_pack_signs_fused(benchmark, pool):
    """Fused binarize + word-pack of an accumulator batch (the last
    stage of the packed encoding path), including tie draws."""
    accums = pool[:64].astype(np.int64) + pool[64:128].astype(np.int64)
    gen = np.random.default_rng(5)
    result = benchmark(pack_signs, accums, gen)
    if result is not None:
        assert result.dtype == np.uint64


def test_pairwise_hamming_words_stack_vs_stack(benchmark, pool):
    """uint64 bit-plane XOR-popcount scoring — the packed classifier's
    and attack scorer's inner kernel (word layout of the uint8 bench
    above)."""
    raw_queries = random_pool(64, D, rng=6)
    queries = pack_words(raw_queries)
    packed = pack_words(pool)
    result = benchmark(pairwise_hamming_packed, packed, queries, D, 128)
    if result is not None:
        np.testing.assert_allclose(
            result, pairwise_hamming_packed(pack(pool), pack(raw_queries), D, 128)
        )
