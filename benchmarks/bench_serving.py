"""Serving load test: micro-batched vs per-request inference throughput.

Drives ``concurrency`` asyncio client tasks against the in-process ASGI
app — every request goes through the full adapter (routing, JSON parse,
validation, key gate, batcher, hex response) with no socket or
cross-thread noise, so the measurement isolates what the serving stack
itself delivers. Two configurations of the same app are compared:

* **micro_batched** — the production window (concurrent requests
  coalesce into one packed batch kernel call);
* **per_request** — ``max_batch=1``, i.e. every request runs the kernel
  alone. Same routes, same JSON, same client: the only variable is the
  batcher window, so the ratio isolates what micro-batching buys.

The tenant shape is chosen to be encode-overhead-bound: fine level
quantization (64 levels) means the bit-sliced accumulate walks many
bit-planes per call, which is exactly the per-call fixed cost that
coalescing amortizes. This mirrors the fleet deployments the paper
targets — many small sensors, finely quantized features, one shared
service.

The acceptance gate of the serving PR lives here: at concurrency ≥ 16
the micro-batched path must sustain ≥ 4x the per-request throughput.
Results land in ``BENCH_serving.json`` (schema-stable, uploaded by the
nightly CI perf job next to ``BENCH_provisioning.json``) so serving
throughput becomes part of the repo's diffable perf trajectory.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serving.app import create_app
from repro.serving.registry import ModelRegistry, load_tenant

ARTIFACT = Path("BENCH_serving.json")

#: Bench schema version — bump on any RESULTS layout change.
#: v2: added the ``instrumentation`` overhead cell (metrics on vs off).
SCHEMA_VERSION = 2

#: Tenant shape: few features (small request bodies) but fine level
#: quantization and deep permutation stack, so the per-call fixed cost
#: of a single-sample encode dominates — the regime micro-batching is
#: for. See the module docstring.
N_FEATURES, LEVELS, N_CLASSES, LAYERS = 64, 64, 10, 4

#: Micro-batch window under test. ``max_batch == concurrency`` lets the
#: size trigger close every steady-state window immediately instead of
#: waiting out the timer; the wait only bounds stragglers.
MAX_BATCH, MAX_WAIT_S = 32, 0.002

CONCURRENCY = 32

#: Interleaved (metrics-on, metrics-off) run pairs for the overhead
#: cell; the gate reads the median paired difference.
OVERHEAD_PAIRS = 9

RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_artifact():
    """Write the collected payload once after the module's benches ran."""
    yield
    if RESULTS:
        ARTIFACT.write_text(json.dumps(RESULTS, indent=2))


@pytest.fixture(scope="module")
def serving_dim(quick) -> int:
    return 2048 if quick else 4096


@pytest.fixture(scope="module")
def requests_per_client(quick) -> int:
    return 30 if quick else 100


@pytest.fixture(scope="module")
def tenant_dir(tmp_path_factory, serving_dim):
    """One provisioned tenant at bench shape, reloaded per scenario."""
    from repro.serving.__main__ import build_demo_tenant

    directory = tmp_path_factory.mktemp("serving-bench") / "bench-tenant"
    build_demo_tenant(
        directory,
        "bench",
        seed=42,
        dim=serving_dim,
        n_features=N_FEATURES,
        levels=LEVELS,
        layers=LAYERS,
    )
    return directory


@pytest.fixture(scope="module")
def samples(requests_per_client) -> np.ndarray:
    """One distinct sample per (client, request) pair."""
    rng = np.random.default_rng(7)
    return rng.integers(
        0,
        LEVELS,
        size=(CONCURRENCY * requests_per_client, N_FEATURES),
        dtype=np.int64,
    )


async def _call(app, body: bytes) -> int:
    """One POST /v1/bench/encode through the ASGI interface; → status."""
    scope = {
        "type": "http",
        "asgi": {"version": "3.0"},
        "http_version": "1.1",
        "method": "POST",
        "path": "/v1/bench/encode",
        "raw_path": b"/v1/bench/encode",
        "query_string": b"",
        "headers": [(b"content-type", b"application/json")],
    }
    sent = False

    async def receive() -> dict:
        nonlocal sent
        if sent:
            return {"type": "http.disconnect"}
        sent = True
        return {"type": "http.request", "body": body, "more_body": False}

    status = 0

    async def send(message: dict) -> None:
        nonlocal status
        if message["type"] == "http.response.start":
            status = message["status"]

    await app(scope, receive, send)
    return status


def drive(
    tenant_dir: Path,
    samples: np.ndarray,
    concurrency: int,
    requests_per_client: int,
    max_batch: int,
    max_wait_s: float,
    instrument: bool = True,
) -> dict:
    """Run one scenario; returns its RESULTS entry."""
    registry = ModelRegistry()
    registry.add(load_tenant(tenant_dir))
    app = create_app(
        registry,
        max_batch=max_batch,
        max_wait_s=max_wait_s,
        instrument=instrument,
    )
    latencies = np.zeros(concurrency * requests_per_client)
    # Request bodies are pre-serialized: a load generator's own JSON
    # encoding is not part of the serving stack under test (the server
    # still parses every body).
    bodies = [
        json.dumps({"sample": row.tolist()}).encode() for row in samples
    ]

    async def worker(client_id: int, gate: asyncio.Event) -> None:
        base = client_id * requests_per_client
        await gate.wait()
        for index in range(requests_per_client):
            start = time.perf_counter()
            status = await _call(app, bodies[base + index])
            latencies[base + index] = time.perf_counter() - start
            assert status == 200, status

    async def main() -> tuple[float, object]:
        await app.service.startup()
        # Warm the kernel path (plan compile, BLAS first-touch) outside
        # the measured window.
        assert await _call(app, bodies[0]) == 200
        gate = asyncio.Event()
        tasks = [
            asyncio.ensure_future(worker(c, gate))
            for c in range(concurrency)
        ]
        await asyncio.sleep(0)  # let every worker reach the gate
        gate.set()
        wall_start = time.perf_counter()
        await asyncio.gather(*tasks)
        wall = time.perf_counter() - wall_start
        stats = app.service._lanes["bench"].encode.stats
        await app.service.shutdown()
        return wall, stats

    wall, stats = asyncio.run(main())
    total = concurrency * requests_per_client
    percentiles = np.percentile(latencies, [50, 95, 99]) * 1e3
    return {
        "requests": total,
        "concurrency": concurrency,
        "seconds": wall,
        "throughput_rps": total / wall,
        "latency_ms": {
            "p50": float(percentiles[0]),
            "p95": float(percentiles[1]),
            "p99": float(percentiles[2]),
            "mean": float(latencies.mean() * 1e3),
        },
        # -1 for the warmup request, which the stats saw but the
        # latency/throughput window did not.
        "server_batches": stats.batches - 1,
        "mean_rows_per_batch": (stats.rows - 1) / max(stats.batches - 1, 1),
        "largest_batch": stats.largest_batch,
    }


@pytest.fixture(scope="module")
def scenarios(tenant_dir, samples, requests_per_client, serving_dim, quick):
    RESULTS["schema_version"] = SCHEMA_VERSION
    RESULTS["config"] = {
        "dim": serving_dim,
        "n_features": N_FEATURES,
        "levels": LEVELS,
        "n_classes": N_CLASSES,
        "layers": LAYERS,
        "concurrency": CONCURRENCY,
        "requests_per_client": requests_per_client,
        "max_batch": MAX_BATCH,
        "max_wait_ms": MAX_WAIT_S * 1e3,
        "quick": quick,
    }
    RESULTS["micro_batched"] = drive(
        tenant_dir,
        samples,
        CONCURRENCY,
        requests_per_client,
        max_batch=MAX_BATCH,
        max_wait_s=MAX_WAIT_S,
    )
    RESULTS["per_request"] = drive(
        tenant_dir,
        samples,
        CONCURRENCY,
        requests_per_client,
        max_batch=1,
        max_wait_s=0.0,
    )
    RESULTS["speedup"] = (
        RESULTS["micro_batched"]["throughput_rps"]
        / RESULTS["per_request"]["throughput_rps"]
    )

    # Instrumentation-overhead cell: identical workload with the real
    # MetricsRegistry vs NullMetrics. Single runs on a shared CI box
    # are ±10% noisy, so the cell runs the two arms as temporally
    # adjacent *pairs* (drift cancels within a pair), alternates the
    # arm order (slow drift cancels across pairs), and reports the
    # median paired overhead — robust to the one-off scheduler stall
    # that would make a lone comparison flake either direction.
    def one_rps(instrument: bool) -> float:
        return drive(
            tenant_dir,
            samples,
            CONCURRENCY,
            requests_per_client,
            max_batch=MAX_BATCH,
            max_wait_s=MAX_WAIT_S,
            instrument=instrument,
        )["throughput_rps"]

    on_rps_all: list[float] = []
    off_rps_all: list[float] = []
    overheads: list[float] = []
    for index in range(OVERHEAD_PAIRS):
        if index % 2 == 0:
            on, off = one_rps(True), one_rps(False)
        else:
            off, on = one_rps(False), one_rps(True)
        on_rps_all.append(on)
        off_rps_all.append(off)
        overheads.append((off - on) / off * 100.0)
    RESULTS["instrumentation"] = {
        "on_rps": max(on_rps_all),
        "off_rps": max(off_rps_all),
        "pairs": OVERHEAD_PAIRS,
        "overhead_pct": statistics.median(overheads),
    }
    return RESULTS


def test_micro_batching_speedup_gate(scenarios):
    """Acceptance: ≥ 4x throughput from coalescing at concurrency ≥ 16."""
    batched = scenarios["micro_batched"]
    single = scenarios["per_request"]
    print(
        f"\nmicro-batched: {batched['throughput_rps']:,.0f} req/s "
        f"(p50 {batched['latency_ms']['p50']:.2f} ms, "
        f"p99 {batched['latency_ms']['p99']:.2f} ms, "
        f"mean batch {batched['mean_rows_per_batch']:.1f} rows)"
    )
    print(
        f"per-request:   {single['throughput_rps']:,.0f} req/s "
        f"(p50 {single['latency_ms']['p50']:.2f} ms, "
        f"p99 {single['latency_ms']['p99']:.2f} ms)"
    )
    print(f"speedup: {scenarios['speedup']:.1f}x")
    assert batched["mean_rows_per_batch"] > 2.0, (
        "micro-batching never coalesced; the measurement is not testing "
        "the batched path"
    )
    assert scenarios["speedup"] >= 4.0


def test_instrumentation_overhead_gate(scenarios):
    """Acceptance: full metrics cost ≤ 5% throughput vs NullMetrics."""
    cell = scenarios["instrumentation"]
    print(
        f"\ninstrumented:   {cell['on_rps']:,.0f} req/s\n"
        f"uninstrumented: {cell['off_rps']:,.0f} req/s\n"
        f"median overhead over {cell['pairs']} pairs: "
        f"{cell['overhead_pct']:.2f}%"
    )
    assert cell["overhead_pct"] <= 5.0


def test_artifact_schema_is_stable(scenarios):
    """Pin the BENCH_serving.json layout consumers rely on."""
    assert scenarios["schema_version"] == SCHEMA_VERSION
    for scenario in ("micro_batched", "per_request"):
        entry = scenarios[scenario]
        assert set(entry) == {
            "requests",
            "concurrency",
            "seconds",
            "throughput_rps",
            "latency_ms",
            "server_batches",
            "mean_rows_per_batch",
            "largest_batch",
        }
        assert set(entry["latency_ms"]) == {"p50", "p95", "p99", "mean"}
    assert scenarios["speedup"] > 0
    assert set(scenarios["instrumentation"]) == {
        "on_rps",
        "off_rps",
        "pairs",
        "overhead_pct",
    }
