"""Operating-envelope benches: where the Sec. 3 attack works and where
reduced dimensionality erodes it (beyond the paper's figures) — plus the
suite-level acceptance bench for the parallel runner (warm-cache
reduced-scale suite >= 2x faster at ``--jobs 4`` than serially on a
4-core machine)."""

from __future__ import annotations

import contextlib
import io
import os

import pytest

from repro.experiments.config import DEFAULT_SEED
from repro.experiments.sweeps import (
    margin_vs_features,
    recovery_vs_dim,
    render_sweeps,
)
from repro.utils.timer import Timer


def test_recovery_and_margin_sweeps(benchmark):
    """Recovery vs D and dip margin vs N, printed side by side."""

    def run():
        return (
            recovery_vs_dim(seed=DEFAULT_SEED),
            margin_vs_features(seed=DEFAULT_SEED),
        )

    recovery, margins = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_sweeps(recovery, margins))

    # recovery saturates at 100 % once D dominates N
    assert recovery[-1].feature_accuracy == 1.0
    # the dip survives up to the widest tested model at D = 2048
    assert all(p.separation > 0 for p in margins)
    benchmark.extra_info["recovery"] = {
        p.dim: p.feature_accuracy for p in recovery
    }


def _run_suite(jobs: int, tmp_path, tag: str, only: str | None) -> float:
    """One full runner invocation; returns its wall-clock seconds.

    Fresh ``--out`` per call (resume must not skip the work being
    measured) but one shared ``--cache`` so every timed run sees the
    same warm cache.
    """
    from repro.experiments.runner import main

    argv = [
        "--jobs",
        str(jobs),
        "--out",
        str(tmp_path / tag),
        "--cache",
        str(tmp_path / "cache"),
    ]
    if only:
        argv += ["--only", only]
    with contextlib.redirect_stdout(io.StringIO()):
        with Timer() as timer:
            assert main(argv) == 0
    return timer.elapsed


def test_runner_suite_parallel_speedup(benchmark, quick, tmp_path):
    """Acceptance: warm cache, full reduced suite, ``--jobs 4`` vs serial.

    Quick mode shrinks to the analytic subset and only smoke-checks the
    parallel path; the real >= 2x gate needs the full suite and at least
    4 physical cores.
    """
    only = "fig7,fig9" if quick else None
    # Warm-up run primes the shared cache (datasets, fig8 cells, the
    # fig5/6 locked system) and is not timed.
    _run_suite(4, tmp_path, "warmup", only)
    serial = _run_suite(1, tmp_path, "serial", only)
    parallel = benchmark.pedantic(
        lambda: _run_suite(4, tmp_path, "parallel", only),
        rounds=1,
        iterations=1,
    )
    if parallel is None:  # --quick disables pytest-benchmark
        parallel = _run_suite(4, tmp_path, "parallel-quick", only)
    speedup = serial / max(parallel, 1e-9)
    print()
    print(
        f"runner suite: serial {serial:.2f}s, --jobs 4 {parallel:.2f}s, "
        f"speedup {speedup:.2f}x (cores: {os.cpu_count()})"
    )
    benchmark.extra_info["serial_seconds"] = serial
    benchmark.extra_info["parallel_seconds"] = parallel
    benchmark.extra_info["speedup"] = speedup
    if quick:
        return
    if (os.cpu_count() or 1) < 4:
        pytest.skip("speedup gate needs >= 4 cores")
    assert speedup >= 2.0, (
        f"--jobs 4 only {speedup:.2f}x faster than serial "
        f"(serial {serial:.2f}s, parallel {parallel:.2f}s)"
    )
