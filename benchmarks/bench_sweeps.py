"""Operating-envelope benches: where the Sec. 3 attack works and where
reduced dimensionality erodes it (beyond the paper's figures)."""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SEED
from repro.experiments.sweeps import (
    margin_vs_features,
    recovery_vs_dim,
    render_sweeps,
)


def test_recovery_and_margin_sweeps(benchmark):
    """Recovery vs D and dip margin vs N, printed side by side."""

    def run():
        return (
            recovery_vs_dim(seed=DEFAULT_SEED),
            margin_vs_features(seed=DEFAULT_SEED),
        )

    recovery, margins = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_sweeps(recovery, margins))

    # recovery saturates at 100 % once D dominates N
    assert recovery[-1].feature_accuracy == 1.0
    # the dip survives up to the widest tested model at D = 2048
    assert all(p.separation > 0 for p in margins)
    benchmark.extra_info["recovery"] = {
        p.dim: p.feature_accuracy for p in recovery
    }
