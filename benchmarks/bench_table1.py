"""Table 1 — reasoning attack on all five benchmarks, both flavors.

Regenerates: original accuracy, recovered (stolen) accuracy, reasoning
time, plus the recovered-mapping fraction. The timing column of the
paper is machine-bound; the benchmark's shape assertions are the
portable conclusions:

* recovered accuracy == original accuracy (the IP leaks completely);
* reasoning time ordering FACE > MNIST > ISOLET ~ UCIHAR >> PAMAP
  (cost scales with N^2 * D).
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SEED
from repro.experiments.table1 import render_table1, run_table1


def test_table1_reasoning_attack(benchmark, bench_scale):
    """Full Table 1 run (10 model deployments, 10 attacks)."""

    def run():
        return run_table1(scale=bench_scale, seed=DEFAULT_SEED)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table1(rows))

    by_key = {(r.benchmark, r.binary): r for r in rows}
    for row in rows:
        # Theft: the clone matches the victim (Table 1's headline).
        assert abs(row.original_accuracy - row.recovered_accuracy) < 0.08
        assert row.feature_mapping_accuracy > 0.95
    # Reasoning-time ordering follows N^2 (paper's Table 1 shape).
    for binary in (False, True):
        times = {
            name: by_key[(name, binary)].reasoning_seconds
            for name in ("mnist", "ucihar", "face", "isolet", "pamap")
        }
        assert times["face"] > times["mnist"] > times["pamap"]
        assert times["isolet"] > times["pamap"]
        assert times["mnist"] > times["ucihar"]

    benchmark.extra_info["rows"] = [
        {
            "benchmark": r.benchmark,
            "binary": r.binary,
            "original": round(r.original_accuracy, 4),
            "recovered": round(r.recovered_accuracy, 4),
            "seconds": round(r.reasoning_seconds, 3),
        }
        for r in rows
    ]
