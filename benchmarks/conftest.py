"""Benchmark-harness configuration.

Every benchmark prints the same rows/series the paper reports (run with
``-s`` to see them alongside pytest-benchmark's timing table). Heavy
experiment benches run exactly once via ``benchmark.pedantic``; micro
benches let pytest-benchmark auto-calibrate.

Scale: benches default to the reduced experiment scale (D = 2048) so the
whole suite finishes in minutes on one core. ``REPRO_FULL_SCALE=1``
switches to the paper's D = 10,000.

Smoke mode: ``--quick`` disables pytest-benchmark calibration (every
benchmarked callable runs once) and tells scale-aware benches to shrink
their workloads — a CI-friendly pass that exercises every bench body in
seconds without producing publishable timings.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="bench smoke mode: run each benchmark body once, small shapes",
    )


def pytest_configure(config: pytest.Config) -> None:
    if config.getoption("--quick"):
        # One call per benchmark, no warmup/calibration rounds.
        config.option.benchmark_disable = True


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when the suite runs in ``--quick`` smoke mode."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def bench_scale():
    """The experiment scale shared by all benchmark modules."""
    from repro.experiments.config import active_scale

    return active_scale()
