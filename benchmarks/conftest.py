"""Benchmark-harness configuration.

Every benchmark prints the same rows/series the paper reports (run with
``-s`` to see them alongside pytest-benchmark's timing table). Heavy
experiment benches run exactly once via ``benchmark.pedantic``; micro
benches let pytest-benchmark auto-calibrate.

Scale: benches default to the reduced experiment scale (D = 2048) so the
whole suite finishes in minutes on one core. ``REPRO_FULL_SCALE=1``
switches to the paper's D = 10,000.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def bench_scale():
    """The experiment scale shared by all benchmark modules."""
    from repro.experiments.config import active_scale

    return active_scale()
