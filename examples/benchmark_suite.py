"""Mini evaluation suite: a fast pass over the paper's headline results.

Runs a trimmed Table 1 (two benchmarks), the Fig. 7 complexity
checkpoints, and the Fig. 9 latency curves — everything printable in
about a minute. The full regeneration of every table and figure lives in
``benchmarks/`` (pytest-benchmark) and ``python -m
repro.experiments.runner``.

    python examples/benchmark_suite.py
"""

from __future__ import annotations

from repro.experiments.config import REDUCED_SCALE
from repro.experiments.fig7 import render_fig7, run_fig7
from repro.experiments.fig9 import render_fig9, run_fig9
from repro.experiments.table1 import render_table1, run_table1


def main() -> None:
    print("[1/3] Table 1 (trimmed: ucihar + pamap, both flavors)")
    rows = run_table1(
        benchmarks=("ucihar", "pamap"), scale=REDUCED_SCALE, seed=3
    )
    print(render_table1(rows))

    print("\n[2/3] Fig. 7 complexity checkpoints")
    print(render_fig7(run_fig7()))

    print("\n[3/3] Fig. 9 latency curves (cycle model)")
    print(render_fig9(run_fig9()))


if __name__ == "__main__":
    main()
