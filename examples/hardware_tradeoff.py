"""Exploring the FPGA cost model behind Fig. 9.

Prints the encoder cycle schedule, the relative-latency curves for the
five benchmark shapes, resource estimates per key depth, and the
secure-memory accounting that motivates the whole threat model (the key
is kilobits; the hypervector memory is megabits).

    python examples/hardware_tradeoff.py
"""

from __future__ import annotations

from repro.data.benchmarks import BENCHMARK_ORDER, BENCHMARKS
from repro.hardware import (
    DatapathConfig,
    encoding_cycles,
    encoding_seconds,
    estimate_resources,
    key_to_model_ratio,
    model_footprint,
    relative_time_series,
    render_resource_table,
    schedule_encoder,
)
from repro.hdlock import generate_key
from repro.utils.tables import render_table

D = 10_000
N = 784  # MNIST shape


def main() -> None:
    cfg = DatapathConfig()
    print(
        f"datapath: {cfg.accumulate_lanes} accumulate lanes, "
        f"{cfg.bind_lanes} bind lanes, {cfg.clock_mhz:.0f} MHz"
    )

    # Per-feature schedule at L = 0 and L = 3.
    for layers in (0, 3):
        schedule = schedule_encoder(N, D, layers, cfg)
        stages = ", ".join(
            f"{s.name}={s.beats} beats" for s in schedule.stages
        )
        print(
            f"L={layers}: {stages}; {schedule.cycles_per_sample} cycles "
            f"({encoding_seconds(N, D, layers, cfg) * 1e6:.1f} us) per sample"
        )

    # Fig. 9 curves.
    shapes = {name: BENCHMARKS[name].n_features for name in BENCHMARK_ORDER}
    curves = relative_time_series(range(1, 6), shapes, D, cfg)
    rows = [
        [name.upper()] + [f"{value:.3f}" for _, value in curve]
        for name, curve in curves.items()
    ]
    print()
    print(
        render_table(
            ["benchmark"] + [f"L={l}" for l in range(1, 6)],
            rows,
            title="Relative encoding time (cycle-count ratio, Fig. 9)",
        )
    )

    # Resource estimates.
    print()
    print(
        render_resource_table(
            [estimate_resources(N, 16, D, layers, cfg) for layers in range(6)]
        )
    )

    # Secure-memory accounting: why only the mapping is protected.
    footprint = model_footprint(N, 16, D, n_classes=10)
    key = generate_key(N, 2, N, D, rng=0)
    print(
        f"\nmodel hypervector memory: {footprint.total_bytes / 1024:.0f} KiB "
        f"packed; HDLock key: {key.storage_bits() / 1024:.1f} Kibit "
        f"({key_to_model_ratio(key, footprint):.2%} of the model) — only "
        f"the key fits in tamper-proof storage"
    )

    # Baseline cycle counts per benchmark, for context.
    print()
    rows = [
        (
            name.upper(),
            BENCHMARKS[name].n_features,
            encoding_cycles(BENCHMARKS[name].n_features, D, 0, cfg),
            f"{encoding_seconds(BENCHMARKS[name].n_features, D, 0, cfg) * 1e6:.1f}",
        )
        for name in BENCHMARK_ORDER
    ]
    print(
        render_table(
            ["benchmark", "N", "cycles/sample", "us/sample"],
            rows,
            title="Baseline encoder latency (modeled)",
        )
    )


if __name__ == "__main__":
    main()
