"""Defending with HDLock (Sec. 4): lock, validate, and price the key.

Shows the defender's workflow end to end: retrofit a 2-layer lock onto
an existing model, demonstrate the old attack collapses, run the paper's
Sec. 4.2 worst-case validation (three key parameters leaked, one swept),
and print the security/latency trade-off table for choosing L.

    python examples/lock_and_defend.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    RecordEncoder,
    expose_locked_model,
    load_benchmark,
    lock_model,
    sweep_parameter,
    train_model,
)
from repro.attack import as_attack_surface, guess_distance_series
from repro.attack.complexity import reasoning_seconds_estimate
from repro.hdlock import render_tradeoff_table, tradeoff_table

DIM = 2048
SEED = 23


def main() -> None:
    dataset = load_benchmark("ucihar", rng=SEED, sample_scale=0.2)
    plain = RecordEncoder.random(
        dataset.n_features, dataset.levels, DIM, rng=SEED
    )
    baseline = train_model(
        plain,
        dataset.train_x,
        dataset.train_y,
        n_classes=dataset.n_classes,
        binary=True,
        retrain_epochs=2,
        rng=SEED,
    )
    baseline_accuracy = baseline.model.score(dataset.test_x, dataset.test_y)
    print(f"unprotected model accuracy: {baseline_accuracy:.3f}")

    # Lock with a two-layer key and retrain the class memory under it.
    system, locked_training = lock_model(
        plain,
        dataset.train_x,
        dataset.train_y,
        n_classes=dataset.n_classes,
        layers=2,
        binary=True,
        retrain_epochs=2,
        rng=SEED + 1,
    )
    locked_accuracy = locked_training.model.score(
        dataset.test_x, dataset.test_y
    )
    print(
        f"locked model accuracy:      {locked_accuracy:.3f} "
        f"(L={system.layers}, P={system.pool_size}, "
        f"key={system.key.storage_bits()} bits)"
    )

    # The Sec. 3 attack loses its signal against the locked deployment.
    surface, _secure = expose_locked_model(system.encoder, binary=True)
    series = guess_distance_series(
        as_attack_surface(surface), np.arange(dataset.levels), feature=0
    )
    print(
        f"\nold attack vs locked model: best candidate scores "
        f"{series.min():.3f} (chance ~0.5 on the support; no dip, "
        f"no mapping)"
    )

    # Worst case (Sec. 4.2): everything but one parameter has leaked.
    sweep = sweep_parameter(
        surface, system.key, "rotation", layer=0, max_wrong=400
    )
    per_guess = 1e-6  # an optimistic attacker: 1 us per guess
    guesses = surface.dim * surface.pool_size  # remaining single param
    print(
        f"sweeping the one unknown rotation: correct scores "
        f"{sweep.correct_score:.3f}, best wrong {sweep.scores[1:].min():.3f} "
        f"— detectable, but that was 1 of {guesses:,} states for ONE "
        f"parameter of ONE feature"
    )
    from repro.attack.complexity import hdlock_total_guesses

    total = hdlock_total_guesses(
        dataset.n_features, surface.dim, surface.pool_size, 2
    )
    years = reasoning_seconds_estimate(total, per_guess) / (365 * 24 * 3600)
    print(
        f"full key search: {total:.2e} guesses ~= {years:.1e} years at "
        f"{per_guess * 1e6:.0f} us/guess"
    )

    # Choosing L: the defender's trade-off table (paper Sec. 5.2).
    print()
    print(
        render_tradeoff_table(
            tradeoff_table(
                dataset.n_features, 10_000, dataset.n_features, range(1, 6)
            )
        )
    )


if __name__ == "__main__":
    main()
