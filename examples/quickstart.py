"""Quickstart: train an HDC classifier, deploy it, see why it needs HDLock.

Runs in a few seconds on a laptop::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    RecordEncoder,
    expose_model,
    load_benchmark,
    lock_model,
    run_reasoning_attack,
    train_model,
    verify_mapping,
)

DIM = 2048
SEED = 7


def main() -> None:
    # 1. Data: a PAMAP-shaped benchmark (27 IMU channels, 5 activities).
    dataset = load_benchmark("pamap", rng=SEED, sample_scale=0.4)
    print(
        f"dataset: {dataset.spec.name}, N={dataset.n_features} features, "
        f"C={dataset.n_classes} classes, M={dataset.levels} levels"
    )

    # 2. Train the victim model (this is the IP worth protecting).
    encoder = RecordEncoder.random(
        dataset.n_features, dataset.levels, DIM, rng=SEED
    )
    training = train_model(
        encoder,
        dataset.train_x,
        dataset.train_y,
        n_classes=dataset.n_classes,
        binary=True,
        retrain_epochs=2,
        rng=SEED,
    )
    accuracy = training.model.score(dataset.test_x, dataset.test_y)
    print(f"trained binary HDC model: test accuracy {accuracy:.3f}")

    # 3. Deploy it under the paper's threat model: hypervectors public
    #    (shuffled), index mapping in secure memory, oracle queryable.
    surface, truth = expose_model(encoder, binary=True, rng=SEED + 1)
    print(
        f"deployed: {len(surface.feature_pool)} unindexed feature HVs and "
        f"{len(surface.value_pool)} value HVs in public memory"
    )

    # 4. One attacker session later, the mapping is gone.
    result = run_reasoning_attack(surface, rng=SEED + 2)
    verdict = verify_mapping(result, truth)
    print(
        f"reasoning attack: {result.total_queries} oracle queries, "
        f"{result.total_guesses} guesses, {result.total_seconds * 1e3:.0f} ms "
        f"-> mapping recovered: {verdict.exact}"
    )

    # 5. The fix: lock the encoder with a 2-layer HDLock key, retrain.
    system, locked_training = lock_model(
        encoder,
        dataset.train_x,
        dataset.train_y,
        n_classes=dataset.n_classes,
        layers=2,
        binary=True,
        retrain_epochs=2,
        rng=SEED + 3,
    )
    locked_accuracy = locked_training.model.score(
        dataset.test_x, dataset.test_y
    )
    print(
        f"HDLock (L=2, P={system.pool_size}): test accuracy "
        f"{locked_accuracy:.3f} (no loss), key of "
        f"{system.key.storage_bits()} bits in tamper-proof memory"
    )


if __name__ == "__main__":
    main()
