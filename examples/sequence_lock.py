"""Locking a sequence (n-gram) HDC model — beyond the paper's record encoder.

The paper locks the record encoder's feature memory; the same privileged
-encoding idea applies to any HDC item memory. This example builds a
small language-identification task over synthetic 3-symbol-structured
"languages", trains an n-gram HDC classifier, and shows the locked
variant matches the plain one while keeping the alphabet mapping keyed.

    python examples/sequence_lock.py
"""

from __future__ import annotations

import numpy as np

from repro import NGramEncoder
from repro.hdlock import generate_key
from repro.hv.ops import sign
from repro.hv.random import random_pool
from repro.hv.similarity import hamming

ALPHABET = 12
DIM = 2048
N_GRAM = 3
SEQ_LEN = 60
CLASSES = 4
TRAIN, TEST = 40, 20
SEED = 5


def make_language_samples(rng: np.random.Generator):
    """Each 'language' is a first-order Markov chain over the alphabet."""
    transitions = []
    for _ in range(CLASSES):
        # sparse, peaked transition tables produce distinctive n-grams
        table = rng.dirichlet(np.full(ALPHABET, 0.12), size=ALPHABET)
        transitions.append(table)

    def sample(cls: int) -> np.ndarray:
        seq = np.empty(SEQ_LEN, dtype=np.int64)
        seq[0] = rng.integers(0, ALPHABET)
        for t in range(1, SEQ_LEN):
            seq[t] = rng.choice(ALPHABET, p=transitions[cls][seq[t - 1]])
        return seq

    def split(count: int):
        labels = np.arange(count) % CLASSES
        rng.shuffle(labels)
        return [sample(int(c)) for c in labels], labels

    return split(TRAIN), split(TEST)


def train_and_score(encoder: NGramEncoder, train, test, rng) -> float:
    (train_seqs, train_y), (test_seqs, test_y) = train, test
    accums = np.zeros((CLASSES, DIM), dtype=np.float64)
    for seq, label in zip(train_seqs, train_y, strict=True):
        accums[label] += encoder.encode(seq, binary=True)
    classes = sign(accums, rng)
    correct = 0
    for seq, label in zip(test_seqs, test_y, strict=True):
        query = encoder.encode(seq, binary=True)
        if int(np.argmin(hamming(classes, query))) == label:
            correct += 1
    return correct / len(test_seqs)


def main() -> None:
    rng = np.random.default_rng(SEED)
    train, test = make_language_samples(rng)

    plain = NGramEncoder(random_pool(ALPHABET, DIM, rng=SEED), n=N_GRAM, rng=1)
    plain_accuracy = train_and_score(plain, train, test, np.random.default_rng(2))
    print(
        f"plain n-gram model ({N_GRAM}-grams over {ALPHABET} symbols): "
        f"accuracy {plain_accuracy:.2f}"
    )

    # Locked variant: alphabet item memory derived from pool + key.
    pool = random_pool(ALPHABET, DIM, rng=SEED + 1)
    key = generate_key(ALPHABET, layers=2, pool_size=ALPHABET, dim=DIM, rng=3)
    locked = NGramEncoder(n=N_GRAM, base_pool=pool, key=key, rng=4)
    locked_accuracy = train_and_score(
        locked, train, test, np.random.default_rng(5)
    )
    print(
        f"HDLock n-gram model (L=2 key, {key.storage_bits()} key bits): "
        f"accuracy {locked_accuracy:.2f}"
    )
    print(
        "the public pool alone is useless without the key — the same "
        "privileged-encoding argument as the record encoder"
    )


if __name__ == "__main__":
    main()
