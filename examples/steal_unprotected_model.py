"""Walkthrough of the paper's reasoning attack (Sec. 3) step by step.

Reproduces the attack narrative against an MNIST-shaped model at reduced
dimensionality, printing what the adversary sees at each stage —
including the Fig. 3 guess-distance dip for the first attacked pixel.

    python examples/steal_unprotected_model.py
"""

from __future__ import annotations

import numpy as np

from repro import RecordEncoder, expose_model, load_benchmark, train_model
from repro.attack import (
    evaluate_theft,
    extract_feature_mapping,
    extract_value_mapping,
    find_extreme_pair,
    guess_distance_series,
    verify_mapping,
)
from repro.attack.pipeline import ReasoningResult
from repro.utils.timer import Timer

DIM = 2048
SEED = 11


def main() -> None:
    dataset = load_benchmark("mnist", rng=SEED, sample_scale=0.15)
    encoder = RecordEncoder.random(
        dataset.n_features, dataset.levels, DIM, rng=SEED
    )
    training = train_model(
        encoder,
        dataset.train_x,
        dataset.train_y,
        n_classes=dataset.n_classes,
        binary=True,
        retrain_epochs=2,
        rng=SEED,
    )
    original = training.model.score(dataset.test_x, dataset.test_y)
    print(f"victim model: MNIST shape, accuracy {original:.3f}")

    surface, truth = expose_model(encoder, binary=True, rng=SEED + 1)

    # --- Step 1: value hypervector extraction -------------------------
    i, j = find_extreme_pair(surface.value_pool)
    print(
        f"\nstep 1 — the published value pool betrays its extremes: rows "
        f"{i} and {j} are mutually orthogonal, all others lie between"
    )
    with Timer() as t_value:
        value = extract_value_mapping(surface, rng=SEED + 2)
    chosen, rejected = value.extreme_distances
    print(
        f"  one all-minimum query factors ValHV_1 out (Eq. 5-6): "
        f"estimate at Hamming {chosen:.3f} from the true extreme vs "
        f"{rejected:.3f} from the wrong one"
    )
    print(f"  full level order recovered in {t_value.elapsed * 1e3:.1f} ms")

    # --- Fig. 3 detour: what one feature sweep looks like -------------
    series = guess_distance_series(
        surface, value.level_order, feature=0, full_dim=True
    )
    correct = truth.feature_assignment[0]
    wrong = np.delete(series, correct)
    print(
        f"\nFig. 3 — attacking pixel 1: correct candidate (pool row "
        f"{correct}) scores {series[correct]:.4f}; wrong guesses span "
        f"[{wrong.min():.4f}, {wrong.max():.4f}]"
    )

    # --- Step 2: feature hypervector extraction -----------------------
    with Timer() as t_feature:
        feature = extract_feature_mapping(surface, value.level_order)
    print(
        f"\nstep 2 — divide and conquer over {feature.guesses} guesses "
        f"({feature.queries} crafted queries) in {t_feature.elapsed:.2f} s"
    )

    result = ReasoningResult(
        value=value,
        feature=feature,
        value_seconds=t_value.elapsed,
        feature_seconds=t_feature.elapsed,
    )
    verdict = verify_mapping(result, truth)
    print(
        f"  mapping recovered: values {verdict.value_accuracy:.1%}, "
        f"features {verdict.feature_accuracy:.1%}"
    )

    # --- The theft, quantified (Table 1) -------------------------------
    report, _ = evaluate_theft(
        original, surface, result, dataset, binary=True, rng=SEED + 3
    )
    print(
        f"\nreconstructed model accuracy {report.recovered_accuracy:.3f} vs "
        f"original {report.original_accuracy:.3f} — the IP is fully stolen"
    )


if __name__ == "__main__":
    main()
