"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 517/660 editable installs (which build a wheel) are unavailable.
``pip install -e . --no-build-isolation --no-use-pep517`` uses this shim
via ``setup.py develop``. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
