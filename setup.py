"""Legacy setup shim.

All project metadata, the src/ package layout, and tool configuration
(pytest, ruff, coverage) live in ``pyproject.toml``; normal environments
install with ``pip install -e '.[dev]'`` (what CI does) and never touch
this file. The shim exists for sandboxes without the ``wheel`` package
or network access, where PEP 517/660 editable installs (which build a
wheel) are unavailable: there,
``pip install -e . --no-build-isolation --no-use-pep517`` falls back to
``setup.py develop``, and setuptools reads the same pyproject metadata.
"""

from setuptools import setup

setup()
