"""repro — reproduction of HDLock (Duan, Ren, Xu; DAC 2022).

The package implements, from scratch and in pure Python/numpy:

* a complete HDC classification stack (hypervector ops, item memories,
  record/n-gram encoders, one-shot + retrained classifiers);
* the paper's model-IP reasoning attack (value- and feature-hypervector
  extraction via divide and conquer) plus model reconstruction;
* the HDLock defense (keyed combination-and-permutation feature
  derivation) with key management and security analysis;
* a cycle-level cost model of the FPGA encoder datapath used for the
  latency-overhead evaluation;
* synthetic stand-ins for the five evaluation datasets, and experiment
  modules regenerating every table and figure of the paper.

Batch encoding API
------------------

Every encoder exposes ``encode_batch(samples, binary=True, chunk_size=None,
memory_budget=None)`` backed by the vectorized engine of
:mod:`repro.encoding.engine`: a level-major BLAS decomposition compiled
once per encoder (:class:`~repro.encoding.engine.EncodingPlan`) that is
bit-exact with per-sample encoding — including the randomized sign(0)
tie-break stream — while running an order of magnitude faster at paper
scale. Batches stream through bounded tiles: ``chunk_size`` pins the
rows per tile, otherwise the tile is sized so the engine's float working
set stays under ``memory_budget`` bytes (default 128 MiB —
:data:`~repro.encoding.engine.DEFAULT_MEMORY_BUDGET`). The budget exists
because the naive fully vectorized form materializes a ``(B, N, D)``
gather — gigabytes at D = 10,000 — whereas a bounded tile keeps the hot
loop in cache and lets arbitrarily large batches (the "heavy traffic"
regime) run in constant memory. Large-pool similarity search uses the
matching batched kernels :func:`repro.hv.similarity.nearest_batch`,
:func:`repro.hv.packing.hamming_packed`, and
:func:`repro.hv.packing.pairwise_hamming_packed`.

Packed end-to-end flow
----------------------

The binary hot path never leaves the packed bit domain. Encoders expose
``encode_batch_packed(samples, ...)``, the fused form of the binary
``encode_batch``: accumulations stream through a reused float scratch
buffer (or the carry-save bit-plane kernel of :mod:`repro.hv.bitslice`
when the level memory defeats the BLAS decomposition) and binarize
*in place* into uint64 bit-planes via
:func:`repro.hv.packing.pack_signs` — no int64 batch, no int8 sign
matrix, no separate pack pass. Downstream consumers keep those words as
is: :class:`~repro.model.classifier.HDClassifier` XOR-popcounts packed
queries against its cached packed class memory (``predict``/``fit``/
``retrain`` pack at most once per training state), locked-encoder
inference inherits the same path, and attack pool scoring
(:mod:`repro.attack.feature_extraction`,
:mod:`repro.attack.value_extraction`,
:mod:`repro.attack.hdlock_attack`) scores candidates with word-packed
tables — zero pack/unpack round-trips between encoding and decision,
pinned by ``tests/encoding/test_packed_path.py``. Everything is
bit-exact with the dense path, tie stream included: packed outputs
equal ``pack_words(encode_batch(..., binary=True))`` word for word.

Fleet key lifecycle
-------------------

HDLock's deployment unit is one privileged key per device, so the
package models provisioning at population scale.
:func:`~repro.hdlock.generate_keys` draws a whole fleet's
``(n_devices, N, L)`` key material in batched generator calls with
vectorized distinctness enforcement, returning a
:class:`~repro.memory.KeyBatch` whose per-device
:class:`~repro.memory.LockKey` views materialize zero-copy. At rest,
keys live in the packed, memory-mapped
:class:`~repro.hdlock.KeyStore` — fixed-stride records bit-packed at
the ``ceil(log2 P) + ceil(log2 D)`` bits-per-pair floor, O(1) random
access by device id, bulk append, and a JSON header persisting the
revocation list and rotation generation.
:func:`~repro.hdlock.rotate_system` re-locks a deployed system with a
fresh key at bounded cost (no public artifact changes), and
:func:`~repro.hv.fleet_key_report` quantifies population-scale key
collision and guessability. ``benchmarks/bench_keygen.py`` tracks
keys/sec, bytes/key at rest, and re-lock latency as the
machine-readable ``BENCH_provisioning.json`` snapshot.

Multi-tenant serving
--------------------

:mod:`repro.serving` turns a provisioned locked system into a deployable
inference service — the deployment surface HDLock's threat model calls
for, where the locked encoder is the public artifact and the key store
stays privileged. ``provision_tenant`` persists the public bundle, the
device key (appended to the tenant's mmap :class:`~repro.hdlock.KeyStore`),
and the trained class-memory snapshot; ``load_tenant`` rebuilds a
bit-identical replica. A :class:`~repro.serving.ModelRegistry` serves
many tenants behind one stdlib-only ASGI app
(:func:`~repro.serving.create_app`: ``/healthz``, ``/v1/models``,
``/v1/{tenant}/classify``, ``/v1/{tenant}/encode``) whose request path
re-checks the key lifecycle gate per request (revoked or rotated device
→ 403, never a crash) and coalesces concurrent requests in a
:class:`~repro.serving.MicroBatcher` into single
``encode_batch_packed`` calls — bit-identical to per-request serving,
several times the throughput (``benchmarks/bench_serving.py`` →
``BENCH_serving.json``). ``python -m repro.serving`` boots a demo
fleet or previously provisioned tenant directories; ``--self-check``
is the CI smoke body.

Enforced invariants (reprolint)
-------------------------------

The guarantees above are invariants the test suite can only
spot-check, so :mod:`repro.analysis` enforces them statically on every
push (blocking CI job): all randomness flows through seeded
``SeedSequence``-derived generators (RL001 — protects the golden-seed
digests and ``--jobs``-invariant artifacts), the packed hot path never
round-trips through ``packbits``/``unpackbits`` or promotes packed
words to wide dtypes (RL002 — protects the PR 1–2 speedups), nothing
blocks the serving event loop inside ``async def`` (RL003 — protects
the micro-batcher's deterministic flush and tail latency), public
boundaries raise only taxonomy errors (RL004), and acquired handles
have deterministic release paths (RL005). Run it locally with
``python -m repro.analysis src tests benchmarks examples``; see the
:mod:`repro.analysis` docstring for the rule table and suppression
syntax.

Quickstart::

    from repro import (
        RecordEncoder, train_model, load_benchmark,
        expose_model, run_reasoning_attack, lock_encoder,
    )

    ds = load_benchmark("pamap", rng=0)
    encoder = RecordEncoder.random(ds.n_features, ds.levels, dim=4096, rng=0)
    model = train_model(encoder, ds.train_x, ds.train_y, ds.n_classes).model

    surface, truth = expose_model(encoder, rng=1)      # deploy (threat model)
    result = run_reasoning_attack(surface)             # steal the mapping
    locked = lock_encoder(encoder, layers=2, rng=2)    # defend
"""

from repro.attack import (
    AttackSurface,
    GroundTruth,
    LockedSurface,
    ReasoningResult,
    evaluate_theft,
    expose_locked_model,
    expose_model,
    guess_distance_series,
    hdlock_total_guesses,
    plain_total_guesses,
    reconstruct_encoder,
    run_reasoning_attack,
    security_improvement,
    sweep_parameter,
    verify_mapping,
)
from repro.data import Dataset, SyntheticSpec, load_benchmark, make_dataset
from repro.encoding import (
    EncodingOracle,
    LockedEncoder,
    NGramEncoder,
    RecordEncoder,
)
from repro.errors import ReproError
from repro.hardware import DatapathConfig, encoding_cycles, relative_encoding_time
from repro.hdlock import (
    KeyStore,
    LockedSystem,
    create_locked_encoder,
    generate_key,
    generate_keys,
    lock_encoder,
    lock_model,
    rotate_system,
    security_level_bits,
    tradeoff_table,
)
from repro.hv import DEFAULT_DIM, fleet_key_report
from repro.memory import (
    FeatureMemory,
    KeyBatch,
    LevelMemory,
    LockKey,
    SecureMemory,
    SubKey,
)
from repro.model import HDClassifier, train_model

__version__ = "1.5.0"

__all__ = [
    "__version__",
    "ReproError",
    "DEFAULT_DIM",
    # memories and keys
    "FeatureMemory",
    "LevelMemory",
    "LockKey",
    "SubKey",
    "SecureMemory",
    # encoders and models
    "RecordEncoder",
    "LockedEncoder",
    "NGramEncoder",
    "EncodingOracle",
    "HDClassifier",
    "train_model",
    # datasets
    "Dataset",
    "SyntheticSpec",
    "make_dataset",
    "load_benchmark",
    # attack
    "AttackSurface",
    "LockedSurface",
    "GroundTruth",
    "expose_model",
    "expose_locked_model",
    "run_reasoning_attack",
    "ReasoningResult",
    "verify_mapping",
    "guess_distance_series",
    "reconstruct_encoder",
    "evaluate_theft",
    "sweep_parameter",
    "plain_total_guesses",
    "hdlock_total_guesses",
    "security_improvement",
    # defense
    "generate_key",
    "create_locked_encoder",
    "lock_encoder",
    "lock_model",
    "LockedSystem",
    "security_level_bits",
    "tradeoff_table",
    # fleet key lifecycle
    "generate_keys",
    "KeyBatch",
    "KeyStore",
    "rotate_system",
    "fleet_key_report",
    # hardware model
    "DatapathConfig",
    "encoding_cycles",
    "relative_encoding_time",
]
