"""``python -m repro`` — convenience entry to the experiment runner.

Equivalent to ``python -m repro.experiments.runner``; see that module
for the full flag reference (``--only``, ``--seed``, ``--jobs``,
``--format text|json``, ``--out DIR``, ``--cache DIR``/``--no-cache``,
``REPRO_FULL_SCALE=1``), the artifact schema, and the exit codes.
"""

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
