"""``python -m repro`` — convenience entry to the experiment runner.

Equivalent to ``python -m repro.experiments.runner``; see that module
for options (``--only``, ``--seed``, ``REPRO_FULL_SCALE=1``).
"""

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
