"""reprolint — AST-based invariant linter for the HDLock reproduction.

Why a bespoke linter
--------------------

The repo's headline guarantees are *invariants*, not behaviors, and
the test suite can only spot-check them: a violation typically passes
every tier-1 test while breaking the guarantee in production. Each
rule mechanically enforces one such invariant on every push (the
blocking ``static-analysis`` CI job), the way HDXplore automates
differential probing instead of relying on manual inspection:

``RL001`` **determinism** — bit-identical artifacts (golden-seed
    SHA-256 digests in ``tests/integration/test_golden_seed.py``,
    ``--jobs``-invariant artifact bytes in
    ``tests/experiments/test_runner_artifacts.py``-style parity tests,
    bit-identical serving replicas) require every random draw to flow
    through a seeded ``SeedSequence``-derived ``Generator``. One stray
    ``np.random.rand``, stdlib ``random`` use, or wall-clock seed
    silently voids all of them.

``RL002`` **packed-path hygiene** — the PR 1–2 packed hot path
    (``tests/encoding/test_packed_path.py`` pins zero pack/unpack
    round-trips and the ≥2x row-overhead gate) dies by a thousand
    cuts: one ``np.packbits`` round-trip or one ``.astype(int64)``
    promotion of a packed array quietly restores the per-row cost.
    Conversion primitives live in ``repro.hv.packing`` and the
    bit-slice kernel only.

``RL003`` **async-safety** — the micro-batcher's deterministic
    arrival-order flush (``tests/serving`` batcher bit-parity tests)
    runs on the event loop thread; any blocking call in an
    ``async def`` stalls every in-flight request and stretches the
    p95/p99 tails ``BENCH_serving.json`` trends.

``RL004`` **error taxonomy** — ``repro.serving`` and ``repro.hdlock``
    are public boundaries whose exception *types* are the API (the
    HTTP status mapping table, the provisioning tamper-matrix tests).
    Bare builtin raises surface as anonymous 500s; swallowed broad
    excepts hide runner failures.

``RL005`` **resource safety** — handles acquired outside ``with``
    need a deterministic release path (paired ``close()`` in a
    ``finally``, ownership transfer, or an owning class with a
    ``close``/``__exit__`` lifecycle); leaked descriptors accumulate
    to ``EMFILE`` in the long-running serving process.

Running it
----------

.. code-block:: console

    $ PYTHONPATH=src python -m repro.analysis src tests benchmarks examples
    $ PYTHONPATH=src python -m repro.analysis --format json src
    $ PYTHONPATH=src python -m repro.analysis --list-rules

Suppressions are per-line, must name the rule, and must carry a
justification (see :mod:`repro.analysis.suppressions`)::

    np.packbits(codes)  # reprolint: disable=RL002 -- key-code records

A suppression that matches nothing, or carries no ``--`` justification,
is itself a finding (``RL000``), so stale excuses cannot pile up.
"""

from __future__ import annotations

import repro.analysis.rules  # noqa: F401  (populate the registry)
from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    infer_module,
    lint_file,
    lint_source,
    register,
)
from repro.analysis.reporting import render
from repro.analysis.suppressions import SUPPRESSION_HYGIENE_ID

__all__ = [
    "SUPPRESSION_HYGIENE_ID",
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "infer_module",
    "lint_file",
    "lint_source",
    "register",
    "render",
]
