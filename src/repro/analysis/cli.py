"""``python -m repro.analysis`` — run reprolint over files and trees.

Exit codes: 0 clean, 1 findings, 2 usage/IO error (mirrors the
experiment runner's convention). Directories are walked for ``*.py``;
paths given explicitly are linted whatever their suffix, which is how
the test fixtures (``tests/analysis/fixtures/*.py.txt`` — deliberately
not ``.py`` so the repo-wide sweep, pytest, and ruff never pick up
their seeded violations) are exercised.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

import repro.analysis.rules  # noqa: F401  (populate the registry)
from repro.analysis.core import Finding, all_rules, lint_file
from repro.analysis.reporting import FORMATTERS, render

#: Directory names never descended into during tree walks.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".ruff_cache", ".pytest_cache", "build", "dist"}
)


def collect_files(paths: Sequence[str]) -> list[Path]:
    """Expand CLI path arguments into the list of files to lint."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                sub
                for sub in sorted(path.rglob("*.py"))
                if not any(part in _SKIP_DIRS for part in sub.parts)
            )
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    # De-duplicate while preserving order (a file named inside a tree).
    seen: set[Path] = set()
    unique: list[Path] = []
    for file in files:
        if file not in seen:
            seen.add(file)
            unique.append(file)
    return unique


def _list_rules() -> str:
    lines = ["reprolint rules:"]
    for rule_cls in all_rules():
        lines.append(f"  {rule_cls.rule_id} [{rule_cls.severity}] "
                     f"{rule_cls.title}")
        lines.append(f"      {rule_cls.rationale}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: AST-based invariant linter for the HDLock repo "
            "(determinism, packed-path hygiene, async-safety, error "
            "taxonomy, resource safety)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files and/or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(FORMATTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())  # reprolint: disable=RL007 -- the rule table IS the --list-rules output
        return 0
    try:
        files = collect_files(args.paths)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    if not files:
        print("reprolint: no python files under the given paths",
              file=sys.stderr)
        return 2
    findings: list[Finding] = []
    for file in files:
        try:
            findings.extend(lint_file(file))
        except OSError as exc:
            print(f"reprolint: cannot read {file}: {exc}", file=sys.stderr)
            return 2
    print(render(args.format, findings, files_checked=len(files)))  # reprolint: disable=RL007 -- the lint report IS the CLI's product; stdout is the contract
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised as a module
    raise SystemExit(main())
