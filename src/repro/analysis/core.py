"""Rule framework: findings, the registry, and the per-file runner.

A rule is a class deriving from :class:`Rule` with a unique ``rule_id``
(``RLnnn``), a severity, one-paragraph ``rationale`` docs, and a
``check(ctx)`` generator yielding :class:`Finding` objects. Rules are
made discoverable with the :func:`register` decorator; importing
:mod:`repro.analysis.rules` populates the registry.

The runner (:func:`lint_source` / :func:`lint_file`) parses the file
once, hands every registered rule a shared :class:`ModuleContext`, and
then applies the ``# reprolint: disable=...`` directives collected by
:mod:`repro.analysis.suppressions` — emitting RL000 hygiene findings
for directives that are unjustified or suppressed nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.analysis.suppressions import (
    SUPPRESSION_HYGIENE_ID,
    Directive,
    hygiene_messages,
    parse_directives,
    parse_module_override,
)

#: Rule id reserved for files the parser rejects (not a registered
#: rule: a file that does not parse cannot be checked at all, and the
#: finding cannot be suppressed since directives live in parsed lines).
SYNTAX_ERROR_ID = "RL999"

#: Severity levels, ordered. Every current rule is an ``error`` —
#: findings block CI — but the field keeps room for advisory rules.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: str = "error"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one source file.

    ``module`` is the dotted import path inferred from the file's
    location (``src/repro/hv/ops.py`` → ``repro.hv.ops``; files outside
    a package root get their relative path dotted, e.g.
    ``tests.hv.test_ops``), which is what rules scope on.
    """

    path: str
    module: str
    tree: ast.Module
    source: str
    lines: list[str] = field(default_factory=list)

    def in_package(self, *prefixes: str) -> bool:
        """True when the module sits under any of the dotted prefixes."""
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check` as
    a generator over the module AST. ``rationale`` is surfaced by
    ``--list-rules`` and the README rule table; keep it one paragraph
    naming the invariant and the test surface it protects.
    """

    rule_id: str = ""
    title: str = ""
    severity: str = "error"
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=self.severity,
        )


#: rule_id -> rule class. Populated by :func:`register` at import time
#: of :mod:`repro.analysis.rules`.
REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.severity not in SEVERITIES:
        raise ValueError(
            f"rule {cls.rule_id}: severity {cls.severity!r} not in "
            f"{SEVERITIES}"
        )
    existing = REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate rule id {cls.rule_id}: {existing.__name__} and "
            f"{cls.__name__}"
        )
    REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[type[Rule]]:
    """Registered rules sorted by id (import :mod:`.rules` first)."""
    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]


def infer_module(path: str | Path, src_roots: Iterable[str] = ("src",)) -> str:
    """Dotted module name for scoping decisions, from the file path.

    The path needs no leading package root to resolve: the segment
    after any directory named in ``src_roots`` starts the module, and
    otherwise the whole relative path is dotted. ``__init__`` maps to
    its package.
    """
    parts = list(Path(path).parts)
    for root in src_roots:
        if root in parts:
            parts = parts[parts.index(root) + 1 :]
            break
    if not parts:
        return ""
    parts[-1] = Path(parts[-1]).stem
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p not in (".", ""))


def _apply_suppressions(
    findings: list[Finding],
    directives: list[Directive],
    path: str,
) -> list[Finding]:
    """Drop suppressed findings; append RL000 hygiene findings."""
    kept: list[Finding] = []
    by_line: dict[tuple[int, str], Directive] = {}
    for directive in directives:
        for rule_id in directive.rule_ids:
            by_line[(directive.line, rule_id)] = directive
    for finding in findings:
        directive = by_line.get((finding.line, finding.rule_id))
        if directive is not None and finding.rule_id != SUPPRESSION_HYGIENE_ID:
            directive.used_ids.add(finding.rule_id)
        else:
            kept.append(finding)
    for message, line in hygiene_messages(directives):
        kept.append(
            Finding(
                rule_id=SUPPRESSION_HYGIENE_ID,
                message=message,
                path=path,
                line=line,
            )
        )
    return kept


def lint_source(
    source: str,
    path: str,
    module: str | None = None,
    rules: Iterable[type[Rule]] | None = None,
) -> list[Finding]:
    """Run every (or the given) rule over one in-memory source file."""
    if rules is None:
        rules = all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=SYNTAX_ERROR_ID,
                message=f"file does not parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    if module is None:
        module = parse_module_override(source)
    ctx = ModuleContext(
        path=path,
        module=module if module is not None else infer_module(path),
        tree=tree,
        source=source,
        lines=source.splitlines(),
    )
    findings: list[Finding] = []
    for rule_cls in rules:
        findings.extend(rule_cls().check(ctx))
    directives = parse_directives(source)
    findings = _apply_suppressions(findings, directives, path)
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings


def lint_file(
    path: str | Path,
    rules: Iterable[type[Rule]] | None = None,
    reader: Callable[[Path], str] | None = None,
) -> list[Finding]:
    """Run the linter over one on-disk file."""
    file_path = Path(path)
    source = (
        reader(file_path)
        if reader is not None
        else file_path.read_text(encoding="utf-8")
    )
    return lint_source(source, str(file_path), rules=rules)
