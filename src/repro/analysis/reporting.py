"""Render findings as text, JSON, or GitHub workflow annotations."""

from __future__ import annotations

import json
from typing import Iterable

from repro.analysis.core import Finding

#: Schema version of the ``--format json`` report (golden-pinned by
#: ``tests/analysis``); bump on breaking layout changes.
REPORT_SCHEMA_VERSION = 1


def render_text(findings: list[Finding], files_checked: int) -> str:
    """One ``path:line:col: RLnnn message`` line per finding + summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule_id} {f.message}"
        for f in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"reprolint: {len(findings)} {noun} in {files_checked} files"
    )
    return "\n".join(lines)


def render_json(findings: list[Finding], files_checked: int) -> str:
    """Stable machine-readable report (sorted findings, sorted keys)."""
    payload = {
        "schema": REPORT_SCHEMA_VERSION,
        "tool": "reprolint",
        "files_checked": files_checked,
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _escape_annotation(text: str) -> str:
    """GitHub workflow-command data escaping (%, CR, LF)."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_github(findings: list[Finding], files_checked: int) -> str:
    """``::error`` workflow commands — findings annotate the PR diff."""
    lines = [
        f"::{f.severity} file={f.path},line={f.line},"
        f"col={f.col + 1},title=reprolint {f.rule_id}::"
        f"{_escape_annotation(f.message)}"
        for f in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"reprolint: {len(findings)} {noun} in {files_checked} files"
    )
    return "\n".join(lines)


FORMATTERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}


def render(
    fmt: str, findings: Iterable[Finding], files_checked: int
) -> str:
    return FORMATTERS[fmt](list(findings), files_checked)
