"""Import every rule module so the registry is populated.

Adding a rule = adding a module here with a ``@register``-ed class;
nothing else needs to change (the CLI, formats, suppression machinery,
and ``--list-rules`` all read the registry).
"""

from repro.analysis.rules import (  # noqa: F401  (imported for side effects)
    async_safety,
    determinism,
    error_taxonomy,
    growth,
    packed,
    printing,
    resources,
)
