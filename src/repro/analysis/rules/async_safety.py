"""RL003 — nothing blocks the event loop that serving correctness rides on.

The micro-batcher's determinism contract (bit-parity with per-request
serving, pinned by ``tests/serving/test_batcher.py``) holds because
batch flushes run *synchronously on the loop thread* in arrival order.
That design makes the loop latency-critical: one blocking call inside
any ``async def`` — a ``time.sleep`` instead of ``asyncio.sleep``, a
synchronous ``open``/``subprocess``/socket call, an mmap flush — stalls
every in-flight request and widens the batching window from
milliseconds to whatever the call took, which is exactly the tail
latency ``BENCH_serving.json`` trends against.

The rule flags known-blocking calls whose innermost enclosing function
is ``async def`` (a sync helper *defined* inside an async function runs
wherever it is called, so it is not flagged). It applies to every
file: async code outside ``repro.serving`` — tests, benches, the load
driver — shares the same loop discipline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.rules.common import ImportMap, call_path

#: Canonical callables that block the calling thread.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "mmap.mmap",
        "numpy.memmap",
        "urllib.request.urlopen",
        "input",
    }
)

#: Blocking *methods* — matched by attribute name since the receiver's
#: type is unknown; names chosen to be unambiguous in this codebase
#: (pathlib I/O and mmap/file flush-to-disk).
_BLOCKING_METHODS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
    }
)


@register
class AsyncSafetyRule(Rule):
    rule_id = "RL003"
    title = "async-safety"
    severity = "error"
    rationale = (
        "Blocking calls (time.sleep, file open, sockets, subprocess, "
        "mmap) inside async def stall the event loop the micro-batcher "
        "flushes on, stretching every co-batched request's latency and "
        "the deterministic arrival-order flush window."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        # Walk with an explicit function stack so only calls whose
        # *innermost* function scope is async are flagged.
        yield from self._visit_body(ctx, imports, ctx.tree.body, False)

    def _visit_body(
        self,
        ctx: ModuleContext,
        imports: ImportMap,
        body: list[ast.stmt],
        in_async: bool,
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._visit_node(ctx, imports, stmt, in_async)

    def _visit_node(
        self,
        ctx: ModuleContext,
        imports: ImportMap,
        node: ast.AST,
        in_async: bool,
    ) -> Iterator[Finding]:
        if isinstance(node, ast.AsyncFunctionDef):
            yield from self._visit_body(ctx, imports, node.body, True)
            return
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            body = (
                node.body
                if isinstance(node.body, list)
                else [ast.Expr(node.body)]
            )
            yield from self._visit_body(ctx, imports, body, False)
            return
        if isinstance(node, ast.Call) and in_async:
            yield from self._check_call(ctx, imports, node)
        for child in ast.iter_child_nodes(node):
            yield from self._visit_node(ctx, imports, child, in_async)

    def _check_call(
        self, ctx: ModuleContext, imports: ImportMap, node: ast.Call
    ) -> Iterator[Finding]:
        path = call_path(imports, node)
        if path is not None and path in _BLOCKING_CALLS:
            yield self.finding(
                ctx,
                node,
                f"blocking call {path}() inside async def stalls the "
                f"event loop (and every co-batched request); move it "
                f"before the async path or run it in an executor",
            )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _BLOCKING_METHODS
        ):
            yield self.finding(
                ctx,
                node,
                f"blocking file I/O .{node.func.attr}() inside async "
                f"def stalls the event loop; do file work before "
                f"serving starts or hand it to an executor",
            )
