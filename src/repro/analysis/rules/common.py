"""Shared AST helpers for rule implementations.

The rules match *canonical* dotted names (``numpy.random.rand``,
``time.sleep``) rather than surface spellings, so an aliased import
(``import numpy as np``, ``from numpy.random import rand as r``)
cannot dodge a rule. :class:`ImportMap` records what each local name
binds to; :meth:`ImportMap.resolve` expands a ``Name``/``Attribute``
chain through those bindings.
"""

from __future__ import annotations

import ast


class ImportMap:
    """Local name → canonical dotted module/object path."""

    def __init__(self, tree: ast.Module) -> None:
        self.bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.bindings[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the root name.
                        root = alias.name.split(".", 1)[0]
                        self.bindings[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports never bind the targets
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a name/attribute chain, or None.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``numpy.random.rand``; a chain whose root is not an imported
        name resolves through the root unchanged (so ``time.sleep``
        still matches in a file the linter has no imports for, e.g. a
        fixture snippet).
        """
        parts: list[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        root = self.bindings.get(cursor.id, cursor.id)
        parts.append(root)
        return ".".join(reversed(parts))


def call_path(imports: ImportMap, node: ast.Call) -> str | None:
    """Canonical dotted path of a call's callee, or None."""
    return imports.resolve(node.func)


def contains_call_to(
    imports: ImportMap, node: ast.AST, paths: frozenset[str]
) -> ast.Call | None:
    """First call anywhere under ``node`` whose callee is in ``paths``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            resolved = call_path(imports, sub)
            if resolved is not None and resolved in paths:
                return sub
    return None
