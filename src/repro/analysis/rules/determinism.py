"""RL001 — every random draw flows through a seeded ``Generator``.

The repo's reproducibility contract (golden-seed SHA-256 digests,
``--jobs``-invariant artifact bytes, bit-identical serving replicas)
holds only if *all* randomness derives from an explicit seed threaded
through ``numpy.random.SeedSequence`` / ``default_rng`` — the
discipline of :mod:`repro.utils.rng`. Three escape hatches would pass
the test suite while silently breaking byte-parity in production:

* the legacy ``numpy.random.*`` module-level functions, which draw
  from hidden global state (``np.random.rand``, ``np.random.seed``…);
* the stdlib :mod:`random` module, seeded from OS entropy at import;
* seeding an otherwise-correct generator from the wall clock
  (``default_rng(time.time_ns())``), which makes every run unique.

RL001 flags all three, everywhere the linter runs (library, tests,
benchmarks, examples): an unseeded draw in a bench driver breaks
``BENCH_*.json`` run-to-run comparability just as surely as one in
``src/repro``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.rules.common import ImportMap, call_path, contains_call_to

#: Legacy global-state entry points of ``numpy.random``. The modern
#: seeded surface (``default_rng``, ``Generator``, ``SeedSequence``,
#: bit generators) is the sanctioned path and is not listed.
_LEGACY_NP_RANDOM = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "choice",
        "dirichlet",
        "exponential",
        "gamma",
        "geometric",
        "get_state",
        "hypergeometric",
        "laplace",
        "logistic",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "negative_binomial",
        "normal",
        "pareto",
        "permutation",
        "poisson",
        "power",
        "rand",
        "randint",
        "randn",
        "random",
        "random_integers",
        "random_sample",
        "ranf",
        "rayleigh",
        "sample",
        "seed",
        "set_state",
        "shuffle",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "triangular",
        "uniform",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
        "RandomState",
    }
)

#: Callables that accept a seed; a wall-clock argument anywhere in the
#: call makes the run non-reproducible.
_SEEDING_CALLS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
        "repro.utils.rng.resolve_rng",
        "repro.utils.rng.spawn_rngs",
        "random.seed",
        "random.Random",
    }
)

#: Wall-clock sources that must never feed a seed.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class DeterminismRule(Rule):
    rule_id = "RL001"
    title = "determinism"
    severity = "error"
    rationale = (
        "All randomness must flow through an explicitly seeded "
        "numpy Generator (repro.utils.rng); legacy numpy.random.* "
        "globals, the stdlib random module, and time-derived seeds "
        "break golden-seed digests and artifact byte-parity."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib 'random' is seeded from OS entropy; "
                            "use repro.utils.rng.resolve_rng / a seeded "
                            "numpy Generator instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and (
                    node.module == "random"
                    or (node.module or "").startswith("random.")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "stdlib 'random' is seeded from OS entropy; "
                        "use repro.utils.rng.resolve_rng / a seeded "
                        "numpy Generator instead",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, imports, node)

    def _check_call(
        self, ctx: ModuleContext, imports: ImportMap, node: ast.Call
    ) -> Iterator[Finding]:
        path = call_path(imports, node)
        if path is None:
            return
        if path.startswith("numpy.random."):
            fn = path.removeprefix("numpy.random.")
            if fn in _LEGACY_NP_RANDOM:
                yield self.finding(
                    ctx,
                    node,
                    f"np.random.{fn} draws from hidden global state; "
                    f"thread a seeded np.random.Generator "
                    f"(repro.utils.rng.resolve_rng) instead",
                )
        elif path == "random" or path.startswith("random."):
            # Surviving references to stdlib random (the import itself
            # is flagged above; calls catch `from random import rand`).
            fn = path.removeprefix("random.")
            if fn and "." not in fn and fn[0].islower():
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib random.{fn} draws from process-global "
                    f"state; use a seeded numpy Generator instead",
                )
            return
        if path in _SEEDING_CALLS:
            clock = contains_call_to(imports, node, _CLOCK_CALLS)
            if clock is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"time-derived seed "
                    f"({ast.unparse(clock)}) makes every run unique; "
                    f"seeds must be explicit constants or SeedSequence "
                    f"children",
                )
