"""RL004 — public boundaries speak the library's error taxonomy.

The serving adapter maps exception *types* to HTTP statuses (the
``app.py`` table: ``ServingError`` subclasses carry their own status,
``ReproError`` subclasses fold to 422/409-style responses, anything
else is a 500). The keystore/provisioning layer makes the same
promise: loaders wrap ``OSError``/``ValueError`` into
``ConfigurationError``/``KeyFormatError`` so callers can catch one
hierarchy (PR 6's tamper-matrix tests pin this). A bare
``raise ValueError`` inside ``repro.serving`` or ``repro.hdlock``
therefore surfaces to a client as an anonymous 500 instead of a typed
4xx — and an ``except Exception: pass`` hides a runner failure
entirely. Both pass the happy-path tests.

The rule is scoped to the two public-boundary packages; deep library
math (``repro.hv`` etc.) legitimately raises ``ValueError`` for plain
programming errors.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register

#: Packages whose raises must use the repro.errors / ServingError
#: hierarchies.
SCOPED_PACKAGES = ("repro.serving", "repro.hdlock")

#: Builtin exception types that must not be raised bare at a public
#: boundary (the adapter cannot map them to a meaningful status).
_BANNED_RAISES = frozenset({"Exception", "BaseException", "ValueError"})

#: Handler types whose silent swallowing hides failures.
_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})


def _is_swallowed(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing with the exception."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        or isinstance(stmt, ast.Continue)
        for stmt in handler.body
    )


@register
class ErrorTaxonomyRule(Rule):
    rule_id = "RL004"
    title = "error taxonomy"
    severity = "error"
    rationale = (
        "repro.serving and repro.hdlock are public boundaries: raises "
        "must use the repro.errors / ServingError hierarchies so the "
        "HTTP adapter and provisioning callers can map types to "
        "statuses, and broad except handlers must not swallow "
        "exceptions silently."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(*SCOPED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)

    def _check_raise(
        self, ctx: ModuleContext, node: ast.Raise
    ) -> Iterator[Finding]:
        exc = node.exc
        name: str | None = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BANNED_RAISES:
            yield self.finding(
                ctx,
                node,
                f"bare 'raise {name}' at a public boundary surfaces as "
                f"an anonymous 500 / untyped failure; raise a "
                f"repro.errors.ReproError or "
                f"repro.serving.errors.ServingError subclass",
            )

    def _check_handler(
        self, ctx: ModuleContext, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        broad = node.type is None or (
            isinstance(node.type, ast.Name) and node.type.id in _BROAD_HANDLERS
        )
        if broad and _is_swallowed(node):
            caught = (
                ast.unparse(node.type) if node.type is not None else "<all>"
            )
            yield self.finding(
                ctx,
                node,
                f"'except {caught}' swallows the failure silently; "
                f"narrow the type, re-raise as a taxonomy error, or at "
                f"minimum record why discarding is safe",
            )
