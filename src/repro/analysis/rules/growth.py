"""RL006 — long-lived serving containers must be bounded or drained.

The serving process is the one part of this repo that runs indefinitely:
a queue or list on a long-lived object that only ever grows is a slow
memory leak that surfaces as an OOM kill days into a deployment, long
after the commit that introduced it. The micro-batcher got this right —
``MicroBatcher._pending`` is swap-drained every flush — and this rule
makes that discipline checkable.

Scoped to ``repro.serving``. A *candidate* is an instance attribute
initialized in ``__init__`` to an unbounded container: a ``[]``/``{}``/
``set()`` literal, ``list()``/``dict()``/``set()``, a
``collections.deque()`` without ``maxlen``, or a ``queue.Queue()``/
``asyncio.Queue()`` without ``maxsize``. Every *growth site* on a
candidate — ``.append``/``.appendleft``/``.extend``/``.add``/``.put``/
``.put_nowait`` or ``+=`` — is flagged unless the class shows any
custody of the container's size:

* the attribute is **reassigned** outside ``__init__`` (including the
  swap-drain idiom ``work, self._pending = self._pending, []``);
* a **drain method** is reachable on it — ``.pop``/``.popleft``/
  ``.popitem``/``.get``/``.get_nowait``/``.clear``/``.remove``/
  ``.discard`` — whether called directly or handed off as a bare method
  reference (the ASGI bridges pass ``self._queue.get`` as the receive
  callable);
* its ``len()`` is taken inside a comparison (an explicit bound check).

Construction-time growth that is bounded by the program text itself
(e.g. a route table appended to only during app wiring) is a legitimate
exception — suppress it inline with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.rules.common import ImportMap, call_path

#: Calls that build an unbounded container (literals handled separately).
_UNBOUNDED_CALLS = frozenset({"list", "dict", "set", "collections.deque"})

#: Queue constructors: unbounded unless a maxsize is given.
_QUEUE_CALLS = frozenset({"queue.Queue", "asyncio.Queue", "queue.SimpleQueue"})

#: Methods that grow a container.
_GROWTH_METHODS = frozenset(
    {"append", "appendleft", "extend", "add", "put", "put_nowait"}
)

#: Methods that remove elements — evidence the class manages the size.
_DRAIN_METHODS = frozenset(
    {"pop", "popleft", "popitem", "get", "get_nowait", "clear", "remove",
     "discard"}
)


def _self_attr(node: ast.expr) -> str | None:
    """The ``X`` of a ``self.X`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@register
class UnboundedGrowthRule(Rule):
    rule_id = "RL006"
    title = "unbounded growth"
    severity = "error"
    rationale = (
        "A list/queue on a long-lived serving object that is appended to "
        "but never drained, re-assigned, bounded (deque maxlen, Queue "
        "maxsize) or length-checked grows without limit — a slow memory "
        "leak that kills the serving process days into a deployment. "
        "Drain it like MicroBatcher._pending (swap-drain per flush) or "
        "bound it at construction."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.serving"):
            return
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, imports, node)

    def _check_class(
        self, ctx: ModuleContext, imports: ImportMap, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        init = next(
            (
                stmt
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        candidates = self._unbounded_attributes(imports, init)
        if not candidates:
            return
        managed = self._managed_attributes(cls, init, candidates)
        for attr, site, how in self._growth_sites(cls, init, candidates):
            if attr in managed:
                continue
            yield self.finding(
                ctx,
                site,
                f"self.{attr} is an unbounded container that only grows "
                f"({how}); on a long-lived serving object this is a "
                f"memory leak — drain it, re-assign it, bound it, or "
                f"check its length",
            )

    def _unbounded_attributes(
        self, imports: ImportMap, init: ast.AST
    ) -> set[str]:
        """``self.X`` attributes initialized to unbounded containers."""
        candidates: set[str] = set()
        for node in ast.walk(init):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if not self._is_unbounded_container(imports, value):
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    candidates.add(attr)
        return candidates

    def _is_unbounded_container(
        self, imports: ImportMap, value: ast.expr
    ) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            return True
        if not isinstance(value, ast.Call):
            return False
        path = call_path(imports, value)
        if path in _UNBOUNDED_CALLS:
            if path == "collections.deque":
                return not self._has_bound(value, "maxlen", position=1)
            return True
        if path in _QUEUE_CALLS:
            return not self._has_bound(value, "maxsize", position=0)
        return False

    @staticmethod
    def _has_bound(call: ast.Call, keyword: str, position: int) -> bool:
        if len(call.args) > position:
            return True
        return any(kw.arg == keyword for kw in call.keywords)

    def _growth_sites(
        self, cls: ast.ClassDef, init: ast.AST, candidates: set[str]
    ) -> Iterator[tuple[str, ast.AST, str]]:
        """(attribute, node, description) per growth call outside init."""
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method is init:
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr not in _GROWTH_METHODS:
                        continue
                    attr = _self_attr(node.func.value)
                    if attr in candidates:
                        yield attr, node, f".{node.func.attr}() in {method.name}"
                elif isinstance(node, ast.AugAssign):
                    attr = _self_attr(node.target)
                    if attr in candidates:
                        yield attr, node, f"augmented assignment in {method.name}"

    def _managed_attributes(
        self, cls: ast.ClassDef, init: ast.AST, candidates: set[str]
    ) -> set[str]:
        """Candidates whose size the class demonstrably manages."""
        managed: set[str] = set()
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            in_init = method is init
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and not in_init:
                    # Reassignment resets the container — including the
                    # swap-drain tuple idiom.
                    for target in node.targets:
                        elements = (
                            target.elts
                            if isinstance(target, (ast.Tuple, ast.List))
                            else [target]
                        )
                        for element in elements:
                            attr = _self_attr(element)
                            if attr in candidates:
                                managed.add(attr)
                elif isinstance(node, ast.Attribute):
                    # A drain method on the attribute, called or passed
                    # as a bare reference (queue.get handed to a bridge).
                    if node.attr in _DRAIN_METHODS:
                        attr = _self_attr(node.value)
                        if attr in candidates:
                            managed.add(attr)
                elif isinstance(node, ast.Compare):
                    for attr in self._len_compared(node, candidates):
                        managed.add(attr)
        return managed

    @staticmethod
    def _len_compared(
        compare: ast.Compare, candidates: set[str]
    ) -> Iterator[str]:
        for node in ast.walk(compare):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "len"
                and node.args
            ):
                attr = _self_attr(node.args[0])
                if attr in candidates:
                    yield attr
