"""RL002 — the packed hot path stays packed, and stays narrow.

PRs 1–2 made binary hypervectors flow end to end as uint64 bit-planes:
``encode_batch_packed`` writes words directly and every consumer
(classifier predict/fit, attack scoring, serving) operates on packed
operands with **zero pack/unpack round-trips**
(``tests/encoding/test_packed_path.py`` pins the round-trip-free flow
and its ≥2x row-overhead gate). A stray ``np.packbits`` /
``np.unpackbits`` outside the two sanctioned kernels, or an
``.astype(np.int64/float64)`` widening of a packed array, silently
reintroduces the per-row cost the packed path exists to remove — and
passes every correctness test while doing it.

Sanctioned homes for bit-domain conversion:

* :mod:`repro.hv.packing` — the one place pack/unpack primitives live;
* :mod:`repro.hv.bitslice` — the carry-save bit-slice kernel, which
  unpacks planes as part of its contract.

The dtype-promotion check is heuristic by necessity (a linter cannot
see dtypes): it fires when the receiver expression of an
``.astype(int64/float64)`` mentions ``packed``, the repo-wide naming
convention for word-packed arrays — which is also why the convention
must hold (satellite: keep packed operands named ``*packed*``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.rules.common import ImportMap, call_path

#: Modules allowed to call the numpy bit-packing primitives.
ALLOWED_MODULES = ("repro.hv.packing", "repro.hv.bitslice")

_PACK_CALLS = frozenset({"numpy.packbits", "numpy.unpackbits"})

#: Wide dtypes that undo packing when a packed array is cast to them.
_WIDE_DTYPES = frozenset(
    {"numpy.int64", "numpy.float64", "int64", "float64", "int", "float"}
)

_PACKED_NAME_RE = re.compile(r"packed", re.IGNORECASE)


@register
class PackedHygieneRule(Rule):
    rule_id = "RL002"
    title = "packed-path hygiene"
    severity = "error"
    rationale = (
        "np.packbits/np.unpackbits belong to repro.hv.packing and the "
        "bit-slice kernel only, and packed word arrays must never be "
        "promoted to int64/float64: either one silently reintroduces "
        "the per-row conversion cost the packed hot path (PRs 1-2) "
        "removed, without failing any correctness test."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        in_allowed = ctx.in_package(*ALLOWED_MODULES)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = call_path(imports, node)
            if path in _PACK_CALLS and not in_allowed:
                fn = path.removeprefix("numpy.")
                yield self.finding(
                    ctx,
                    node,
                    f"np.{fn} outside {ALLOWED_MODULES}: bit-domain "
                    f"conversion round-trips defeat the packed hot "
                    f"path; use the repro.hv.packing helpers or keep "
                    f"operands packed",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                yield from self._check_astype(ctx, imports, node)

    def _check_astype(
        self, ctx: ModuleContext, imports: ImportMap, node: ast.Call
    ) -> Iterator[Finding]:
        dtype = self._dtype_arg(imports, node)
        if dtype not in _WIDE_DTYPES:
            return
        assert isinstance(node.func, ast.Attribute)
        receiver = ast.unparse(node.func.value)
        if _PACKED_NAME_RE.search(receiver):
            yield self.finding(
                ctx,
                node,
                f"{receiver}.astype({dtype.removeprefix('numpy.')}) "
                f"promotes a packed word array to a wide dtype — an "
                f"8-64x memory blow-up that silently leaves the "
                f"packed domain; compute on uint64 words or go "
                f"through repro.hv.packing explicitly",
            )

    @staticmethod
    def _dtype_arg(imports: ImportMap, node: ast.Call) -> str | None:
        """Canonical dtype named by the first astype argument."""
        args = list(node.args)
        for kw in node.keywords:
            if kw.arg == "dtype":
                args.insert(0, kw.value)
        if not args:
            return None
        arg = args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return imports.resolve(arg)
