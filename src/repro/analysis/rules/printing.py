"""RL007 — library modules must not write to stdout with bare print().

With PR 10 the repo has a real logging story: one-line JSON records via
:mod:`repro.obs.logs`, silent by default, opted into by operators. A
bare ``print()`` in library code bypasses all of it — the line carries
no level, no logger name, no request ID, cannot be filtered or shipped,
and corrupts machine-readable stdout (the runner's ``--format json``
mode and the CSV projections are parsed by other tools).

Scoped to ``repro``. Flagged: any call to the bare builtin ``print``
with no ``file=`` argument. Structurally exempt:

* modules whose last dotted segment is ``__main__`` — CLI entry points
  own their stdout by definition;
* ``print(..., file=...)`` — an explicit stream (typically
  ``sys.stderr`` for CLI diagnostics) is a deliberate routing decision,
  not an accidental stdout write.

CLI helper modules that legitimately print rendered output (the
experiment runner's text formatter, the reprolint CLI's report writer)
carry inline suppressions with justifications instead of a scope carve-
out: the exemption stays visible at every call site it covers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register


@register
class BarePrintRule(Rule):
    rule_id = "RL007"
    title = "no-bare-print"
    severity = "error"
    rationale = (
        "A bare print() in repro library code writes unstructured text "
        "to stdout: no level, no logger, no request ID, unfilterable, "
        "and it corrupts machine-readable output modes (--format json/"
        "csv). Use repro.obs.logs (silent unless an operator opts in) "
        "or print(..., file=sys.stderr) for CLI diagnostics; __main__ "
        "modules are exempt."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package("repro"):
            return
        if ctx.module.rpartition(".")[2] == "__main__":
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
                and not any(kw.arg == "file" for kw in node.keywords)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "bare print() in library code writes unstructured "
                    "text to stdout; log through repro.obs.logs, or "
                    "direct CLI diagnostics with print(..., "
                    "file=sys.stderr)",
                )
