"""RL005 — acquired handles have a deterministic release path.

The serving stack holds an mmap open per tenant key store for the
process lifetime — that one is *owned* (``KeyStore.close`` exists and
the registry controls it). What must not happen is the accidental
variant: a file or mmap opened mid-function, then leaked when an
exception skips the ``close()``. Under fleet-scale provisioning
(bulk append loops, rotation sweeps) leaked descriptors accumulate
until the process hits ``EMFILE`` — in production that is the serving
process.

The rule flags an assignment whose value is an acquiring call
(``open``, ``os.open``, ``mmap.mmap``, ``np.memmap``,
``socket.socket``…) unless one of the accepted custody chains holds:

* the call is a ``with`` context item (``with open(...) as fh``);
* the assigned name is ``.close()``-d inside a ``finally`` block of
  the same function (or ``with contextlib.closing``);
* the name's descriptor is handed to ``os.fdopen`` (ownership
  transfer — the file object now carries the close obligation);
* the target is an attribute (``self._records = np.memmap(...)``)
  and the enclosing class defines ``close``/``__exit__``/``__del__``
  — instance-owned handles with an explicit lifecycle.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.rules.common import ImportMap, call_path

#: Canonical callables that acquire an OS-level resource.
_ACQUIRING_CALLS = frozenset(
    {
        "open",
        "os.open",
        "os.fdopen",
        "mmap.mmap",
        "numpy.memmap",
        "socket.socket",
        "socket.create_connection",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
    }
)

#: Class members that establish an owned-handle lifecycle.
_LIFECYCLE_METHODS = frozenset({"close", "__exit__", "__del__", "aclose"})


@register
class ResourceSafetyRule(Rule):
    rule_id = "RL005"
    title = "resource safety"
    severity = "error"
    rationale = (
        "File/mmap/socket handles acquired outside a with-block need a "
        "paired close() in a finally (or an owning class with a "
        "close/__exit__ lifecycle); anything less leaks descriptors on "
        "the exception path until the serving process hits EMFILE."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        yield from self._scan(ctx, imports, ctx.tree, None, None)

    def _scan(
        self,
        ctx: ModuleContext,
        imports: ImportMap,
        scope: ast.AST,
        func: ast.AST | None,
        cls: ast.ClassDef | None,
    ) -> Iterator[Finding]:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                yield from self._scan(ctx, imports, node, func, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan(ctx, imports, node, node, cls)
            else:
                yield from self._check_statement(ctx, imports, node, func, cls)
                yield from self._scan(ctx, imports, node, func, cls)

    def _check_statement(
        self,
        ctx: ModuleContext,
        imports: ImportMap,
        node: ast.AST,
        func: ast.AST | None,
        cls: ast.ClassDef | None,
    ) -> Iterator[Finding]:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            return
        value = node.value
        if not isinstance(value, ast.Call):
            return
        path = call_path(imports, value)
        if path not in _ACQUIRING_CALLS:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [
            node.target
        ]
        for target in targets:
            if isinstance(target, ast.Attribute):
                if cls is not None and self._class_has_lifecycle(cls):
                    continue
                yield self.finding(
                    ctx,
                    value,
                    f"{path}() stored on {ast.unparse(target)} but the "
                    f"enclosing class defines no "
                    f"close/__exit__/__del__ lifecycle; the handle can "
                    f"never be released deterministically",
                )
            elif isinstance(target, ast.Name):
                if func is not None and self._released(func, target.id):
                    continue
                yield self.finding(
                    ctx,
                    value,
                    f"{path}() assigned to {target.id!r} without a "
                    f"paired {target.id}.close() in a finally block "
                    f"(or a with-statement); the exception path leaks "
                    f"the handle",
                )

    @staticmethod
    def _class_has_lifecycle(cls: ast.ClassDef) -> bool:
        return any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in _LIFECYCLE_METHODS
            for stmt in cls.body
        )

    def _released(self, func: ast.AST, name: str) -> bool:
        """True when ``name`` reaches a sanctioned custody chain."""
        for node in ast.walk(func):
            if isinstance(node, (ast.Try,)):
                for stmt in node.finalbody:
                    if self._closes(stmt, name):
                        return True
            elif isinstance(node, ast.Call):
                # Ownership transfer: os.fdopen(fd) / closing(handle) /
                # contextlib.ExitStack().enter_context(handle).
                callee = node.func
                transfer = (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in ("fdopen", "enter_context", "closing")
                ) or (
                    isinstance(callee, ast.Name)
                    and callee.id in ("fdopen", "closing")
                )
                if transfer and any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in node.args
                ):
                    return True
        return False

    @staticmethod
    def _closes(stmt: ast.AST, name: str) -> bool:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "aclose")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
        return False
