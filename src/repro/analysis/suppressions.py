"""``# reprolint: disable=...`` directives and their hygiene checks.

Suppression syntax (one comment, on the same line as the finding)::

    risky_call()  # reprolint: disable=RL002 -- key records, not HV planes
    other()       # reprolint: disable=RL001,RL003 -- fixture exercises both

The ``--`` justification is **mandatory**: an unexplained suppression
is itself a finding (RL000), as is a suppression that matched nothing
— stale directives otherwise outlive the violation they excused and
silently blind the linter to a reintroduction. RL000 findings cannot
be suppressed.

A second directive form overrides the module name inferred from the
file path, so a file can opt into module-scoped rules (RL004 only
fires under ``repro.serving``/``repro.hdlock``) regardless of where it
lives — the rule fixtures under ``tests/analysis/fixtures`` rely on
this::

    # reprolint: module=repro.serving.fixture

Directives are read with :mod:`tokenize` rather than a text scan so
the marker inside a string literal is not mistaken for a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: Rule id for directive-hygiene findings (unused / unjustified /
#: malformed suppressions). Reserved: not in the rule registry and
#: never suppressible.
SUPPRESSION_HYGIENE_ID = "RL000"

_DIRECTIVE_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<ids>[A-Z0-9, ]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)

_RULE_ID_RE = re.compile(r"^RL\d{3}$")

_MODULE_RE = re.compile(
    r"#\s*reprolint:\s*module=(?P<name>[A-Za-z_][A-Za-z0-9_.]*)\s*$"
)


def parse_module_override(source: str) -> str | None:
    """The ``# reprolint: module=...`` override, if the file has one."""
    for line in source.splitlines():
        match = _MODULE_RE.search(line)
        if match is not None:
            return match.group("name")
    return None


@dataclass
class Directive:
    """One parsed ``# reprolint: disable=`` comment."""

    line: int
    rule_ids: tuple[str, ...]
    justification: str
    #: Filled by the runner: which of ``rule_ids`` suppressed a finding.
    used_ids: set[str] = field(default_factory=set)
    #: Ids that failed to parse as ``RLnnn`` (reported via RL000).
    malformed_ids: tuple[str, ...] = ()


def parse_directives(source: str) -> list[Directive]:
    """Extract every reprolint directive from the file's comments."""
    directives: list[Directive] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        # The AST pass reports the syntax error; nothing to parse here.
        return []
    for line, text in comments:
        match = _DIRECTIVE_RE.search(text)
        if match is None:
            # A directive *attempt* names a verb (disable/module) next
            # to "reprolint"; prose that merely mentions the tool — or
            # a rule id — is not one.
            attempted = re.search(
                r"#\s*reprolint\b.*\b(?:disable|module)\b", text
            )
            if attempted and not _MODULE_RE.search(text):
                # A directive-looking comment that does not parse would
                # otherwise be ignored silently — surface it instead.
                directives.append(
                    Directive(
                        line=line,
                        rule_ids=(),
                        justification="",
                        malformed_ids=(text.strip(),),
                    )
                )
            continue
        raw_ids = [
            part.strip()
            for part in match.group("ids").split(",")
            if part.strip()
        ]
        good = tuple(i for i in raw_ids if _RULE_ID_RE.match(i))
        bad = tuple(i for i in raw_ids if not _RULE_ID_RE.match(i))
        directives.append(
            Directive(
                line=line,
                rule_ids=good,
                justification=(match.group("why") or "").strip(),
                malformed_ids=bad,
            )
        )
    return directives


def hygiene_messages(
    directives: list[Directive],
) -> list[tuple[str, int]]:
    """RL000 messages for unjustified / unused / malformed directives."""
    messages: list[tuple[str, int]] = []
    for d in directives:
        for bad in d.malformed_ids:
            messages.append(
                (
                    f"malformed suppression {bad!r}: expected "
                    f"'# reprolint: disable=RLnnn[,RLnnn] -- justification'",
                    d.line,
                )
            )
        if d.rule_ids and not d.justification:
            messages.append(
                (
                    "suppression carries no justification; append "
                    "' -- <why this violation is intentional>'",
                    d.line,
                )
            )
        if SUPPRESSION_HYGIENE_ID in d.rule_ids:
            messages.append(
                (
                    f"{SUPPRESSION_HYGIENE_ID} (suppression hygiene) "
                    f"cannot itself be suppressed",
                    d.line,
                )
            )
        for rule_id in d.rule_ids:
            if rule_id == SUPPRESSION_HYGIENE_ID:
                continue
            if rule_id not in d.used_ids:
                messages.append(
                    (
                        f"unused suppression: no {rule_id} finding on "
                        f"line {d.line}; delete the directive",
                        d.line,
                    )
                )
    return messages
