"""The attack arena: pluggable attackers vs defender configurations.

HDLock's security claim is a claim about a *space* of adversaries and
deployments, not one fixed attack script. This package generalizes
:mod:`repro.attack` into that space:

* :mod:`repro.arena.registry` — named registries of attacker strategies
  (anything implementing :class:`repro.attack.protocol.Attacker`) and
  defender configurations (:class:`repro.arena.defenders.DefenderSpec`);
* :mod:`repro.arena.attackers` — the built-in strategies: the exhaustive
  single-layer sweep, the threshold-gated adaptive variant, an
  HDXplore-style blackbox differential prober, and the paper's Sec. 3
  reasoning pipeline run unmodified as a baseline;
* :mod:`repro.arena.defenders` — the built-in deployments: key depth,
  binary/non-binary transmission, Prive-HD-style quantized/sparsified
  encoders (:mod:`repro.encoding.privacy`), and a query-monitor-guarded
  oracle (:class:`repro.attack.countermeasures.GuardedOracle`);
* :mod:`repro.arena.matrix` — one attacker-vs-defense duel plus the
  owner-side evaluation of what the attacker actually recovered.

The cross-product robustness matrix is a first-class experiment:
``python -m repro --only arena`` (see :mod:`repro.experiments.arena`).
Importing this package populates both registries.
"""

from repro.arena import attackers as _attackers  # noqa: F401  (registers)
from repro.arena import defenders as _defenders  # noqa: F401  (registers)
from repro.arena.attackers import (
    DEFAULT_ATTACKERS,
    AdaptiveExtractor,
    BruteForceSweeper,
    DifferentialProber,
    PlainReasoningAdapter,
)
from repro.arena.defenders import (
    DEFAULT_DEFENDERS,
    DefenderSpec,
    DeployedDefense,
    deploy_defender,
)
from repro.arena.matrix import (
    RECOVERY_THRESHOLD,
    CellEvaluation,
    duel,
    evaluate_outcome,
)
from repro.arena.registry import (
    attacker_names,
    defender_names,
    defender_spec,
    make_attacker,
    register_attacker,
    register_defender,
)

__all__ = [
    "DEFAULT_ATTACKERS",
    "DEFAULT_DEFENDERS",
    "RECOVERY_THRESHOLD",
    "AdaptiveExtractor",
    "BruteForceSweeper",
    "CellEvaluation",
    "DefenderSpec",
    "DeployedDefense",
    "DifferentialProber",
    "PlainReasoningAdapter",
    "attacker_names",
    "defender_names",
    "defender_spec",
    "deploy_defender",
    "duel",
    "evaluate_outcome",
    "make_attacker",
    "register_attacker",
    "register_defender",
]
