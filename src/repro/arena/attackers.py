"""Built-in attacker strategies for the arena.

Four strategies spanning the threat-model spectrum:

* :class:`BruteForceSweeper` — the paper's exhaustive single-layer sweep
  (:func:`repro.attack.adaptive.best_single_layer_guess`), committing to
  the argmin guess unconditionally;
* :class:`AdaptiveExtractor` — the same criterion with a per-index early
  exit and an acceptance threshold: it stops scoring once a guess
  separates and *abstains* when nothing does, trading recall for honesty
  (and far fewer candidate evaluations on undefended ``L = 1`` cells);
* :class:`DifferentialProber` — an HDXplore-style blackbox differential
  strategy: random probe *pairs* differing in one feature, per-coordinate
  majority voting across pairs to denoise tie-breaks and privacy
  transforms, then candidate scoring against the voted estimate. Its
  probes look like ordinary traffic (no all-min/all-max structure), so it
  slips under the query monitor that locks out the crafted-pair attacks;
* :class:`PlainReasoningAdapter` — the Sec. 3 reasoning pipeline run
  unmodified against the locked surface, demonstrating that the lock
  defeats the attack HDLock was designed against.

Every strategy observes the discipline of :class:`repro.attack.protocol`:
it touches only the blackbox surface, spends only budgeted queries,
derives randomness only from the ``rng`` argument, and reports
abstentions rather than junk guesses. :class:`OracleLockoutError` is
caught *inside* ``run`` — a lockout is a legitimate outcome
(``locked_out=True``), not a crash.
"""

from __future__ import annotations

import numpy as np

from repro.arena.registry import register_attacker
from repro.attack.adaptive import (
    ACCEPT_THRESHOLD,
    best_single_layer_guess,
    score_rotations,
)
from repro.attack.countermeasures import OracleLockoutError
from repro.attack.hdlock_attack import (
    DifferenceObservation,
    as_attack_surface,
    observe_difference,
)
from repro.attack.pipeline import run_reasoning_attack
from repro.attack.protocol import AttackBudget, AttackOutcome, FeatureGuess
from repro.attack.threat_model import LockedSurface
from repro.errors import AttackError, ConfigurationError
from repro.memory.key import SubKey

__all__ = [
    "DEFAULT_ATTACKERS",
    "AdaptiveExtractor",
    "BruteForceSweeper",
    "DifferentialProber",
    "PlainReasoningAdapter",
]

#: The built-in roster, in canonical matrix-column order. Explicit, so
#: third-party registrations never reorder existing artifacts.
DEFAULT_ATTACKERS: tuple[str, ...] = (
    "bruteforce",
    "adaptive",
    "differential-prober",
    "plain-reasoning",
)

#: Score at which an abstention is reported: chance level for both the
#: binary Hamming criterion and the ``1 - cosine`` criterion.
CHANCE_SCORE = 0.5


@register_attacker
class BruteForceSweeper:
    """Exhaustive single-layer sweep; always commits to the argmin."""

    name = "bruteforce"

    def run(
        self,
        surface: LockedSurface,
        budget: AttackBudget,
        rng: np.random.Generator,
    ) -> AttackOutcome:
        guesses: list[FeatureGuess] = []
        candidates = 0
        locked_out = False
        notes = ""
        for feature in budget.features(surface):
            if not budget.allows_queries(surface.oracle, 2):
                notes = "query budget exhausted"
                break
            try:
                observation = observe_difference(surface, feature)
            except OracleLockoutError:
                locked_out = True
                break
            except AttackError:
                guesses.append(FeatureGuess(feature, None, CHANCE_SCORE))
                continue
            subkey, score, spent = best_single_layer_guess(
                surface,
                feature,
                observation=observation,
                max_candidates=budget.max_candidates,
            )
            candidates += spent
            guesses.append(FeatureGuess(feature, subkey, score))
        return AttackOutcome(
            attacker=self.name,
            guesses=tuple(guesses),
            queries=surface.oracle.n_queries,
            candidates_scored=candidates,
            locked_out=locked_out,
            notes=notes,
        )


@register_attacker
class AdaptiveExtractor:
    """Threshold-gated sweep with per-index early exit.

    Same Eq. 11/13 criterion as the brute-force sweep, but it stops
    scoring the moment a candidate clears ``accept_threshold`` and
    abstains when none does — the honest reading of the paper's
    ``L >= 2`` argument (on a two-layer key no single-layer candidate
    separates, and this strategy says so instead of guessing).
    """

    name = "adaptive"

    def __init__(self, accept_threshold: float = ACCEPT_THRESHOLD) -> None:
        self.accept_threshold = float(accept_threshold)

    def run(
        self,
        surface: LockedSurface,
        budget: AttackBudget,
        rng: np.random.Generator,
    ) -> AttackOutcome:
        dim = surface.dim
        guesses: list[FeatureGuess] = []
        candidates = 0
        locked_out = False
        notes = ""
        for feature in budget.features(surface):
            if not budget.allows_queries(surface.oracle, 2):
                notes = "query budget exhausted"
                break
            try:
                observation = observe_difference(surface, feature)
            except OracleLockoutError:
                locked_out = True
                break
            except AttackError:
                guesses.append(FeatureGuess(feature, None, CHANCE_SCORE))
                continue
            best_score = np.inf
            best: SubKey | None = None
            for index in range(surface.pool_size):
                scores = score_rotations(surface, observation, index)
                candidates += dim
                rotation = int(np.argmin(scores))
                if scores[rotation] < best_score:
                    best_score = float(scores[rotation])
                    best = SubKey((index,), (rotation,))
                if best_score <= self.accept_threshold:
                    break
            if best is not None and best_score <= self.accept_threshold:
                guesses.append(FeatureGuess(feature, best, best_score))
            else:
                guesses.append(FeatureGuess(feature, None, best_score))
        return AttackOutcome(
            attacker=self.name,
            guesses=tuple(guesses),
            queries=surface.oracle.n_queries,
            candidates_scored=candidates,
            locked_out=locked_out,
            notes=notes,
        )


@register_attacker
class DifferentialProber:
    """Blackbox differential prober with weighted per-coordinate voting.

    For each targeted feature it queries ``probes`` random input *pairs*
    that differ only in that feature. Writing ``diff = E(x_1) - E(x_2)``
    and ``v_delta = ValHV_a - ValHV_b`` for the two probed levels, on
    every coordinate where both are nonzero
    ``sign(diff) * sign(v_delta) = FeaHV_f`` exactly (all other features'
    contributions cancel in the subtraction; binarization only thins
    which coordinates show a flip). Each pair therefore casts a ±1 vote
    per flipped coordinate; candidates are scored by the vote-magnitude
    weighted correlation against the tally, so a coordinate flipped by
    many probes outweighs one-off tie-break noise. That denoising is
    what the one-shot crafted-pair criterion lacks — and unlike the
    crafted Eq. 11 pair, the probes are uniform random inputs,
    indistinguishable from benign traffic to a concentration-based
    query monitor.
    """

    name = "differential-prober"

    def __init__(
        self,
        probes: int = 16,
        min_evidence: int = 128,
        max_candidates: int = 65536,
        accept_threshold: float = 0.25,
    ) -> None:
        if probes < 1:
            raise ConfigurationError(f"probes must be >= 1, got {probes}")
        self.probes = int(probes)
        if min_evidence < 1:
            raise ConfigurationError(
                f"min_evidence must be >= 1, got {min_evidence}"
            )
        self.min_evidence = int(min_evidence)
        if max_candidates < 1:
            raise ConfigurationError(
                f"max_candidates must be >= 1, got {max_candidates}"
            )
        self.max_candidates = int(max_candidates)
        self.accept_threshold = float(accept_threshold)

    def _probe_feature(
        self,
        surface: LockedSurface,
        feature: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Tally per-coordinate votes on ``sign(FeaHV_feature)``."""
        levels = surface.levels
        value = surface.value_matrix.astype(np.int64)
        votes = np.zeros(surface.dim, dtype=np.int64)
        for _ in range(self.probes):
            base = rng.integers(0, levels, size=surface.n_features)
            level_a = int(base[feature])
            level_b = int((level_a + 1 + rng.integers(levels - 1)) % levels)
            pair = base.copy()
            pair[feature] = level_b
            diff = surface.oracle.query(base).astype(np.int64) - surface.oracle.query(
                pair
            ).astype(np.int64)
            v_delta = value[level_a] - value[level_b]
            mask = (diff != 0) & (v_delta != 0)
            votes[mask] += np.sign(diff[mask]) * np.sign(v_delta[mask])
        return votes

    def _best_candidate(
        self,
        surface: LockedSurface,
        votes: np.ndarray,
        cap: int,
        rng: np.random.Generator,
    ) -> tuple[SubKey, float, int]:
        """Best single-layer candidate by weighted vote correlation.

        Score is ``(1 - c) / 2`` where ``c`` is the correlation of the
        candidate's rotated pool row with the vote tally, weighted by
        vote magnitude — 0 for perfect agreement, 0.5 at chance, on the
        same lower-is-better scale as every other arena criterion.
        """
        dim = surface.dim
        pool = surface.base_pool.astype(np.int64)
        support = np.flatnonzero(votes)
        weights = votes[support].astype(np.float64)
        weight_mass = float(np.abs(weights).sum())
        total = dim * surface.pool_size
        best_score = np.inf
        best_pair = (0, 0)
        scored = 0
        if total <= cap:
            rots = np.arange(dim)
            gather = (support[None, :] + rots[:, None]) % dim
            for index in range(surface.pool_size):
                predicted = pool[index][gather]
                correlations = (predicted @ weights) / weight_mass
                scores = (1.0 - correlations) / 2.0
                scored += dim
                rotation = int(np.argmin(scores))
                if scores[rotation] < best_score:
                    best_score = float(scores[rotation])
                    best_pair = (index, rotation)
        else:
            indices = rng.integers(0, surface.pool_size, size=cap)
            rotations = rng.integers(0, dim, size=cap)
            for index, rotation in zip(indices.tolist(), rotations.tolist()):
                row = pool[index][(support + rotation) % dim]
                score = (1.0 - float(row @ weights) / weight_mass) / 2.0
                scored += 1
                if score < best_score:
                    best_score = float(score)
                    best_pair = (index, rotation)
        return SubKey((best_pair[0],), (best_pair[1],)), best_score, scored

    def run(
        self,
        surface: LockedSurface,
        budget: AttackBudget,
        rng: np.random.Generator,
    ) -> AttackOutcome:
        cap = self.max_candidates
        if budget.max_candidates is not None:
            cap = min(cap, budget.max_candidates)
        guesses: list[FeatureGuess] = []
        candidates = 0
        locked_out = False
        notes = ""
        for feature in budget.features(surface):
            if not budget.allows_queries(surface.oracle, 2 * self.probes):
                notes = "query budget exhausted"
                break
            try:
                votes = self._probe_feature(surface, feature, rng)
            except OracleLockoutError:
                locked_out = True
                break
            if int(np.abs(votes).sum()) < self.min_evidence:
                # Too little flip evidence to separate the candidate
                # space — committing here would be guessing on noise.
                guesses.append(FeatureGuess(feature, None, CHANCE_SCORE))
                continue
            subkey, score, scored = self._best_candidate(
                surface, votes, cap, rng
            )
            candidates += scored
            if score <= self.accept_threshold:
                guesses.append(FeatureGuess(feature, subkey, score))
            else:
                guesses.append(FeatureGuess(feature, None, score))
        return AttackOutcome(
            attacker=self.name,
            guesses=tuple(guesses),
            queries=surface.oracle.n_queries,
            candidates_scored=candidates,
            locked_out=locked_out,
            notes=notes,
        )


@register_attacker
class PlainReasoningAdapter:
    """The Sec. 3 reasoning pipeline run unmodified against the lock.

    Treats the locked surface as if it were an unprotected record
    encoder (:func:`repro.attack.hdlock_attack.as_attack_surface`) and
    runs :func:`repro.attack.pipeline.run_reasoning_attack`. On a locked
    deployment the value-extraction margin collapses and the pipeline
    aborts after a handful of queries — reported here as a full-board
    failure, which is precisely the baseline the lock is measured
    against. Its recovered "subkeys" are pool rows with no rotation
    (the Sec. 3 model has none).
    """

    name = "plain-reasoning"

    def run(
        self,
        surface: LockedSurface,
        budget: AttackBudget,
        rng: np.random.Generator,
    ) -> AttackOutcome:
        plain = as_attack_surface(surface)
        try:
            result = run_reasoning_attack(plain, rng)
        except OracleLockoutError:
            return AttackOutcome(
                attacker=self.name,
                guesses=(),
                queries=surface.oracle.n_queries,
                candidates_scored=0,
                locked_out=True,
            )
        except AttackError as exc:
            return AttackOutcome(
                attacker=self.name,
                guesses=(),
                queries=surface.oracle.n_queries,
                candidates_scored=0,
                notes=f"collapsed: {exc}",
            )
        guesses = tuple(
            FeatureGuess(
                feature,
                SubKey((int(result.feature.assignment[feature]),), (0,)),
                0.0,
            )
            for feature in budget.features(surface)
        )
        return AttackOutcome(
            attacker=self.name,
            guesses=guesses,
            queries=surface.oracle.n_queries,
            candidates_scored=result.total_guesses,
        )
