"""Defender configurations: what deployment the attacker faces.

A :class:`DefenderSpec` is a frozen record of every owner-side knob the
arena varies: key depth ``L`` (the paper's security exponent), base-pool
size ``P``, binary vs non-binary transmission, Prive-HD-style
quantized/sparsified encoders (:mod:`repro.encoding.privacy`), and the
query-monitor lockout (:class:`repro.attack.countermeasures.GuardedOracle`).

Building a defense is split in two on purpose:

* :meth:`DefenderSpec.build_system` is the expensive, deterministic part
  (pool, level memory, key, encoder) — a pure function of
  ``(spec, shape, seed)`` that the experiment layer content-caches. Its
  RNG stream order mirrors :func:`repro.hdlock.lock.create_locked_encoder`
  exactly, so the ``plain`` variant deploys the very system that
  function would create;
* :func:`deploy_defender` is the cheap, per-cell part: a **fresh** oracle
  (query counter at zero) and a fresh monitor. Cells must never share a
  live oracle or encoder — the tie-break RNG advances as queries are
  served, so a shared instance would make cell results depend on
  execution order. The experiment layer rebuilds/unpickles the system
  per cell for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arena.registry import register_defender
from repro.attack.countermeasures import GuardedOracle, QueryMonitor
from repro.attack.threat_model import LockedSurface
from repro.encoding.locked import LockedEncoder
from repro.encoding.oracle import EncodingOracle
from repro.encoding.privacy import (
    QuantizedLockedEncoder,
    SparsifiedLockedEncoder,
)
from repro.errors import ConfigurationError
from repro.hdlock.keygen import generate_key
from repro.hdlock.lock import LockedSystem
from repro.hv.random import random_pool
from repro.memory.item_memory import LevelMemory
from repro.memory.secure import SecureMemory
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = [
    "DEFAULT_DEFENDERS",
    "DefenderSpec",
    "DeployedDefense",
    "deploy_defender",
]

#: Encoder variants a spec may name.
_VARIANTS = ("plain", "quantized", "sparsified")


@dataclass(frozen=True)
class DefenderSpec:
    """One deployable defender configuration."""

    name: str
    #: Key depth ``L`` — the security exponent of ``(D * P)^L``.
    layers: int = 2
    #: Base-pool size ``P``.
    pool_size: int = 16
    #: Whether the deployment transmits binarized encodings.
    binary: bool = True
    #: Encoder variant: plain | quantized | sparsified.
    variant: str = "plain"
    #: Quantization levels for the ``quantized`` variant (odd, >= 3).
    quant_levels: int = 3
    #: Surviving-coordinate fraction for the ``sparsified`` variant.
    keep_fraction: float = 0.05
    #: Whether a query monitor guards the oracle (lockout on alert).
    monitor: bool = False
    #: Monitor sliding-window length (queries).
    monitor_window: int = 64
    #: Suspicious-query budget within one window before lockout.
    monitor_budget: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("defender spec needs a non-empty name")
        if self.layers < 1:
            raise ConfigurationError(f"layers must be >= 1, got {self.layers}")
        if self.pool_size < 2:
            raise ConfigurationError(
                f"pool_size must be >= 2, got {self.pool_size}"
            )
        if self.variant not in _VARIANTS:
            raise ConfigurationError(
                f"variant must be one of {_VARIANTS}, got {self.variant!r}"
            )

    def build_system(
        self, n_features: int, levels: int, dim: int, seed: SeedLike
    ) -> LockedSystem:
        """Generate pool, key and encoder for this configuration.

        Deterministic in ``seed``; the four child streams are spawned in
        the same order as :func:`repro.hdlock.lock.create_locked_encoder`
        (pool, level memory, key, tie-breaks), so ``plain`` specs build
        bit-identical systems to that function at equal parameters.
        """
        pool_rng, level_rng, key_rng, tie_rng = spawn_rngs(seed, 4)
        pool = random_pool(self.pool_size, dim, pool_rng)
        level_memory = LevelMemory.random(levels, dim, level_rng)
        key = generate_key(n_features, self.layers, self.pool_size, dim, key_rng)
        if self.variant == "quantized":
            encoder: LockedEncoder = QuantizedLockedEncoder(
                pool,
                level_memory,
                key,
                rng=tie_rng,
                quant_levels=self.quant_levels,
            )
        elif self.variant == "sparsified":
            encoder = SparsifiedLockedEncoder(
                pool,
                level_memory,
                key,
                rng=tie_rng,
                keep_fraction=self.keep_fraction,
            )
        else:
            encoder = LockedEncoder(pool, level_memory, key, rng=tie_rng)
        secure = SecureMemory()
        secure.store("lock_key", key)
        return LockedSystem(
            encoder=encoder, key=key, base_pool=pool, secure_memory=secure
        )


@dataclass(frozen=True)
class DeployedDefense:
    """A built system wired to a fresh attacker-facing surface."""

    spec: DefenderSpec
    system: LockedSystem
    surface: LockedSurface
    monitor: QueryMonitor | None

    @property
    def detected(self) -> bool:
        """True when the monitor (if any) alerted during the cell."""
        return self.monitor is not None and self.monitor.alerted


def deploy_defender(spec: DefenderSpec, system: LockedSystem) -> DeployedDefense:
    """Wire a built system to a fresh oracle (and monitor, if guarded)."""
    encoder = system.encoder
    if spec.monitor:
        monitor: QueryMonitor | None = QueryMonitor(
            n_features=encoder.n_features,
            levels=encoder.levels,
            window=spec.monitor_window,
            budget=spec.monitor_budget,
        )
        oracle: EncodingOracle = GuardedOracle(
            encoder, monitor, binary=spec.binary
        )
    else:
        monitor = None
        oracle = EncodingOracle(encoder, binary=spec.binary)
    surface = LockedSurface(
        base_pool=encoder.base_pool,
        value_matrix=encoder.level_memory.matrix,
        oracle=oracle,
    )
    return DeployedDefense(
        spec=spec, system=system, surface=surface, monitor=monitor
    )


#: The built-in roster, in canonical matrix-row order. An explicit tuple
#: (not the registry) so later registrations never reorder artifacts.
DEFAULT_DEFENDERS: tuple[str, ...] = (
    "baseline-l2",
    "shallow-l1",
    "nonbinary-l1",
    "monitored-l1",
    "quantized-l1",
    "sparsified-l1",
)

register_defender(DefenderSpec("baseline-l2", layers=2))
register_defender(DefenderSpec("shallow-l1", layers=1))
register_defender(DefenderSpec("nonbinary-l1", layers=1, binary=False))
register_defender(DefenderSpec("monitored-l1", layers=1, monitor=True))
register_defender(DefenderSpec("quantized-l1", layers=1, variant="quantized"))
register_defender(DefenderSpec("sparsified-l1", layers=1, variant="sparsified"))
