"""One arena cell: run the duel, then judge it from the owner's side.

The attacker reports *beliefs* (:class:`~repro.attack.protocol.AttackOutcome`);
only the owner holds ground truth (the derived feature matrix of the
deployed encoder). :func:`evaluate_outcome` compares each committed
guess's derived hypervector against the truth by normalized Hamming
distance — the same metric for every strategy, however the guess was
found — and counts a feature *recovered* only below
:data:`RECOVERY_THRESHOLD`. Abstentions and features the attacker never
reached (lockout, exhausted budget) score at chance, so "gave up" and
"wrong" are both visible in ``key_distance`` while only genuinely
recovered features move ``features_recovered``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arena.defenders import DeployedDefense
from repro.attack.countermeasures import OracleLockoutError
from repro.attack.protocol import AttackBudget, AttackOutcome, Attacker
from repro.errors import AttackError
from repro.memory.key import SubKey

__all__ = [
    "RECOVERY_THRESHOLD",
    "CellEvaluation",
    "duel",
    "evaluate_outcome",
]

#: Normalized Hamming distance below which a derived guess counts as the
#: true feature hypervector. Correct guesses score exactly 0; wrong
#: single-layer guesses concentrate around 0.5 with σ ≈ 1/(2·sqrt(D)),
#: so 0.05 is > 40σ from the wrong-guess distribution at D = 2048.
RECOVERY_THRESHOLD = 0.05

#: Distance charged for features with no committed guess (abstention,
#: lockout, exhausted budget): chance level.
CHANCE_DISTANCE = 0.5


@dataclass(frozen=True)
class CellEvaluation:
    """Owner-side judgement of one attack outcome."""

    #: Features the budget put in scope (the denominator).
    features_attacked: int
    #: Committed guesses whose derived HV matched below threshold.
    features_recovered: int
    #: Mean normalized Hamming distance over attacked features.
    key_distance: float

    @property
    def success_rate(self) -> float:
        """Recovered fraction of the attacked features."""
        if self.features_attacked == 0:
            return 0.0
        return self.features_recovered / self.features_attacked


def _derived_row(pool: np.ndarray, subkey: SubKey) -> np.ndarray:
    """Eq. 9: the feature hypervector a guessed subkey derives to."""
    dim = pool.shape[1]
    row = np.ones(dim, dtype=np.int64)
    for index, rotation in subkey.pairs():
        row *= pool[index][(np.arange(dim) + rotation) % dim]
    return row


def evaluate_outcome(
    truth_matrix: np.ndarray,
    pool: np.ndarray,
    outcome: AttackOutcome,
    features: range,
) -> CellEvaluation:
    """Judge ``outcome`` against the deployed encoder's ground truth.

    ``truth_matrix`` is the owner's derived feature matrix
    (``encoder.feature_matrix``); ``features`` the budget's target range.
    Guesses outside ``features`` are ignored — strategies cannot earn
    credit beyond the cell's scope.
    """
    committed = {
        g.feature: g.subkey
        for g in outcome.guesses
        if g.subkey is not None and g.feature in features
    }
    attacked = len(features)
    if attacked == 0:
        return CellEvaluation(0, 0, 0.0)
    dim = pool.shape[1]
    recovered = 0
    total_distance = 0.0
    for feature in features:
        subkey = committed.get(feature)
        if subkey is None:
            total_distance += CHANCE_DISTANCE
            continue
        derived = _derived_row(pool, subkey)
        truth = truth_matrix[feature].astype(np.int64)
        distance = np.count_nonzero(derived != truth) / dim
        total_distance += distance
        if distance < RECOVERY_THRESHOLD:
            recovered += 1
    return CellEvaluation(
        features_attacked=attacked,
        features_recovered=recovered,
        key_distance=total_distance / attacked,
    )


def duel(
    attacker: Attacker,
    defense: DeployedDefense,
    budget: AttackBudget,
    rng: np.random.Generator,
) -> AttackOutcome:
    """Run one attacker against one deployed defense.

    Strategies are expected to handle lockouts and degenerate
    observations themselves, but the arena must stay robust to
    third-party strategies that let them escape: a leaked
    :class:`OracleLockoutError` becomes a ``locked_out`` outcome and any
    other :class:`AttackError` an empty outcome with the failure noted,
    so one brittle strategy cannot take down a matrix run.
    """
    try:
        return attacker.run(defense.surface, budget, rng)
    except OracleLockoutError:
        return AttackOutcome(
            attacker=attacker.name,
            guesses=(),
            queries=defense.surface.oracle.n_queries,
            candidates_scored=0,
            locked_out=True,
            notes="lockout escaped the strategy",
        )
    except AttackError as exc:
        return AttackOutcome(
            attacker=attacker.name,
            guesses=(),
            queries=defense.surface.oracle.n_queries,
            candidates_scored=0,
            notes=f"attack error escaped the strategy: {exc}",
        )
