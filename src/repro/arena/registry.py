"""Attacker and defender registries.

Two small name-keyed registries make the arena pluggable: attacker
*classes* (instantiated fresh per cell, so strategies never leak state
across cells) and defender *specs* (frozen configuration records).
Registration order is deliberately irrelevant to every arena artifact:
cell seeds derive from the *names* (see :mod:`repro.experiments.arena`),
and the default rosters are explicit tuples, so a third-party
registration can never reshuffle existing results.

Registering a custom strategy is the supported extension point::

    from repro.arena import register_attacker

    @register_attacker
    class MyProber:
        name = "my-prober"

        def run(self, surface, budget, rng):
            ...

Duplicate names are a :class:`~repro.errors.ConfigurationError` (except
for idempotent re-registration of the same object, which keeps module
reloads harmless).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # circular at runtime: defenders imports this module
    from repro.arena.defenders import DefenderSpec
    from repro.attack.protocol import Attacker

__all__ = [
    "attacker_names",
    "defender_names",
    "defender_spec",
    "make_attacker",
    "register_attacker",
    "register_defender",
]

#: name -> attacker class (or zero-arg factory). Populated at import of
#: :mod:`repro.arena.attackers` plus any user registrations.
_ATTACKERS: dict[str, Callable[[], "Attacker"]] = {}

#: name -> defender configuration record.
_DEFENDERS: dict[str, "DefenderSpec"] = {}


def register_attacker(factory: Callable[[], "Attacker"]) -> Callable[[], "Attacker"]:
    """Register an attacker class/factory under its ``name`` attribute.

    Usable as a class decorator. The factory must be callable with no
    arguments and produce objects satisfying
    :class:`repro.attack.protocol.Attacker`.
    """
    name = getattr(factory, "name", "")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"attacker {factory!r} needs a non-empty string 'name' attribute"
        )
    existing = _ATTACKERS.get(name)
    if existing is not None and existing is not factory:
        raise ConfigurationError(
            f"duplicate attacker name {name!r}: {existing!r} vs {factory!r}"
        )
    _ATTACKERS[name] = factory
    return factory


def make_attacker(name: str) -> "Attacker":
    """Instantiate a fresh attacker by registered name."""
    try:
        factory = _ATTACKERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown attacker {name!r}; registered: {sorted(_ATTACKERS)}"
        ) from None
    return factory()


def attacker_names() -> tuple[str, ...]:
    """All registered attacker names, in registration order."""
    return tuple(_ATTACKERS)


def register_defender(spec: "DefenderSpec") -> "DefenderSpec":
    """Register a defender configuration under ``spec.name``."""
    existing = _DEFENDERS.get(spec.name)
    if existing is not None and existing != spec:
        raise ConfigurationError(
            f"duplicate defender name {spec.name!r}: {existing!r} vs {spec!r}"
        )
    _DEFENDERS[spec.name] = spec
    return spec


def defender_spec(name: str) -> "DefenderSpec":
    """Look up a registered defender configuration."""
    try:
        return _DEFENDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown defender {name!r}; registered: {sorted(_DEFENDERS)}"
        ) from None


def defender_names() -> tuple[str, ...]:
    """All registered defender names, in registration order."""
    return tuple(_DEFENDERS)
