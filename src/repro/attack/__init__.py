"""The reasoning (model-extraction) attack of paper Sec. 3, the HDLock
guess criterion of Sec. 4.2, and the :class:`~repro.attack.protocol.Attacker`
protocol the attack arena (:mod:`repro.arena`) builds on."""

from repro.attack.adaptive import (
    ACCEPT_THRESHOLD,
    SingleLayerAttackResult,
    attack_single_layer,
    best_single_layer_guess,
    extrapolate_multi_layer_seconds,
    score_rotations,
)
from repro.attack.bruteforce import (
    MAX_BRUTEFORCE_FEATURES,
    BruteForceResult,
    exhaustive_mapping_attack,
    score_matrix,
)
from repro.attack.complexity import (
    guesses_vs_dim_and_pool,
    guesses_vs_layers,
    hdlock_guesses_per_feature,
    hdlock_total_guesses,
    plain_guesses_per_feature,
    plain_total_guesses,
    reasoning_seconds_estimate,
    security_improvement,
)
from repro.attack.countermeasures import (
    GuardedOracle,
    OracleLockoutError,
    QueryAssessment,
    QueryMonitor,
    attack_query_stream,
)
from repro.attack.feature_extraction import (
    CandidateTable,
    FeatureExtractionResult,
    extract_feature_mapping,
    guess_distance_series,
)
from repro.attack.hdlock_attack import (
    DifferenceObservation,
    SweepResult,
    as_attack_surface,
    observe_difference,
    score_guess,
    score_guesses,
    sweep_parameter,
)
from repro.attack.pipeline import (
    MappingVerdict,
    ReasoningResult,
    run_reasoning_attack,
    verify_mapping,
)
from repro.attack.protocol import (
    AttackBudget,
    AttackOutcome,
    Attacker,
    FeatureGuess,
)
from repro.attack.reconstruct import TheftReport, evaluate_theft, reconstruct_encoder
from repro.attack.threat_model import (
    AttackSurface,
    GroundTruth,
    LockedSurface,
    expose_locked_model,
    expose_model,
)
from repro.attack.value_extraction import (
    ValueExtractionResult,
    estimate_min_value_hv,
    extract_value_mapping,
    find_extreme_pair,
)

__all__ = [
    "ACCEPT_THRESHOLD",
    "SingleLayerAttackResult",
    "attack_single_layer",
    "best_single_layer_guess",
    "score_rotations",
    "extrapolate_multi_layer_seconds",
    "AttackBudget",
    "AttackOutcome",
    "Attacker",
    "FeatureGuess",
    "QueryMonitor",
    "QueryAssessment",
    "GuardedOracle",
    "OracleLockoutError",
    "attack_query_stream",
    "AttackSurface",
    "GroundTruth",
    "LockedSurface",
    "expose_model",
    "expose_locked_model",
    "ValueExtractionResult",
    "find_extreme_pair",
    "estimate_min_value_hv",
    "extract_value_mapping",
    "FeatureExtractionResult",
    "CandidateTable",
    "extract_feature_mapping",
    "guess_distance_series",
    "ReasoningResult",
    "MappingVerdict",
    "run_reasoning_attack",
    "verify_mapping",
    "TheftReport",
    "reconstruct_encoder",
    "evaluate_theft",
    "DifferenceObservation",
    "SweepResult",
    "observe_difference",
    "score_guess",
    "score_guesses",
    "sweep_parameter",
    "as_attack_surface",
    "BruteForceResult",
    "exhaustive_mapping_attack",
    "score_matrix",
    "MAX_BRUTEFORCE_FEATURES",
    "plain_guesses_per_feature",
    "plain_total_guesses",
    "hdlock_guesses_per_feature",
    "hdlock_total_guesses",
    "security_improvement",
    "guesses_vs_dim_and_pool",
    "guesses_vs_layers",
    "reasoning_seconds_estimate",
]
