"""Adaptive attack on *single-layer* HDLock keys.

The paper's complexity argument makes ``L`` the security exponent: a
one-layer key offers ``D * P`` states per feature — "only" ``6.15e9``
guesses total for MNIST. That is expensive but not cryptographic, and at
moderate ``D * P`` it is outright practical. This module implements the
full ``L = 1`` key-recovery attack by exhaustive sweep over (base index,
rotation) pairs, vectorized so a reduced-scale key falls in seconds.

Two roles in the reproduction:

* it *validates* the complexity model — measured per-guess cost times
  ``(D * P)^L`` extrapolates the infeasibility of deeper keys
  (:func:`extrapolate_multi_layer_seconds`);
* it substantiates the paper's implicit design guidance that real
  deployments want ``L >= 2``: one free-latency layer is only as strong
  as the attacker's patience.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.hdlock_attack import DifferenceObservation, observe_difference
from repro.attack.threat_model import LockedSurface
from repro.errors import AttackError, ConfigurationError
from repro.memory.key import LockKey, SubKey
from repro.utils.timer import Timer

#: Score below which a single-layer guess is accepted as the key
#: (correct guesses score ~0 Hamming / ~0 "1 - cosine"; wrong ~0.5).
ACCEPT_THRESHOLD = 0.12


@dataclass(frozen=True)
class SingleLayerAttackResult:
    """Outcome of the exhaustive L = 1 key recovery."""

    recovered: LockKey
    guesses: int
    seconds: float
    scores: np.ndarray

    @property
    def per_guess_seconds(self) -> float:
        """Average cost of one key guess (feeds the extrapolation)."""
        return self.seconds / max(self.guesses, 1)


def score_rotations(
    surface: LockedSurface,
    observation: DifferenceObservation,
    index: int,
    rotations: np.ndarray | None = None,
) -> np.ndarray:
    """Score single-layer guesses ``(index, r)`` for every rotation ``r``.

    One ``(R, |I|)`` gather scores all requested rotations of base row
    ``index`` on the observation support at once. Scores are uniformly
    *lower is better*: normalized Hamming distance on binary surfaces,
    ``1 - cosine`` on non-binary ones — so arena strategies compare and
    threshold them without branching on the oracle flavor.
    """
    support = observation.support
    dim = surface.dim
    rots = np.arange(dim) if rotations is None else np.asarray(rotations)
    v_delta = (
        surface.value_matrix[0].astype(np.int64)
        - surface.value_matrix[-1].astype(np.int64)
    )[support]
    gather = (support[None, :] + rots[:, None]) % dim
    candidates = surface.base_pool[index][gather].astype(np.int64)
    predicted = v_delta[None, :] * candidates
    if surface.binary:
        return (
            np.count_nonzero(
                np.sign(predicted) != observation.target[None, :], axis=1
            )
            / support.size
        )
    target_vec = observation.target.astype(np.float64)
    target_norm = float(np.linalg.norm(target_vec))
    if target_norm == 0.0:
        raise AttackError("difference observation carries no signal")
    norms = np.linalg.norm(predicted.astype(np.float64), axis=1)
    cosines = (predicted @ target_vec) / (norms * target_norm)
    return 1.0 - cosines


def best_single_layer_guess(
    surface: LockedSurface,
    feature: int,
    observation: DifferenceObservation | None = None,
    max_candidates: int | None = None,
) -> tuple[SubKey, float, int]:
    """Sweep all (index, rotation) pairs for one feature's subkey.

    Scores every pair on the difference support; returns the best guess,
    its (lower-is-better) score, and the number of guesses evaluated.
    Vectorized over rotations via :func:`score_rotations`. Callers that
    already hold the feature's observation pass it to avoid spending two
    more oracle queries; ``max_candidates`` caps the total evaluations by
    evenly striding the rotation space (a budgeted sweep may then miss
    the true rotation — the caller's accept threshold decides).
    """
    if observation is None:
        observation = observe_difference(surface, feature)
    dim = surface.dim
    rotations = None
    per_index = dim
    if max_candidates is not None and max_candidates < dim * surface.pool_size:
        per_index = max(1, max_candidates // surface.pool_size)
        stride = dim / per_index
        rotations = np.unique(
            (np.arange(per_index) * stride).astype(np.int64)
        )
        per_index = int(rotations.size)

    best_score = np.inf
    best_pair = (0, 0)
    guesses = 0
    for index in range(surface.pool_size):
        scores = score_rotations(surface, observation, index, rotations)
        guesses += per_index
        local_best = int(np.argmin(scores))
        if scores[local_best] < best_score:
            best_score = float(scores[local_best])
            rotation = (
                local_best if rotations is None else int(rotations[local_best])
            )
            best_pair = (index, rotation)
    return SubKey((best_pair[0],), (best_pair[1],)), best_score, guesses


#: Backwards-compatible alias of the pre-arena private name.
_best_single_layer_guess = best_single_layer_guess


def attack_single_layer(surface: LockedSurface) -> SingleLayerAttackResult:
    """Recover a complete single-layer key by exhaustive sweep.

    Raises :class:`AttackError` when the best guess of any feature does
    not separate (e.g. the deployment actually uses ``L >= 2``) — the
    attack reports failure instead of returning a junk key.
    """
    with Timer() as timer:
        subkeys: list[SubKey] = []
        scores = np.empty(surface.n_features)
        guesses = 0
        for feature in range(surface.n_features):
            subkey, score, spent = best_single_layer_guess(surface, feature)
            if score > ACCEPT_THRESHOLD:
                raise AttackError(
                    f"no single-layer key explains feature {feature} "
                    f"(best score {score:.3f}); the deployment is not L=1"
                )
            subkeys.append(subkey)
            scores[feature] = score
            guesses += spent
    recovered = LockKey(
        subkeys, pool_size=surface.pool_size, dim=surface.dim
    )
    return SingleLayerAttackResult(
        recovered=recovered,
        guesses=guesses,
        seconds=timer.elapsed,
        scores=scores,
    )


def extrapolate_multi_layer_seconds(
    result: SingleLayerAttackResult,
    surface: LockedSurface,
    layers: int,
) -> float:
    """Project the measured per-guess cost to an ``L``-layer search.

    ``N * (D * P)^L * per_guess_seconds`` — the paper's "aligns with the
    time consumption if each guess costs approximately equal time"
    argument, grounded in this machine's measured guess rate.
    """
    if layers < 1:
        raise ConfigurationError(f"layers must be >= 1, got {layers}")
    total = surface.n_features * (surface.dim * surface.pool_size) ** layers
    return total * result.per_guess_seconds
