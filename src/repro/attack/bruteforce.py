"""Exhaustive-permutation baseline for the feature-mapping attack.

The paper contrasts its divide-and-conquer strategy with brute force:
guessing the whole feature mapping at once means searching ``N!``
permutations, infeasible beyond toy sizes. This module implements that
baseline for small ``N`` so tests can confirm the divide-and-conquer
result coincides with the global optimum, and so the complexity gap
(``N!`` vs ``N^2``) is demonstrable rather than asserted.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.attack.feature_extraction import CandidateTable, _crafted_input
from repro.attack.threat_model import AttackSurface
from repro.errors import ConfigurationError

#: Hard cap on N! enumeration (8! = 40,320 scored permutations).
MAX_BRUTEFORCE_FEATURES = 8


@dataclass(frozen=True)
class BruteForceResult:
    """Outcome of the exhaustive permutation search."""

    assignment: np.ndarray
    total_score: float
    permutations_tried: int


def score_matrix(surface: AttackSurface, level_order: np.ndarray) -> np.ndarray:
    """``(N, N)`` matrix: score of candidate ``j`` for feature ``i``.

    Row ``i`` uses the same crafted query as the divide-and-conquer
    attack; lower is better in both model flavors (the table returns
    ``1 - cosine`` for non-binary surfaces).
    """
    order = np.asarray(level_order)
    table = CandidateTable(
        surface.feature_pool,
        surface.value_pool[order[0]],
        surface.value_pool[order[-1]],
        binary=surface.binary,
    )
    n = surface.n_features
    all_candidates = np.arange(n)
    rows = []
    for feature in range(n):
        observed = surface.oracle.query(
            _crafted_input(n, feature, surface.levels)
        )
        rows.append(table.score(np.asarray(observed), all_candidates))
    return np.stack(rows)


def exhaustive_mapping_attack(
    surface: AttackSurface, level_order: np.ndarray
) -> BruteForceResult:
    """Search all ``N!`` feature assignments for the minimum total score."""
    n = surface.n_features
    if n > MAX_BRUTEFORCE_FEATURES:
        raise ConfigurationError(
            f"brute force over {n}! permutations refused "
            f"(limit N <= {MAX_BRUTEFORCE_FEATURES}); use the "
            f"divide-and-conquer attack instead"
        )
    scores = score_matrix(surface, level_order)
    best_perm: tuple[int, ...] | None = None
    best_score = math.inf
    tried = 0
    for perm in itertools.permutations(range(n)):
        tried += 1
        total = float(scores[np.arange(n), perm].sum())
        if total < best_score:
            best_score = total
            best_perm = perm
    assert best_perm is not None  # n >= 1 guarantees one permutation
    return BruteForceResult(
        assignment=np.array(best_perm, dtype=np.int64),
        total_score=best_score,
        permutations_tried=tried,
    )
