"""Analytic attack-complexity formulas (paper Sec. 4.2 / 5.2, Fig. 7).

All counts use exact Python integers — ``(D * P)^L`` overflows any fixed
width long before ``L = 5`` — and are only converted to floats at the
presentation layer.

Reference points quoted in the paper for MNIST (``N = P = 784``,
``D = 10,000``):

* unprotected divide-and-conquer: ``N^2 = 6.15e5`` guesses;
* HDLock ``L = 1``: ``N * D * P = 6.15e9``;
* HDLock ``L = 2``: ``N * (D * P)^2 = 4.81e16`` — a ``7.82e10``-fold
  increase over unprotected.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConfigurationError


def _check_positive(**values: int) -> None:
    for name, value in values.items():
        if value < 1:
            raise ConfigurationError(f"{name} must be >= 1, got {value}")


def plain_guesses_per_feature(n_features: int) -> int:
    """Guesses to reason one feature of an unprotected model: the pool
    size ``N`` (every remaining candidate is tried once)."""
    _check_positive(n_features=n_features)
    return n_features


def plain_total_guesses(n_features: int) -> int:
    """Total divide-and-conquer cost on an unprotected model: ``N^2``."""
    _check_positive(n_features=n_features)
    return n_features * n_features


def hdlock_guesses_per_feature(dim: int, pool_size: int, layers: int) -> int:
    """Guesses to reason one HDLock feature: ``(D * P)^L`` (Sec. 4.2)."""
    _check_positive(dim=dim, pool_size=pool_size, layers=layers)
    return (dim * pool_size) ** layers


def hdlock_total_guesses(
    n_features: int, dim: int, pool_size: int, layers: int
) -> int:
    """Total HDLock reasoning cost: ``N * (D * P)^L`` (Sec. 5.2)."""
    _check_positive(n_features=n_features)
    return n_features * hdlock_guesses_per_feature(dim, pool_size, layers)


def security_improvement(
    n_features: int, dim: int, pool_size: int, layers: int
) -> float:
    """HDLock cost over unprotected cost — the paper's "10 orders of
    magnitude" headline is this ratio at ``L = 2`` on MNIST."""
    return hdlock_total_guesses(n_features, dim, pool_size, layers) / float(
        plain_total_guesses(n_features)
    )


def guesses_vs_dim_and_pool(
    dims: Sequence[int],
    pool_sizes: Sequence[int],
    layers: int = 2,
) -> list[tuple[int, int, int]]:
    """The Fig. 7a surface: per-feature guesses over a ``D x P`` grid.

    Returns ``(dim, pool_size, guesses)`` triples in row-major order.
    """
    return [
        (d, p, hdlock_guesses_per_feature(d, p, layers))
        for d in dims
        for p in pool_sizes
    ]


def guesses_vs_layers(
    layer_range: Iterable[int],
    pool_sizes: Sequence[int],
    dim: int = 10_000,
) -> dict[int, list[tuple[int, int]]]:
    """The Fig. 7b curves: per-feature guesses vs ``L``, one curve per
    ``P``. Returns ``{pool_size: [(layers, guesses), ...]}``."""
    return {
        p: [(l, hdlock_guesses_per_feature(dim, p, l)) for l in layer_range]
        for p in pool_sizes
    }


def reasoning_seconds_estimate(
    total_guesses: int, per_guess_seconds: float
) -> float:
    """Wall-clock estimate for a guess budget.

    The paper notes guess counts "align with the time consumption if each
    guess costs approximately equal time"; this converts one measured
    per-guess cost into the projected attack duration (used to show the
    HDLock attack is computationally infeasible).
    """
    if per_guess_seconds < 0:
        raise ConfigurationError(
            f"per_guess_seconds must be >= 0, got {per_guess_seconds}"
        )
    return total_guesses * per_guess_seconds
