"""Runtime detection of reasoning-attack query patterns.

HDLock makes the mapping search computationally infeasible; a deployed
device can *additionally* notice that it is being probed. The Sec. 3
attack has a rigid query signature:

* one **constant** query (every feature at the same level — the Eq. 5
  value-extraction probe), then
* a stream of **one-hot** queries (exactly one feature off the common
  level — the Eq. 7 feature probes), typically walking every feature
  once.

Benign inputs are overwhelmingly unlikely to look like this: a real
sample has feature levels spread over many values. :class:`QueryMonitor`
scores each query's *level concentration* and raises an alert once the
observed stream crosses a budget of near-degenerate queries. It is a
rate/shape detector in the spirit of model-extraction monitors for DNNs
(e.g. PRADA), adapted to the HDC input domain.

This is an extension beyond the paper (its conclusion calls for more
attention to protecting the encoding module); it composes with HDLock
rather than replacing it — detection can throttle or re-key long before
the `(D*P)^L` search makes progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.encoding.base import Encoder
from repro.encoding.oracle import EncodingOracle
from repro.errors import AttackError, ConfigurationError


class OracleLockoutError(AttackError):
    """The deployment's query monitor tripped and cut oracle access.

    Raised *to the attacker* by :class:`GuardedOracle` — from the attack
    code's perspective this is a failed attack (hence the
    :class:`~repro.errors.AttackError` base), from the defender's it is
    the countermeasure working as designed.
    """


@dataclass(frozen=True)
class QueryAssessment:
    """Per-query verdict of the monitor."""

    concentration: float
    suspicious: bool
    alert: bool


@dataclass
class QueryMonitor:
    """Streaming detector for degenerate (attack-shaped) query patterns.

    ``concentration`` of a query is the fraction of features sharing the
    query's modal level; 1.0 for the constant probe, ``(N-1)/N`` for the
    one-hot probes, and far lower for natural inputs over ``M`` levels.
    A query is *suspicious* above ``concentration_threshold``; an
    *alert* fires when more than ``budget`` suspicious queries are seen
    within the last ``window`` queries.
    """

    n_features: int
    levels: int
    #: Concentration above which a single query counts as suspicious.
    concentration_threshold: float = 0.9
    #: Sliding-window length (queries).
    window: int = 64
    #: Suspicious-query budget within one window before alerting.
    budget: int = 8
    _history: list[bool] = field(default_factory=list)
    #: Total queries seen.
    seen: int = 0
    #: Total suspicious queries seen.
    suspicious_total: int = 0
    #: Whether the alert has fired at least once.
    alerted: bool = False

    def __post_init__(self) -> None:
        if self.n_features < 1 or self.levels < 2:
            raise ConfigurationError(
                f"degenerate monitor shape N={self.n_features}, "
                f"M={self.levels}"
            )
        if not 0.0 < self.concentration_threshold <= 1.0:
            raise ConfigurationError(
                "concentration_threshold must be in (0, 1], got "
                f"{self.concentration_threshold}"
            )
        if self.window < 1 or self.budget < 1:
            raise ConfigurationError(
                f"window and budget must be >= 1, got {self.window}, "
                f"{self.budget}"
            )

    def concentration(self, sample: np.ndarray) -> float:
        """Fraction of features at the query's most common level."""
        arr = np.asarray(sample)
        if arr.shape != (self.n_features,):
            raise ConfigurationError(
                f"query shape {arr.shape} != ({self.n_features},)"
            )
        counts = np.bincount(arr.astype(np.int64), minlength=self.levels)
        return float(counts.max()) / self.n_features

    def observe(self, sample: np.ndarray) -> QueryAssessment:
        """Score one query and update the sliding window."""
        conc = self.concentration(sample)
        suspicious = conc >= self.concentration_threshold
        self.seen += 1
        self.suspicious_total += int(suspicious)
        self._history.append(suspicious)
        if len(self._history) > self.window:
            self._history.pop(0)
        alert = sum(self._history) > self.budget
        if alert:
            self.alerted = True
        return QueryAssessment(
            concentration=conc, suspicious=suspicious, alert=alert
        )

    def observe_batch(self, samples: np.ndarray) -> list[QueryAssessment]:
        """Score a batch of queries in arrival order."""
        return [self.observe(row) for row in np.asarray(samples)]

    @property
    def suspicious_rate(self) -> float:
        """Lifetime fraction of suspicious queries."""
        return self.suspicious_total / self.seen if self.seen else 0.0


class GuardedOracle(EncodingOracle):
    """An encoding oracle fronted by a :class:`QueryMonitor`.

    Every query is scored *before* it is served. Once the monitor
    alerts, the triggering query and every later one raise
    :class:`OracleLockoutError` instead of returning an encoding —
    the deployed-device policy of refusing service to an identified
    prober. Refused queries do not count toward ``n_queries`` (nothing
    was served), but the monitor still sees them (``monitor.seen``), so
    the defender-side telemetry stays complete.

    This is the enforcement half the PR-8-era monitor lacked: the arena
    wires it in as a defender configuration knob, composing detection
    with HDLock's search-space hardness rather than replacing it.
    """

    def __init__(
        self,
        encoder: Encoder,
        monitor: QueryMonitor,
        binary: bool = True,
    ) -> None:
        super().__init__(encoder, binary=binary)
        self.monitor = monitor

    def _gate(self, sample: np.ndarray) -> None:
        if self.monitor.alerted:
            raise OracleLockoutError(
                "oracle access revoked: query monitor already alerted"
            )
        assessment = self.monitor.observe(sample)
        if assessment.alert:
            raise OracleLockoutError(
                "oracle access revoked: attack-shaped query stream "
                f"({self.monitor.suspicious_total} suspicious of "
                f"{self.monitor.seen} queries)"
            )

    def query(self, sample: np.ndarray) -> np.ndarray:
        """Serve one query unless the monitor (now) objects."""
        self._gate(np.asarray(sample))
        return super().query(sample)

    def query_batch(
        self,
        samples: np.ndarray,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Serve a batch; the whole batch is refused if any row trips."""
        arr = np.asarray(samples)
        for row in arr:
            self._gate(row)
        return super().query_batch(
            arr, chunk_size=chunk_size, memory_budget=memory_budget
        )

    def query_batch_packed(
        self,
        samples: np.ndarray,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Packed variant of :meth:`query_batch`, same gating policy."""
        arr = np.asarray(samples)
        for row in arr:
            self._gate(row)
        return super().query_batch_packed(
            arr, chunk_size=chunk_size, memory_budget=memory_budget
        )


def attack_query_stream(
    n_features: int, levels: int, features: int | None = None
) -> np.ndarray:
    """The exact query sequence the Sec. 3 attack sends.

    One all-minimum probe followed by one one-hot-maximum probe per
    attacked feature — used by tests and demos to exercise the monitor
    with ground-truth attack traffic.
    """
    count = n_features if features is None else features
    queries = np.zeros((1 + count, n_features), dtype=np.int64)
    for i in range(count):
        queries[1 + i, i] = levels - 1
    return queries
