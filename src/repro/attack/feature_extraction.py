"""Step 2 of the reasoning attack: recover the feature-HV mapping.

Paper Sec. 3.2, "Feature Hypervector Extraction". With the value mapping
known, the attacker isolates one feature at a time: the crafted input
sets feature ``i`` to the maximum level and everything else to the
minimum, so the observed output is (Eq. 7)::

    H_i = sign( FeaHV_i * ValHV_M  +  sum_{j != i} FeaHV_j * ValHV_1 )

Because the candidate pool is the true feature set (just unindexed), the
unknown-mapping sum rewrites against the *pool* total ``T``::

    H_i = sign( T + FeaHV_i * (ValHV_M - ValHV_1) ),
    T   = sum_{pool} FeaHV_j * ValHV_1

and a guess ``n`` predicts ``H'_n = sign(T + FeaHV_n * delta)`` (Eq. 8).
Two structural facts make the sweep cheap:

* ``delta = ValHV_M - ValHV_1`` is zero outside the ``~D/2`` coordinates
  where the extremes disagree, so all candidates agree with ``sign(T)``
  off that support ``I`` — only ``|I|`` coordinates ever need scoring;
* the candidate predictions on ``I`` do not depend on which feature is
  being attacked, so the whole ``(N, |I|)`` prediction table is built
  once, bit-packed, and every per-feature scoring pass is a single
  XOR-popcount against the observed response.

Divide and conquer: each matched candidate leaves the pool, giving the
paper's ``O(N^2)`` guess count (``N + (N-1) + ...``, reported as
``N * N`` worst case) with one oracle query per feature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.threat_model import AttackSurface
from repro.errors import AttackError
from repro.hv.packing import hamming_packed, pack_words
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class FeatureExtractionResult:
    """Recovered feature mapping plus per-feature confidence margins.

    ``assignment[i]`` is the published-pool row recovered as
    ``FeaHV_{i+1}``. ``margins[i]`` is the normalized score gap between
    the best and the runner-up candidate — near 0.5 for a healthy attack
    on a binary model, and the quantity plotted in paper Fig. 3.
    """

    assignment: np.ndarray
    margins: np.ndarray
    guesses: int
    queries: int


def _crafted_input(n_features: int, feature: int, levels: int) -> np.ndarray:
    """The Eq. 7 adversarial input: feature ``feature`` at max level."""
    sample = np.zeros(n_features, dtype=np.int64)
    sample[feature] = levels - 1
    return sample


class CandidateTable:
    """Precomputed per-candidate predictions on the support ``I``.

    Binary surfaces store the predictions bit-packed for XOR-popcount
    scoring; non-binary surfaces store the exact integer contributions
    ``FeaHV_n * delta`` on ``I`` for cosine scoring (where the correct
    candidate scores exactly 1, paper Sec. 3.2 last paragraph).
    """

    def __init__(
        self,
        feature_pool: np.ndarray,
        value_min: np.ndarray,
        value_max: np.ndarray,
        binary: bool,
    ) -> None:
        pool = np.asarray(feature_pool, dtype=np.int32)
        v1 = np.asarray(value_min, dtype=np.int32)
        v_m = np.asarray(value_max, dtype=np.int32)
        delta = v_m - v1
        self.dim = int(pool.shape[1])
        self.support = np.flatnonzero(delta)
        self.off_support = np.flatnonzero(delta == 0)
        if self.support.size == 0:
            raise AttackError(
                "ValHV_1 and ValHV_M are identical; value extraction must "
                "have failed"
            )
        self.binary = binary
        #: Pool total T = sum_pool FeaHV_j * ValHV_1, full dimension.
        self._total = pool.sum(axis=0, dtype=np.int64) * v1.astype(np.int64)
        self.total_on_support = self._total[self.support]
        contributions = pool[:, self.support] * delta[self.support]
        if binary:
            predictions = np.where(
                self.total_on_support[None, :] + contributions >= 0, 1, -1
            ).astype(np.int8)
            # Word-packed (uint64) prediction table, built once; every
            # per-feature scoring pass stays in the packed domain.
            self._packed_predictions = pack_words(predictions)
            self._off_support_signs = np.where(
                self._total[self.off_support] >= 0, 1, -1
            ).astype(np.int8)
        else:
            self._contributions = contributions.astype(np.float64)
            self._norms = np.linalg.norm(self._contributions, axis=1)

    def score(
        self,
        observed: np.ndarray,
        available: np.ndarray,
        full_dim: bool = False,
    ) -> np.ndarray:
        """Score every available candidate against one oracle response.

        Returns an array aligned with ``available``; lower is always
        better (normalized Hamming distance for binary surfaces,
        ``1 - cosine`` for non-binary ones).

        By default binary scores are normalized over the support ``I``
        only — all candidates agree off it, so this changes no decision
        and halves the work. ``full_dim=True`` instead reports the
        distance over all ``D`` coordinates (off-support mismatches are
        candidate-independent sign ties and are added back in), which is
        the exact quantity paper Fig. 3 plots.
        """
        if self.binary:
            observed_packed = pack_words(observed[self.support])
            support_distance = np.asarray(
                hamming_packed(
                    self._packed_predictions[available],
                    observed_packed,
                    self.support.size,
                )
            )
            if not full_dim:
                return support_distance
            off_mismatches = int(
                np.count_nonzero(
                    observed[self.off_support] != self._off_support_signs
                )
            )
            support_mismatches = support_distance * self.support.size
            return (support_mismatches + off_mismatches) / self.dim
        # Non-binary: the residual is exactly zero off the support, so
        # support-restricted and full-dimension cosines coincide.
        residual = (
            observed[self.support].astype(np.float64) - self.total_on_support
        )
        residual_norm = float(np.linalg.norm(residual))
        if residual_norm == 0.0:
            raise AttackError("observed response carries no feature signal")
        cosines = (self._contributions[available] @ residual) / (
            self._norms[available] * residual_norm
        )
        return 1.0 - cosines


def extract_feature_mapping(
    surface: AttackSurface,
    level_order: np.ndarray,
    rng: SeedLike = None,
) -> FeatureExtractionResult:
    """Run the divide-and-conquer sweep for every feature index.

    ``level_order`` is the value mapping recovered by
    :func:`repro.attack.value_extraction.extract_value_mapping`.
    """
    del rng  # reserved for future randomized scoring variants
    n = surface.n_features
    order = np.asarray(level_order)
    table = CandidateTable(
        surface.feature_pool,
        surface.value_pool[order[0]],
        surface.value_pool[order[-1]],
        binary=surface.binary,
    )

    assignment = np.full(n, -1, dtype=np.int64)
    margins = np.zeros(n, dtype=np.float64)
    available = np.arange(n)
    guesses = 0
    for feature in range(n):
        observed = surface.oracle.query(
            _crafted_input(n, feature, surface.levels)
        )
        scores = table.score(np.asarray(observed), available)
        guesses += int(available.size)
        best_pos = int(np.argmin(scores))
        assignment[feature] = available[best_pos]
        if available.size > 1:
            runner_up = float(np.partition(scores, 1)[1])
            margins[feature] = runner_up - float(scores[best_pos])
        else:
            margins[feature] = float("inf")
        available = np.delete(available, best_pos)
    return FeatureExtractionResult(
        assignment=assignment,
        margins=margins,
        guesses=guesses,
        queries=n,
    )


def guess_distance_series(
    surface: AttackSurface,
    level_order: np.ndarray,
    feature: int = 0,
    full_dim: bool = False,
) -> np.ndarray:
    """Score *all* ``N`` candidates for one feature (no elimination).

    This is exactly the experiment of paper Fig. 3: the Hamming distance
    (binary) or ``1 - cosine`` (non-binary) of every possible guess for
    one attacked feature, where the correct candidate shows a clear dip.
    Index ``j`` of the result scores published-pool row ``j``. Pass
    ``full_dim=True`` to match the paper's full-``D`` Hamming axis.
    """
    order = np.asarray(level_order)
    table = CandidateTable(
        surface.feature_pool,
        surface.value_pool[order[0]],
        surface.value_pool[order[-1]],
        binary=surface.binary,
    )
    observed = surface.oracle.query(
        _crafted_input(surface.n_features, feature, surface.levels)
    )
    return table.score(
        np.asarray(observed), np.arange(surface.n_features), full_dim=full_dim
    )
