"""Attacking an HDLock-protected encoder (paper Sec. 4.2).

Even against HDLock the adversary can build a *criterion* that separates
a correct key guess from wrong ones — security rests on the size of the
guess space, not on the absence of a distinguisher. The criterion:

1. query two crafted inputs that differ only in feature ``i`` (all-min
   vs feature-``i``-at-max) and subtract the outputs (Eq. 11). The
   constant part ``H_0`` cancels, so the difference is non-zero exactly
   where the first term ``ValHV * prod_l rho^{k_{i,l}}(B_{i,l})``
   changed the sign — the support ``I``;
2. a guessed subkey predicts the difference on ``I`` via Eq. 13; the
   correct guess matches (Hamming ~0 for binary, cosine exactly 1 for
   non-binary) while wrong guesses sit at chance.

Evaluating one guess costs ``O(|I|)``, but there are ``(D * P)^L``
guesses per feature — the quantity Fig. 7 plots and the reason a
two-layer key needs ``4.81e16`` tries on MNIST.

The module provides the single-guess scorer, the restricted sweeps of
Figs. 5/6 (three of four parameters known, sweep the fourth), and an
adapter showing that the *unprotected* attack of Sec. 3 collapses
against a locked encoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.attack.threat_model import AttackSurface, LockedSurface
from repro.encoding.engine import resolve_chunk_size
from repro.errors import AttackError, ConfigurationError
from repro.hv.packing import hamming_packed, pack_words
from repro.hv.similarity import cosine_matrix
from repro.memory.key import LockKey, SubKey
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class DifferenceObservation:
    """The attacker's two-query observation for one targeted feature.

    ``support`` is the index set ``I`` (coordinates where the two
    responses differ); ``target`` is the observed difference restricted
    to ``I`` — signs for a binary oracle, exact integers otherwise.
    """

    feature: int
    support: np.ndarray
    target: np.ndarray
    queries: int


def observe_difference(
    surface: LockedSurface, feature: int = 0
) -> DifferenceObservation:
    """Query the Eq. 11 input pair and extract support and target."""
    if not 0 <= feature < surface.n_features:
        raise ConfigurationError(
            f"feature {feature} outside [0, {surface.n_features})"
        )
    base = np.zeros(surface.n_features, dtype=np.int64)
    probe = base.copy()
    probe[feature] = surface.levels - 1
    response_min = surface.oracle.query(base).astype(np.int64)
    response_max = surface.oracle.query(probe).astype(np.int64)
    difference = response_min - response_max
    # The informative coordinates must also lie where ValHV_1 and
    # ValHV_M disagree — elsewhere the Eq. 11 first terms are equal and
    # any observed difference is pure sign(0) tie-break noise from the
    # binary oracle. The attacker knows the value mapping (strong model),
    # so filtering is free and sharpens the criterion.
    value_support = (
        surface.value_matrix[0].astype(np.int64)
        != surface.value_matrix[-1].astype(np.int64)
    )
    support = np.flatnonzero((difference != 0) & value_support)
    if support.size == 0:
        raise AttackError(
            "crafted input pair produced identical encodings; the oracle "
            "does not expose the targeted feature"
        )
    target = difference[support]
    if surface.binary:
        # difference of two sign vectors on its support is +-2 -> signs.
        target = np.sign(target).astype(np.int64)
    return DifferenceObservation(
        feature=feature, support=support, target=target, queries=2
    )


def _rotated_on_support(
    pool: np.ndarray, index: int, rotation: int, support: np.ndarray
) -> np.ndarray:
    """``rho^rotation(pool[index])`` evaluated only at ``support``.

    Left-rotation by ``k`` places original coordinate ``(d + k) mod D``
    at position ``d``, so a gather replaces materializing the rotation.
    """
    dim = pool.shape[1]
    return pool[index, (support + rotation) % dim]


def _guess_product_on_support(
    pool: np.ndarray, subkey: SubKey, support: np.ndarray
) -> np.ndarray:
    """Eq. 9 product of a guessed subkey, restricted to ``support``."""
    product = np.ones(support.size, dtype=np.int64)
    for index, rotation in subkey.pairs():
        product *= _rotated_on_support(pool, index, rotation, support)
    return product


def score_guess(
    surface: LockedSurface,
    observation: DifferenceObservation,
    guess: SubKey,
) -> float:
    """Score one key guess against an observation (Eq. 13).

    Binary surfaces return the normalized Hamming distance on ``I``
    (correct guess ~0, wrong ~0.5 — Fig. 5's y-axis); non-binary surfaces
    return the cosine similarity (correct guess exactly 1, wrong ~0 —
    Fig. 6's y-axis).
    """
    v_delta = (
        surface.value_matrix[0].astype(np.int64)
        - surface.value_matrix[-1].astype(np.int64)
    )[observation.support]
    predicted = v_delta * _guess_product_on_support(
        surface.base_pool, guess, observation.support
    )
    if surface.binary:
        mismatches = np.count_nonzero(np.sign(predicted) != observation.target)
        return mismatches / observation.support.size
    target = observation.target.astype(np.float64)
    pred = predicted.astype(np.float64)
    denom = np.linalg.norm(target) * np.linalg.norm(pred)
    if denom == 0:
        return 0.0
    return float(target @ pred / denom)


def score_guesses(
    surface: LockedSurface,
    observation: DifferenceObservation,
    guesses: Sequence[SubKey],
    chunk_size: int | None = None,
    memory_budget: int | None = None,
) -> np.ndarray:
    """Score many key guesses against one observation in one pass.

    The batched form of :func:`score_guess`: all candidate products on
    the support are built with a single ``(chunk, L, |I|)`` gather per
    tile instead of one Python-level product loop per guess — the kernel
    behind the Fig. 5/6 sweeps, where a rotation sweep alone evaluates
    ``D`` candidates. Binary surfaces score in the packed domain: the
    observed target packs to uint64 bit-planes once, each tile's
    predicted signs pack as they are produced, and the mismatch count is
    one XOR-popcount — no dense sign comparison over the support. Tiles
    follow the engine chunking model (``chunk_size`` guesses per tile,
    or a ``memory_budget``-bounded working set). Guesses must share a
    layer count; scores match :func:`score_guess` exactly.
    """
    if not guesses:
        return np.empty(0, dtype=np.float64)
    layer_counts = {g.layers for g in guesses}
    if len(layer_counts) != 1:
        raise ConfigurationError(
            f"guesses must share one layer count, got {sorted(layer_counts)}"
        )
    pool = np.asarray(surface.base_pool)
    dim = pool.shape[1]
    support = observation.support
    indices = np.array([g.indices for g in guesses], dtype=np.int64)
    rotations = np.array([g.rotations for g in guesses], dtype=np.int64)
    layers = indices.shape[1]
    v_delta = (
        surface.value_matrix[0].astype(np.int64)
        - surface.value_matrix[-1].astype(np.int64)
    )[support]
    if surface.binary:
        # v_delta is nonzero everywhere on the support (the observation
        # filtered it), so every predicted entry carries a sign bit.
        target_words = pack_words(observation.target)
    else:
        target_f = observation.target.astype(np.float64)

    scores = np.empty(len(guesses), dtype=np.float64)
    # Per guess: the (L, |I|) column-index array, the gathered int64
    # values of the same shape, and the product/predicted rows.
    row_bytes = support.size * (2 * layers + 2) * 8
    chunk = resolve_chunk_size(row_bytes, len(guesses), chunk_size, memory_budget)
    for start in range(0, len(guesses), chunk):
        stop = min(start + chunk, len(guesses))
        cols = (support[None, None, :] + rotations[start:stop, :, None]) % dim
        gathered = pool[indices[start:stop, :, None], cols].astype(np.int64)
        product = np.multiply.reduce(gathered, axis=1)
        predicted = v_delta[None, :] * product
        if surface.binary:
            scores[start:stop] = np.asarray(
                hamming_packed(pack_words(predicted), target_words, support.size)
            )
        else:
            scores[start:stop] = cosine_matrix(predicted, target_f[None, :])[:, 0]
    return scores


@dataclass(frozen=True)
class SweepResult:
    """A Fig. 5 / Fig. 6 restricted sweep over one key parameter.

    ``scores[0]`` belongs to the correct parameter value; the paper plots
    this point first followed by all wrong guesses. ``metric`` names the
    y-axis ("hamming": lower is better; "cosine": higher is better).
    """

    parameter: str
    layer: int
    metric: str
    candidates: np.ndarray
    scores: np.ndarray

    @property
    def correct_score(self) -> float:
        """Score of the true parameter value."""
        return float(self.scores[0])

    @property
    def separation(self) -> float:
        """Gap between the correct score and the best wrong score.

        Positive means the correct guess is uniquely identifiable —
        which is the paper's point: one remaining unknown parameter is
        *detectable*, there are just astronomically many combinations.
        """
        wrong = self.scores[1:]
        if wrong.size == 0:
            return float("inf")
        if self.metric == "hamming":
            return float(wrong.min() - self.scores[0])
        return float(self.scores[0] - wrong.max())


def _sweep_scores(
    surface: LockedSurface,
    observation: DifferenceObservation,
    fixed: SubKey,
    layer: int,
    candidate_subkeys: list[SubKey],
) -> np.ndarray:
    del fixed, layer  # encoded in the candidate subkeys already
    return score_guesses(surface, observation, candidate_subkeys)


def sweep_parameter(
    surface: LockedSurface,
    true_key: LockKey,
    parameter: str,
    layer: int,
    feature: int = 0,
    max_wrong: int | None = None,
    rng: SeedLike = None,
) -> SweepResult:
    """Reproduce one panel of Fig. 5/6.

    ``parameter`` is ``"rotation"`` (sweep ``k_{feature,layer}`` over all
    ``D`` values) or ``"index"`` (sweep ``index(B_{feature,layer})`` over
    all ``P`` pool rows); the other ``2L - 1`` parameters are set to
    their true values — the paper's worst case where the adversary
    already learned everything else. ``max_wrong`` caps the number of
    wrong candidates evaluated (evenly strided), keeping full-scale runs
    tractable without changing the conclusion.
    """
    del rng  # sweeps are deterministic; signature kept uniform
    if parameter not in ("rotation", "index"):
        raise ConfigurationError(
            f"parameter must be 'rotation' or 'index', got {parameter!r}"
        )
    subkey = true_key.subkeys[feature]
    if not 0 <= layer < subkey.layers:
        raise ConfigurationError(
            f"layer {layer} outside [0, {subkey.layers})"
        )
    observation = observe_difference(surface, feature)

    if parameter == "rotation":
        correct = subkey.rotations[layer]
        space = surface.dim
    else:
        correct = subkey.indices[layer]
        space = surface.pool_size
    wrong_values = [v for v in range(space) if v != correct]
    if max_wrong is not None and len(wrong_values) > max_wrong:
        stride = len(wrong_values) / max_wrong
        wrong_values = [wrong_values[int(i * stride)] for i in range(max_wrong)]
    candidates = np.array([correct] + wrong_values, dtype=np.int64)

    def with_value(value: int) -> SubKey:
        indices = list(subkey.indices)
        rotations = list(subkey.rotations)
        if parameter == "rotation":
            rotations[layer] = value
        else:
            indices[layer] = value
        return SubKey(tuple(indices), tuple(rotations))

    scores = _sweep_scores(
        surface,
        observation,
        subkey,
        layer,
        [with_value(int(v)) for v in candidates],
    )
    return SweepResult(
        parameter=parameter,
        layer=layer,
        metric="hamming" if surface.binary else "cosine",
        candidates=candidates,
        scores=scores,
    )


def as_attack_surface(surface: LockedSurface) -> AttackSurface:
    """View a locked deployment through the unprotected attack's eyes.

    The Sec. 3 divide-and-conquer attack expects a feature pool; against
    HDLock the only published pool is the base pool, whose rows are *not*
    the feature hypervectors (for ``L >= 2`` — and for ``L = 1`` they are
    rotated). Running the plain attack through this adapter demonstrates
    the lock: no candidate scores better than chance.
    """
    return AttackSurface(
        feature_pool=surface.base_pool,
        value_pool=surface.value_matrix,
        oracle=surface.oracle,
    )
