"""End-to-end reasoning attack: value step, feature step, verdict.

This is the orchestration measured in paper Table 1 ("Reasoning Time"):
given only the attack surface (public pools + oracle), recover the whole
index mapping and time both phases. Verification against ground truth is
a separate owner-side function so the attack itself stays honest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.feature_extraction import (
    FeatureExtractionResult,
    extract_feature_mapping,
)
from repro.attack.threat_model import AttackSurface, GroundTruth
from repro.attack.value_extraction import ValueExtractionResult, extract_value_mapping
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer


@dataclass(frozen=True)
class ReasoningResult:
    """Complete output of the reasoning attack on one deployed model."""

    value: ValueExtractionResult
    feature: FeatureExtractionResult
    value_seconds: float
    feature_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end reasoning time (the Table 1 metric)."""
        return self.value_seconds + self.feature_seconds

    @property
    def total_queries(self) -> int:
        """Oracle queries spent: 1 (value step) + N (feature step)."""
        return self.value.queries + self.feature.queries

    @property
    def total_guesses(self) -> int:
        """Candidate evaluations spent in the divide-and-conquer sweep."""
        return self.feature.guesses


def run_reasoning_attack(
    surface: AttackSurface, rng: SeedLike = None
) -> ReasoningResult:
    """Execute both extraction steps against ``surface`` and time them."""
    with Timer() as value_timer:
        value = extract_value_mapping(surface, rng)
    with Timer() as feature_timer:
        feature = extract_feature_mapping(surface, value.level_order, rng)
    return ReasoningResult(
        value=value,
        feature=feature,
        value_seconds=value_timer.elapsed,
        feature_seconds=feature_timer.elapsed,
    )


@dataclass(frozen=True)
class MappingVerdict:
    """Owner-side comparison of a recovered mapping against ground truth."""

    value_accuracy: float
    feature_accuracy: float

    @property
    def exact(self) -> bool:
        """True when every value level and feature index was recovered."""
        return self.value_accuracy == 1.0 and self.feature_accuracy == 1.0


def verify_mapping(result: ReasoningResult, truth: GroundTruth) -> MappingVerdict:
    """Fraction of value levels / feature indices recovered correctly."""
    value_ok = np.mean(result.value.level_order == truth.value_assignment)
    feature_ok = np.mean(result.feature.assignment == truth.feature_assignment)
    return MappingVerdict(
        value_accuracy=float(value_ok), feature_accuracy=float(feature_ok)
    )
