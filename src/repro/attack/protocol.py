"""The ``Attacker`` protocol: one interface for every arena strategy.

The attack arena (:mod:`repro.arena`) pits attacker *strategies* against
defender *configurations*. A strategy is anything implementing the
:class:`Attacker` protocol below — a named object whose :meth:`~Attacker.run`
drives exactly the blackbox surface of the threat model
(:class:`~repro.attack.threat_model.LockedSurface`: public base pool,
published value matrix, query oracle) under an explicit
:class:`AttackBudget`, and reports what it believes about the key as a
tuple of per-feature :class:`FeatureGuess` records.

The protocol deliberately mirrors the paper's separation of powers: an
attacker never sees the encoder object, the true key, or any owner-side
state — recovery is judged *afterwards* by the arena's owner-side
evaluation (:mod:`repro.arena.matrix`). Abstention is first-class: a
guess with ``subkey=None`` says "this feature did not separate under my
criterion", which is exactly the honest outcome of the paper's
``L >= 2`` argument and scores as chance, not as a lucky hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.attack.threat_model import LockedSurface
from repro.encoding.oracle import EncodingOracle
from repro.errors import ConfigurationError
from repro.memory.key import SubKey

__all__ = [
    "AttackBudget",
    "AttackOutcome",
    "Attacker",
    "FeatureGuess",
]


@dataclass(frozen=True)
class AttackBudget:
    """Resource limits one arena cell grants an attacker.

    ``max_features`` bounds how many features the strategy targets (the
    arena scores exactly those); ``max_queries`` caps oracle calls (None
    = unlimited); ``max_candidates`` caps key-guess evaluations per
    feature for strategies that enumerate or sample candidates (None =
    strategy default / exhaustive).
    """

    max_features: int = 4
    max_queries: int | None = None
    max_candidates: int | None = None

    def __post_init__(self) -> None:
        if self.max_features < 1:
            raise ConfigurationError(
                f"max_features must be >= 1, got {self.max_features}"
            )
        for name in ("max_queries", "max_candidates"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1 or None, got {value}"
                )

    def features(self, surface: LockedSurface) -> range:
        """The features an attacker targets under this budget.

        The leading ``min(max_features, N)`` features — which features
        are attacked is statistically irrelevant (the key draws are
        i.i.d. across features), so the arena fixes the prefix to keep
        cells comparable across strategies.
        """
        return range(min(self.max_features, surface.n_features))

    def allows_queries(self, oracle: EncodingOracle, needed: int) -> bool:
        """True when ``needed`` more oracle calls fit in the budget."""
        if self.max_queries is None:
            return True
        return oracle.n_queries + needed <= self.max_queries


@dataclass(frozen=True)
class FeatureGuess:
    """What a strategy believes about one feature's subkey.

    ``subkey=None`` is an abstention — the strategy found no candidate
    that met its own acceptance criterion. ``score`` is the strategy's
    internal criterion value for its best candidate (lower is better by
    arena convention; non-binary cosine criteria are reported as
    ``1 - cosine``).
    """

    feature: int
    subkey: SubKey | None
    score: float

    @property
    def abstained(self) -> bool:
        """True when the strategy declined to commit to a subkey."""
        return self.subkey is None


@dataclass(frozen=True)
class AttackOutcome:
    """Everything a strategy hands back from one arena cell.

    ``queries`` is read off the oracle after the run (served queries
    only — a guarded oracle does not count refused calls);
    ``candidates_scored`` counts key-guess evaluations, the unit of the
    paper's ``(D*P)^L`` complexity argument. ``locked_out`` records that
    a defender countermeasure cut oracle access mid-attack.
    """

    attacker: str
    guesses: tuple[FeatureGuess, ...]
    queries: int
    candidates_scored: int
    locked_out: bool = False
    notes: str = ""

    @property
    def abstentions(self) -> int:
        """Number of targeted features the strategy abstained on."""
        return sum(1 for g in self.guesses if g.abstained)


@runtime_checkable
class Attacker(Protocol):
    """A pluggable attack strategy (see :mod:`repro.arena.registry`).

    Implementations must be cheap to construct (the arena instantiates
    one per cell) and must derive all randomness from the ``rng`` they
    are handed — never from global state — so cells stay reproducible
    and independent of execution order.
    """

    name: str

    def run(
        self,
        surface: LockedSurface,
        budget: AttackBudget,
        rng: np.random.Generator,
    ) -> AttackOutcome:
        """Attack ``surface`` within ``budget`` and report the outcome."""
        ...
