"""Model reconstruction from a stolen mapping (paper Table 1).

Once the reasoning attack recovers the index mapping, the adversary owns
a functionally identical encoding module: re-indexing the public pools
by the recovered assignment reproduces the victim's feature and level
memories exactly. Training class hypervectors through the cloned encoder
then yields the "Recovered Accuracy" column of Table 1 — matching the
original model and demonstrating the IP is fully leaked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.pipeline import ReasoningResult
from repro.attack.threat_model import AttackSurface
from repro.data.synthetic import Dataset
from repro.encoding.record import RecordEncoder
from repro.memory.item_memory import FeatureMemory, LevelMemory
from repro.model.train import TrainingResult, train_model
from repro.utils.rng import SeedLike


def reconstruct_encoder(
    surface: AttackSurface, result: ReasoningResult, rng: SeedLike = None
) -> RecordEncoder:
    """Build the attacker's clone of the victim encoding module."""
    feature_memory = FeatureMemory(
        surface.feature_pool[result.feature.assignment].copy()
    )
    level_memory = LevelMemory(surface.value_pool[result.value.level_order].copy())
    return RecordEncoder(feature_memory, level_memory, rng=rng)


@dataclass(frozen=True)
class TheftReport:
    """Accuracy comparison between victim and cloned model (Table 1 row)."""

    original_accuracy: float
    recovered_accuracy: float

    @property
    def accuracy_gap(self) -> float:
        """Victim minus clone accuracy; ~0 when the theft succeeded."""
        return self.original_accuracy - self.recovered_accuracy


def evaluate_theft(
    original_accuracy: float,
    surface: AttackSurface,
    result: ReasoningResult,
    dataset: Dataset,
    binary: bool,
    retrain_epochs: int = 3,
    rng: SeedLike = None,
) -> tuple[TheftReport, TrainingResult]:
    """Train a model through the cloned encoder and compare accuracies.

    Mirrors the paper's evaluation: the attacker has (or collects)
    training data, so the question is purely whether the stolen encoding
    module supports the same model quality as the original.
    """
    clone = reconstruct_encoder(surface, result, rng=rng)
    training = train_model(
        clone,
        dataset.train_x,
        dataset.train_y,
        n_classes=dataset.n_classes,
        binary=binary,
        retrain_epochs=retrain_epochs,
        rng=rng,
    )
    recovered = training.model.score(dataset.test_x, dataset.test_y)
    return (
        TheftReport(
            original_accuracy=float(original_accuracy),
            recovered_accuracy=float(recovered),
        ),
        training,
    )
