"""Attacker's view of a deployed HDC model (paper Sec. 3.1).

The adversary gets exactly two capabilities:

1. read the **unindexed** hypervector pools from public memory — the
   rows are published shuffled, so positions carry no mapping
   information;
2. drive the deployed encoder with crafted inputs through the
   :class:`~repro.encoding.oracle.EncodingOracle` and observe outputs.

:func:`expose_model` performs the owner-side deployment: it shuffles the
memories into :class:`~repro.memory.secure.PublicMemory`, provisions the
placements into :class:`~repro.memory.secure.SecureMemory`, and hands
back the attacker-visible surface plus the owner-side ground truth
(which tests and Table 1 evaluation use — attack code never touches it).

:func:`expose_locked_model` is the HDLock variant (Sec. 4.2): the base
pool is public, the *value* mapping is assumed already known to the
attacker (the paper's strong attack model — ValHVs are unprotected), and
the key sits in secure memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.locked import LockedEncoder
from repro.encoding.oracle import EncodingOracle
from repro.encoding.record import RecordEncoder
from repro.memory.secure import PublicMemory, SecureMemory
from repro.utils.rng import SeedLike, resolve_rng


@dataclass(frozen=True)
class AttackSurface:
    """Everything the adversary can see of an unprotected model."""

    #: Shuffled copies of the published pools (the attacker reads these
    #: out of :class:`PublicMemory`; they are materialized here so attack
    #: code is a pure function of its inputs).
    feature_pool: np.ndarray
    value_pool: np.ndarray
    oracle: EncodingOracle

    @property
    def n_features(self) -> int:
        """Input width ``N`` (public device interface)."""
        return self.oracle.n_features

    @property
    def levels(self) -> int:
        """Value levels ``M`` (public device interface)."""
        return self.oracle.levels

    @property
    def dim(self) -> int:
        """Hypervector dimensionality ``D`` (visible on outputs)."""
        return self.oracle.dim

    @property
    def binary(self) -> bool:
        """Whether the deployed encoder binarizes outputs."""
        return self.oracle.binary


@dataclass(frozen=True)
class GroundTruth:
    """Owner-side mapping information (never given to attack code).

    ``feature_assignment[i]`` is the public-pool row index that truly is
    ``FeaHV_{i+1}``; ``value_assignment[v]`` likewise for ``ValHV_{v+1}``.
    """

    feature_assignment: np.ndarray
    value_assignment: np.ndarray
    secure_memory: SecureMemory


def _placement_to_assignment(placement: np.ndarray) -> np.ndarray:
    """Invert a publish placement into an index-to-row assignment.

    ``placement[j] = i`` means published row ``j`` holds true index
    ``i``; the assignment maps the other way: ``assignment[i] = j``.
    """
    assignment = np.empty_like(placement)
    assignment[placement] = np.arange(placement.shape[0])
    return assignment


def expose_model(
    encoder: RecordEncoder,
    binary: bool = True,
    rng: SeedLike = None,
) -> tuple[AttackSurface, GroundTruth]:
    """Deploy an unprotected model per the threat model and expose it."""
    gen = resolve_rng(rng)
    feature_public, feature_placement = PublicMemory.publish(
        encoder.feature_memory.matrix, gen, label="feature-pool"
    )
    value_public, value_placement = PublicMemory.publish(
        encoder.level_memory.matrix, gen, label="value-pool"
    )
    secure = SecureMemory()
    secure.store("feature_placement", feature_placement)
    secure.store("value_placement", value_placement)

    surface = AttackSurface(
        feature_pool=feature_public.rows,
        value_pool=value_public.rows,
        oracle=EncodingOracle(encoder, binary=binary),
    )
    truth = GroundTruth(
        feature_assignment=_placement_to_assignment(feature_placement),
        value_assignment=_placement_to_assignment(value_placement),
        secure_memory=secure,
    )
    return surface, truth


@dataclass(frozen=True)
class LockedSurface:
    """Attacker's view of an HDLock deployment (strong model, Sec. 4.2).

    The base pool is public and **unordered knowledge of it suffices**
    (its indexing is part of the key, not of the pool). The value matrix
    is exposed *in level order*: the paper grants the attacker the full
    ValHV mapping to isolate the hardness of the feature key.
    """

    base_pool: np.ndarray
    value_matrix: np.ndarray
    oracle: EncodingOracle

    @property
    def n_features(self) -> int:
        """Input width ``N``."""
        return self.oracle.n_features

    @property
    def levels(self) -> int:
        """Value levels ``M``."""
        return self.oracle.levels

    @property
    def dim(self) -> int:
        """Hypervector dimensionality ``D``."""
        return self.oracle.dim

    @property
    def pool_size(self) -> int:
        """Published base-pool size ``P``."""
        return int(self.base_pool.shape[0])

    @property
    def binary(self) -> bool:
        """Whether the deployed encoder binarizes outputs."""
        return self.oracle.binary


def expose_locked_model(
    encoder: LockedEncoder,
    binary: bool = True,
) -> tuple[LockedSurface, SecureMemory]:
    """Deploy an HDLock model: publish pool + value matrix, lock the key.

    Unlike :func:`expose_model`, the base pool is published *unshuffled*:
    its row positions carry no mapping information by design — which base
    serves which feature (and under which rotation) is exactly what the
    key encodes, and the key never leaves secure memory.
    """
    secure = SecureMemory()
    secure.store("lock_key", encoder.key)
    surface = LockedSurface(
        base_pool=encoder.base_pool,
        value_matrix=encoder.level_memory.matrix,
        oracle=EncodingOracle(encoder, binary=binary),
    )
    return surface, secure
