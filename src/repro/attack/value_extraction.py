"""Step 1 of the reasoning attack: recover the value-HV mapping.

Paper Sec. 3.2, "Value Hypervector Extraction". The published value pool
has a strong geometric fingerprint (Eq. 1b): all ``M`` rows sit on a
line, with only the two extremes ``ValHV_1`` / ``ValHV_M`` mutually
orthogonal. The attack:

1. compute all pairwise Hamming distances of the published pool — the
   arg-max pair are the two extremes;
2. craft a single all-minimum input. By Eq. 5 the encoder output factors
   as ``ValHV_1 * sign(sum_i FeaHV_i)``, and the *sum over the pool*
   equals the sum over the true features regardless of mapping, so the
   attacker can strip the feature part off: Eq. 6 gives an estimate of
   ``ValHV_1``;
3. whichever extreme is closer to the estimate is level 1; the remaining
   levels sort by distance from it.

The only noise source is the encoder's randomized ``sign(0)``: for ``N``
features, a fraction ``~sqrt(2 / (pi N))`` of dimensions tie, half of
which flip the estimate. That keeps the correct extreme at distance a
few percent while the wrong one stays near 0.5 — an unambiguous margin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.threat_model import AttackSurface
from repro.errors import AttackError
from repro.hv.ops import bind, sign
from repro.hv.packing import hamming_packed, pack_words
from repro.hv.similarity import hamming, is_bipolar, pairwise_hamming
from repro.utils.rng import SeedLike, resolve_rng


@dataclass(frozen=True)
class ValueExtractionResult:
    """Recovered value mapping plus the evidence behind it.

    ``level_order[v]`` is the published-pool row recovered as
    ``ValHV_{v+1}``. ``extreme_distances`` holds the Hamming distance of
    the Eq. 6 estimate to the (chosen, rejected) extreme candidates —
    the attack's confidence gap.
    """

    level_order: np.ndarray
    extreme_distances: tuple[float, float]
    queries: int


def find_extreme_pair(value_pool: np.ndarray) -> tuple[int, int]:
    """Indices of the two most distant rows of the published value pool.

    These are the extreme levels ``ValHV_1`` and ``ValHV_M`` (in unknown
    order) because every other pair is strictly closer under Eq. 1b.
    """
    distances = pairwise_hamming(value_pool)
    flat = int(np.argmax(distances))
    i, j = divmod(flat, distances.shape[1])
    if i == j:
        raise AttackError("value pool has fewer than two distinct rows")
    return (i, j) if i < j else (j, i)


def estimate_min_value_hv(surface: AttackSurface, rng: SeedLike = None) -> np.ndarray:
    """Estimate ``ValHV_1`` from one all-minimum oracle query (Eq. 5-6)."""
    gen = resolve_rng(rng)
    all_min = np.zeros(surface.n_features, dtype=np.int64)
    response = surface.oracle.query(all_min)
    if not surface.binary:
        response = sign(response, gen)
    # sum over the *published pool* == sum over the true features: the
    # mapping permutes terms of a commutative sum (the paper's key
    # observation enabling Eq. 6 without mapping knowledge).
    feature_sum_sign = sign(
        surface.feature_pool.sum(axis=0, dtype=np.int64), gen
    )
    return bind(response, feature_sum_sign)


def extract_value_mapping(
    surface: AttackSurface,
    rng: SeedLike = None,
    min_margin: float = 0.1,
) -> ValueExtractionResult:
    """Run the full value-extraction step against ``surface``.

    ``min_margin`` is the smallest acceptable gap between the estimate's
    distances to the two extreme candidates; an ambiguous gap (both near
    0.5, e.g. because the pool is not actually a level memory) raises
    :class:`AttackError` instead of silently returning a guess.
    """
    first, second = find_extreme_pair(surface.value_pool)
    estimate = estimate_min_value_hv(surface, rng)
    d_first = float(hamming(surface.value_pool[first], estimate))
    d_second = float(hamming(surface.value_pool[second], estimate))
    if abs(d_first - d_second) < min_margin:
        raise AttackError(
            f"cannot identify ValHV_1: candidate distances {d_first:.3f} vs "
            f"{d_second:.3f} are within margin {min_margin}"
        )
    minimum_row = first if d_first < d_second else second
    chosen, rejected = min(d_first, d_second), max(d_first, d_second)

    # Levels sort by distance from ValHV_1 (Eq. 1b is monotonic in v).
    # Bipolar pools score through the word-packed XOR-popcount kernel
    # (identical mismatch counts, an eighth of the memory traffic);
    # anything else — packing collapses 0 and positive magnitudes —
    # keeps the dense comparison.
    if is_bipolar(surface.value_pool):
        packed_pool = pack_words(surface.value_pool)
        distances_from_min = np.asarray(
            hamming_packed(
                packed_pool, packed_pool[minimum_row], surface.value_pool.shape[1]
            )
        )
    else:
        distances_from_min = np.asarray(
            hamming(surface.value_pool, surface.value_pool[minimum_row])
        )
    level_order = np.argsort(distances_from_min, kind="stable")
    return ValueExtractionResult(
        level_order=level_order,
        extreme_distances=(chosen, rejected),
        queries=1,
    )
