"""Datasets: synthetic benchmark generators, quantization, splits."""

from repro.data.benchmarks import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    PAPER_REFERENCE,
    PaperReference,
    benchmark_spec,
    load_benchmark,
)
from repro.data.quantize import dequantize, level_bounds, quantize_minmax
from repro.data.splits import stratified_indices, train_test_split
from repro.data.synthetic import Dataset, SyntheticSpec, make_dataset

__all__ = [
    "Dataset",
    "SyntheticSpec",
    "make_dataset",
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "PAPER_REFERENCE",
    "PaperReference",
    "benchmark_spec",
    "load_benchmark",
    "quantize_minmax",
    "dequantize",
    "level_bounds",
    "train_test_split",
    "stratified_indices",
]
