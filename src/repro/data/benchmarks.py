"""Registry of the five paper benchmarks (synthetic stand-ins).

Shapes follow the public datasets the paper evaluates on; noise levels
are calibrated so that the *baseline* (unprotected, non-binary) HDC model
reaches roughly the paper's Table 1 accuracy. ``PAPER_REFERENCE`` holds
the paper's reported numbers for side-by-side reporting in
EXPERIMENTS.md and the benchmark harness.

Shape sources:

* MNIST — 28x28 gray images, 10 digits.
* UCIHAR — 561 engineered accelerometer features, 6 activities.
* FACE — CMU Face Images at 32x30 (= 960 pixels) vs CIFAR negatives,
  binary face / non-face.
* ISOLET — 617 spoken-letter features, 26 letters.
* PAMAP — 27 IMU channels (3 IMUs x 9 axes), 5 physical activities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.synthetic import Dataset, SyntheticSpec, make_dataset
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike

#: Quantization level count shared by all benchmarks (typical HDC setup).
DEFAULT_LEVELS = 16

# Per-benchmark ``boundary_fraction`` is calibrated as
# ``2 * (1 - paper nonbinary accuracy)``: boundary samples classify at
# ~even odds, so the accuracy ceiling is ~``1 - q/2`` (see
# SyntheticSpec.boundary_fraction). ``noise_sigma`` is set low enough
# that clean samples classify near-perfectly in both model flavors.
BENCHMARKS: dict[str, SyntheticSpec] = {
    "mnist": SyntheticSpec(
        name="mnist",
        n_features=784,
        n_classes=10,
        levels=DEFAULT_LEVELS,
        train_samples=2000,
        test_samples=500,
        noise_sigma=0.50,
        boundary_fraction=0.365,
    ),
    "ucihar": SyntheticSpec(
        name="ucihar",
        n_features=561,
        n_classes=6,
        levels=DEFAULT_LEVELS,
        train_samples=1500,
        test_samples=500,
        noise_sigma=0.50,
        boundary_fraction=0.323,
    ),
    "face": SyntheticSpec(
        name="face",
        n_features=960,
        n_classes=2,
        levels=DEFAULT_LEVELS,
        train_samples=1000,
        test_samples=400,
        noise_sigma=0.50,
        boundary_fraction=0.122,
    ),
    "isolet": SyntheticSpec(
        name="isolet",
        n_features=617,
        n_classes=26,
        levels=DEFAULT_LEVELS,
        train_samples=1560,
        test_samples=520,
        noise_sigma=0.50,
        boundary_fraction=0.232,
    ),
    "pamap": SyntheticSpec(
        name="pamap",
        n_features=27,
        n_classes=5,
        levels=DEFAULT_LEVELS,
        train_samples=1000,
        test_samples=400,
        noise_sigma=0.30,
        boundary_fraction=0.315,
    ),
}

#: Benchmark order used by the paper's tables and figures.
BENCHMARK_ORDER = ("mnist", "ucihar", "face", "isolet", "pamap")


@dataclass(frozen=True)
class PaperReference:
    """Numbers reported in the paper for one benchmark (Table 1)."""

    nonbinary_accuracy: float
    binary_accuracy: float
    nonbinary_reasoning_seconds: float
    binary_reasoning_seconds: float


PAPER_REFERENCE: dict[str, PaperReference] = {
    "mnist": PaperReference(0.8176, 0.7980, 4057.59, 4284.27),
    "ucihar": PaperReference(0.8385, 0.8164, 1404.33, 1674.99),
    "face": PaperReference(0.9390, 0.9350, 7388.32, 9100.14),
    "isolet": PaperReference(0.8839, 0.8685, 1649.81, 2750.30),
    "pamap": PaperReference(0.8426, 0.8156, 0.85, 5.89),
}


def benchmark_spec(name: str) -> SyntheticSpec:
    """Look up a benchmark spec by (case-insensitive) name."""
    key = name.lower()
    if key not in BENCHMARKS:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[key]


def load_benchmark(
    name: str, rng: SeedLike = None, sample_scale: float = 1.0
) -> Dataset:
    """Generate one benchmark dataset, optionally with scaled sample
    counts (reduced-scale experiment runs)."""
    spec = benchmark_spec(name)
    if sample_scale != 1.0:
        spec = spec.scaled(sample_scale)
    return make_dataset(spec, rng)
