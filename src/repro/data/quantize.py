"""Min-max discretization of raw feature values to level indices.

The paper (Sec. 2, "Encoding"): feature values are discretized to ``M``
levels based on the minimum and maximum values across the entire dataset.
Encoders in this library consume the resulting integer level vectors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def quantize_minmax(
    values: np.ndarray,
    levels: int,
    vmin: float | None = None,
    vmax: float | None = None,
) -> np.ndarray:
    """Map real values to integer levels ``0..levels-1``.

    ``vmin``/``vmax`` default to the extremes of ``values`` (the paper's
    dataset-wide min/max); out-of-range inputs clip to the boundary
    levels, matching fixed-point hardware front-ends.
    """
    if levels < 2:
        raise ConfigurationError(f"need at least 2 levels, got {levels}")
    arr = np.asarray(values, dtype=np.float64)
    lo = float(arr.min()) if vmin is None else float(vmin)
    hi = float(arr.max()) if vmax is None else float(vmax)
    if hi <= lo:
        # Degenerate range: every value is the same level.
        return np.zeros(arr.shape, dtype=np.int64)
    scaled = (arr - lo) / (hi - lo) * levels
    return np.clip(scaled.astype(np.int64), 0, levels - 1)


def dequantize(
    levels_arr: np.ndarray, levels: int, vmin: float, vmax: float
) -> np.ndarray:
    """Map level indices back to bin-center values (lossy inverse)."""
    if levels < 2:
        raise ConfigurationError(f"need at least 2 levels, got {levels}")
    arr = np.asarray(levels_arr, dtype=np.float64)
    width = (vmax - vmin) / levels
    return vmin + (arr + 0.5) * width


def level_bounds(levels: int, vmin: float, vmax: float) -> np.ndarray:
    """The ``levels + 1`` bin edges used by :func:`quantize_minmax`."""
    if levels < 2:
        raise ConfigurationError(f"need at least 2 levels, got {levels}")
    return np.linspace(vmin, vmax, levels + 1)
