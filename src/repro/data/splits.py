"""Dataset splitting helpers (for user-supplied raw data)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.utils.rng import SeedLike, resolve_rng


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    rng: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split ``(x, y)`` into train/test partitions.

    Returns ``(train_x, train_y, test_x, test_y)``. ``test_fraction``
    must leave at least one sample on each side.
    """
    x_arr = np.asarray(x)
    y_arr = np.asarray(y)
    if x_arr.shape[0] != y_arr.shape[0]:
        raise DimensionMismatchError(
            f"x has {x_arr.shape[0]} rows but y has {y_arr.shape[0]}"
        )
    count = x_arr.shape[0]
    n_test = int(round(count * test_fraction))
    if not 0 < n_test < count:
        raise ConfigurationError(
            f"test_fraction={test_fraction} leaves an empty split for "
            f"{count} samples"
        )
    order = resolve_rng(rng).permutation(count)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x_arr[train_idx], y_arr[train_idx], x_arr[test_idx], y_arr[test_idx]


def stratified_indices(
    labels: np.ndarray, per_class: int, rng: SeedLike = None
) -> np.ndarray:
    """Pick ``per_class`` sample indices from every class.

    Raises when a class has fewer than ``per_class`` members, so silent
    class imbalance cannot slip into an experiment.
    """
    y = np.asarray(labels)
    gen = resolve_rng(rng)
    chosen: list[np.ndarray] = []
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        if members.size < per_class:
            raise ConfigurationError(
                f"class {cls} has only {members.size} samples, need {per_class}"
            )
        chosen.append(gen.choice(members, size=per_class, replace=False))
    return np.sort(np.concatenate(chosen))
