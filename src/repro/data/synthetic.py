"""Synthetic classification datasets shaped like the paper's benchmarks.

No network access is available in this reproduction, so the five public
datasets (MNIST, UCIHAR, FACE, ISOLET, PAMAP) are replaced by synthetic
class-prototype data with matching shape: ``N`` features, ``C`` classes,
values quantized to ``M`` levels. Each class has a random prototype in
``[0, 1]^N``; samples are the prototype plus Gaussian noise, clipped and
discretized. The ``noise_sigma`` knob sets task difficulty and is
calibrated per benchmark so baseline HDC accuracy lands near the paper's
Table 1 (see :mod:`repro.data.benchmarks`).

Everything the experiments measure survives this substitution: the
reasoning attack touches only the encoding module (never the data
distribution), timing depends on ``(N, M, D)`` alone, and accuracy-vs-L
(Fig. 8) needs only a learnable task of the right shape.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.quantize import quantize_minmax
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, resolve_rng


@dataclass(frozen=True)
class SyntheticSpec:
    """Generation parameters of one synthetic benchmark."""

    name: str
    n_features: int
    n_classes: int
    levels: int
    train_samples: int
    test_samples: int
    noise_sigma: float
    #: Fraction of features carrying class signal; the rest are noise
    #: channels, mimicking uninformative sensor columns / border pixels.
    informative_fraction: float = 1.0
    #: Shrinks class prototypes toward the global center: 1.0 keeps them
    #: uniform over [0, 1], smaller values move classes closer together.
    class_separation: float = 1.0
    #: Fraction of samples whose label is re-drawn uniformly from the
    #: *other* classes (plain label noise; caps test accuracy at
    #: ``(1 - q) + q / C`` but also corrupts training).
    label_noise: float = 0.0
    #: Fraction of *boundary* samples: drawn at the midpoint between the
    #: labeled class's prototype and a random other class's prototype.
    #: These are genuinely ambiguous (the classifier resolves them at
    #: ~chance between the two classes), capping accuracy near
    #: ``1 - q / 2`` regardless of model flavor, dimensionality, or
    #: HDLock depth — exactly how the paper's accuracies behave across
    #: Table 1 and Fig. 8. This is the knob calibrated against the
    #: paper's per-benchmark accuracy.
    boundary_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_features < 1 or self.n_classes < 2 or self.levels < 2:
            raise ConfigurationError(f"degenerate spec: {self}")
        if not 0.0 < self.informative_fraction <= 1.0:
            raise ConfigurationError(
                f"informative_fraction must be in (0, 1], got "
                f"{self.informative_fraction}"
            )
        if not 0.0 < self.class_separation <= 1.0:
            raise ConfigurationError(
                f"class_separation must be in (0, 1], got "
                f"{self.class_separation}"
            )
        if not 0.0 <= self.label_noise < 1.0:
            raise ConfigurationError(
                f"label_noise must be in [0, 1), got {self.label_noise}"
            )
        if not 0.0 <= self.boundary_fraction < 1.0:
            raise ConfigurationError(
                f"boundary_fraction must be in [0, 1), got "
                f"{self.boundary_fraction}"
            )
        if self.noise_sigma < 0:
            raise ConfigurationError(
                f"noise_sigma must be >= 0, got {self.noise_sigma}"
            )

    @property
    def accuracy_ceiling(self) -> float:
        """Approximate best achievable test accuracy under this spec.

        Label noise caps accuracy exactly; boundary samples resolve at
        roughly even odds between the two involved classes.
        """
        ceiling = (1.0 - self.label_noise) + self.label_noise / self.n_classes
        return ceiling - self.boundary_fraction / 2.0

    def scaled(self, sample_scale: float) -> "SyntheticSpec":
        """A copy with train/test sample counts scaled (min 2 per split).

        Used by the reduced-scale experiment configs.
        """
        if sample_scale <= 0:
            raise ConfigurationError(f"sample_scale must be > 0, got {sample_scale}")
        return replace(
            self,
            train_samples=max(int(self.train_samples * sample_scale), 2),
            test_samples=max(int(self.test_samples * sample_scale), 2),
        )


@dataclass(frozen=True)
class Dataset:
    """A generated dataset: discretized level matrices plus labels."""

    spec: SyntheticSpec
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def n_features(self) -> int:
        """Feature count ``N``."""
        return self.spec.n_features

    @property
    def n_classes(self) -> int:
        """Class count ``C``."""
        return self.spec.n_classes

    @property
    def levels(self) -> int:
        """Quantization levels ``M``."""
        return self.spec.levels


def make_dataset(spec: SyntheticSpec, rng: SeedLike = None) -> Dataset:
    """Generate a dataset according to ``spec``.

    Labels are balanced round-robin so every class appears in both
    splits. Quantization uses the fixed design range ``[0, 1]`` (the
    synthetic analog of dataset-wide min/max).
    """
    gen = resolve_rng(rng)
    prototypes = gen.uniform(0.0, 1.0, size=(spec.n_classes, spec.n_features))
    prototypes = 0.5 + spec.class_separation * (prototypes - 0.5)
    n_informative = max(int(round(spec.informative_fraction * spec.n_features)), 1)
    if n_informative < spec.n_features:
        # Uninformative columns share one value across classes.
        shared = gen.uniform(0.0, 1.0, size=spec.n_features - n_informative)
        prototypes[:, n_informative:] = shared[None, :]

    def split(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = np.arange(count) % spec.n_classes
        gen.shuffle(labels)
        centers = prototypes[labels].copy()
        if spec.boundary_fraction > 0.0:
            ambiguous = gen.random(count) < spec.boundary_fraction
            others = (
                labels + gen.integers(1, spec.n_classes, size=count)
            ) % spec.n_classes
            centers[ambiguous] = 0.5 * (
                prototypes[labels][ambiguous] + prototypes[others][ambiguous]
            )
        raw = centers + gen.normal(
            0.0, spec.noise_sigma, size=(count, spec.n_features)
        )
        raw = np.clip(raw, 0.0, 1.0)
        if spec.label_noise > 0.0:
            flip = gen.random(count) < spec.label_noise
            offsets = gen.integers(1, spec.n_classes, size=count)
            labels = labels.copy()
            labels[flip] = (labels[flip] + offsets[flip]) % spec.n_classes
        return quantize_minmax(raw, spec.levels, vmin=0.0, vmax=1.0), labels

    train_x, train_y = split(spec.train_samples)
    test_x, test_y = split(spec.test_samples)
    return Dataset(
        spec=spec, train_x=train_x, train_y=train_y, test_x=test_x, test_y=test_y
    )
