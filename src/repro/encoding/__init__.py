"""Encoding modules: plain record, HDLock-locked, n-gram, and the oracle.

All encoders share the vectorized batch engine of
:mod:`repro.encoding.engine`; see :class:`~repro.encoding.engine.EncodingPlan`
for the chunking / memory-budget model.
"""

from repro.encoding.base import Encoder
from repro.encoding.engine import (
    DEFAULT_MEMORY_BUDGET,
    EncodingPlan,
    binarize_batch,
    encode_batch_reference,
)
from repro.encoding.locked import LockedEncoder
from repro.encoding.ngram import NGramEncoder
from repro.encoding.oracle import EncodingOracle
from repro.encoding.privacy import (
    QuantizedLockedEncoder,
    SparsifiedLockedEncoder,
    TransmissionLockedEncoder,
)
from repro.encoding.record import RecordEncoder

__all__ = [
    "Encoder",
    "RecordEncoder",
    "LockedEncoder",
    "NGramEncoder",
    "TransmissionLockedEncoder",
    "QuantizedLockedEncoder",
    "SparsifiedLockedEncoder",
    "EncodingOracle",
    "EncodingPlan",
    "DEFAULT_MEMORY_BUDGET",
    "binarize_batch",
    "encode_batch_reference",
]
