"""Encoding modules: plain record, HDLock-locked, n-gram, and the oracle."""

from repro.encoding.base import Encoder
from repro.encoding.locked import LockedEncoder
from repro.encoding.ngram import NGramEncoder
from repro.encoding.oracle import EncodingOracle
from repro.encoding.record import RecordEncoder

__all__ = [
    "Encoder",
    "RecordEncoder",
    "LockedEncoder",
    "NGramEncoder",
    "EncodingOracle",
]
