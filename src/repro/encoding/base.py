"""Encoder interface and the shared record-encoding arithmetic.

Every encoder in this library maps a *discretized* sample — a length-``N``
integer vector of value levels in ``[0, M)`` — to a ``D``-dimensional
hypervector. The two concrete encoders (plain record-based and HDLock)
differ only in where their feature hypervectors come from, so the
multiply-accumulate of Eq. 2/3 lives here once::

    H_nb = sum_i ValHV[f_i] * FeaHV_i          (non-binary)
    H_b  = sign(H_nb)                           (binary)

The arithmetic itself is compiled once per encoder into an
:class:`~repro.encoding.engine.EncodingPlan` — a level-major BLAS
decomposition (or the bit-sliced kernel for non-linear level memories)
with chunked batches — and every encode call (single or batch, binary
or not) runs through it, bit-exact with the per-sample reference loop.
``encode_batch`` exposes the engine's ``chunk_size`` /
``memory_budget`` knobs; ``encode_batch_packed`` is the fused binary
hot path, returning uint64 bit-planes directly so downstream Hamming
consumers (classifier inference, attack scoring) never unpack.

Samples are validated to be in range; quantization of raw real-valued
data to levels is :mod:`repro.data.quantize`'s job.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.encoding.engine import EncodingPlan, binarize_batch
from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hv.ops import sign
from repro.memory.item_memory import LevelMemory
from repro.utils.rng import SeedLike, resolve_rng


class Encoder(abc.ABC):
    """Base class for record encoders over a fixed level memory.

    Subclasses provide :attr:`feature_matrix`; this class implements the
    encoding arithmetic, input validation, and batching.
    """

    def __init__(self, level_memory: LevelMemory, rng: SeedLike = None) -> None:
        self.level_memory = level_memory
        #: Generator used exclusively for sign(0) tie-breaking (Eq. 3).
        self._tie_rng = resolve_rng(rng)
        self._plan: EncodingPlan | None = None

    @property
    @abc.abstractmethod
    def feature_matrix(self) -> np.ndarray:
        """The ``(N, D)`` feature hypervectors this encoder multiplies in."""

    @property
    def n_features(self) -> int:
        """Number of input features ``N``."""
        return int(self.feature_matrix.shape[0])

    @property
    def levels(self) -> int:
        """Number of discretized value levels ``M``."""
        return self.level_memory.levels

    @property
    def dim(self) -> int:
        """Hypervector dimensionality ``D``."""
        return self.level_memory.dim

    def _check_sample(self, sample: np.ndarray) -> np.ndarray:
        arr = np.asarray(sample)
        if arr.shape[-1] != self.n_features:
            raise DimensionMismatchError(
                f"sample has {arr.shape[-1]} features, encoder expects "
                f"{self.n_features}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise ConfigurationError(
                "samples must be integer level indices; quantize raw values "
                "with repro.data.quantize first"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self.levels):
            raise ConfigurationError(
                f"level indices must lie in [0, {self.levels}), got range "
                f"[{arr.min()}, {arr.max()}]"
            )
        return arr

    @property
    def plan(self) -> EncodingPlan:
        """The compiled batch-encoding plan for this encoder's matrices.

        Built lazily on first use and cached: both operand matrices are
        immutable by convention (re-keying builds a new encoder). Call
        :meth:`invalidate_caches` after mutating either matrix in place.
        """
        if self._plan is None:
            self._plan = EncodingPlan(self.level_memory.matrix, self.feature_matrix)
        return self._plan

    def invalidate_caches(self) -> None:
        """Drop the compiled plan (after in-place matrix mutation)."""
        self._plan = None

    def encode_nonbinary(self, sample: np.ndarray) -> np.ndarray:
        """Encode one sample to its integer accumulation ``H_nb`` (Eq. 2)."""
        arr = self._check_sample(sample)
        if arr.ndim != 1:
            raise DimensionMismatchError(
                f"encode_nonbinary takes one (N,) sample, got shape {arr.shape}"
            )
        return self.plan.accumulate_single(arr)

    def encode(self, sample: np.ndarray, binary: bool = True) -> np.ndarray:
        """Encode one sample; binarize with random tie-break if ``binary``."""
        accum = self.encode_nonbinary(sample)
        if not binary:
            return accum
        return sign(accum, self._tie_rng)

    def encode_batch(
        self,
        samples: np.ndarray,
        binary: bool = True,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Encode a ``(B, N)`` batch into a ``(B, D)`` matrix.

        Runs the whole batch through the compiled
        :class:`~repro.encoding.engine.EncodingPlan` in bounded chunks:
        ``chunk_size`` pins the rows per tile directly, otherwise the
        tile is sized so its working set stays under ``memory_budget``
        bytes (default
        :data:`~repro.encoding.engine.DEFAULT_MEMORY_BUDGET`). Output is
        bit-identical to encoding the samples one at a time — including
        the order of randomized sign(0) tie-breaks.
        """
        arr = self._check_sample(samples)
        if arr.ndim != 2:
            raise DimensionMismatchError(
                f"encode_batch takes a (B, N) matrix, got shape {arr.shape}"
            )
        accums = self.plan.accumulate(arr, chunk_size, memory_budget)
        if not binary:
            return accums
        return binarize_batch(accums, self._tie_rng)

    def encode_batch_packed(
        self,
        samples: np.ndarray,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Encode a ``(B, N)`` batch straight into packed bit-planes.

        The fused binary hot path: returns ``(B, ceil(D/64))`` uint64
        rows, bit-identical to
        ``pack_words(self.encode_batch(samples, binary=True))`` —
        including the sign(0) tie-break stream, which advances exactly
        as the dense call would — without ever materializing the dense
        sign matrix. Feed the result to
        :func:`repro.hv.packing.hamming_packed` /
        :func:`~repro.hv.packing.pairwise_hamming_packed` (or any
        word-packed consumer) directly.
        """
        arr = self._check_sample(samples)
        if arr.ndim != 2:
            raise DimensionMismatchError(
                f"encode_batch_packed takes a (B, N) matrix, got shape {arr.shape}"
            )
        return self.plan.accumulate_packed(
            arr, self._tie_rng, chunk_size, memory_budget
        )

    def encode_packed(self, sample: np.ndarray) -> np.ndarray:
        """Encode one sample to a ``(ceil(D/64),)`` uint64 packed HV."""
        arr = self._check_sample(sample)
        if arr.ndim != 1:
            raise DimensionMismatchError(
                f"encode_packed takes one (N,) sample, got shape {arr.shape}"
            )
        return self.plan.accumulate_packed(arr[None, :], self._tie_rng)[0]
