"""Encoder interface and the shared record-encoding arithmetic.

Every encoder in this library maps a *discretized* sample — a length-``N``
integer vector of value levels in ``[0, M)`` — to a ``D``-dimensional
hypervector. The two concrete encoders (plain record-based and HDLock)
differ only in where their feature hypervectors come from, so the
multiply-accumulate of Eq. 2/3 lives here once::

    H_nb = sum_i ValHV[f_i] * FeaHV_i          (non-binary)
    H_b  = sign(H_nb)                           (binary)

Samples are validated to be in range; quantization of raw real-valued
data to levels is :mod:`repro.data.quantize`'s job.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hv.ops import ACCUM_DTYPE, sign
from repro.memory.item_memory import LevelMemory
from repro.utils.rng import SeedLike, resolve_rng


class Encoder(abc.ABC):
    """Base class for record encoders over a fixed level memory.

    Subclasses provide :attr:`feature_matrix`; this class implements the
    encoding arithmetic, input validation, and batching.
    """

    def __init__(self, level_memory: LevelMemory, rng: SeedLike = None) -> None:
        self.level_memory = level_memory
        #: Generator used exclusively for sign(0) tie-breaking (Eq. 3).
        self._tie_rng = resolve_rng(rng)

    @property
    @abc.abstractmethod
    def feature_matrix(self) -> np.ndarray:
        """The ``(N, D)`` feature hypervectors this encoder multiplies in."""

    @property
    def n_features(self) -> int:
        """Number of input features ``N``."""
        return int(self.feature_matrix.shape[0])

    @property
    def levels(self) -> int:
        """Number of discretized value levels ``M``."""
        return self.level_memory.levels

    @property
    def dim(self) -> int:
        """Hypervector dimensionality ``D``."""
        return self.level_memory.dim

    def _check_sample(self, sample: np.ndarray) -> np.ndarray:
        arr = np.asarray(sample)
        if arr.shape[-1] != self.n_features:
            raise DimensionMismatchError(
                f"sample has {arr.shape[-1]} features, encoder expects "
                f"{self.n_features}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise ConfigurationError(
                "samples must be integer level indices; quantize raw values "
                "with repro.data.quantize first"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self.levels):
            raise ConfigurationError(
                f"level indices must lie in [0, {self.levels}), got range "
                f"[{arr.min()}, {arr.max()}]"
            )
        return arr

    def encode_nonbinary(self, sample: np.ndarray) -> np.ndarray:
        """Encode one sample to its integer accumulation ``H_nb`` (Eq. 2)."""
        arr = self._check_sample(sample)
        if arr.ndim != 1:
            raise DimensionMismatchError(
                f"encode_nonbinary takes one (N,) sample, got shape {arr.shape}"
            )
        value_rows = self.level_memory.matrix[arr]
        return np.einsum(
            "nd,nd->d",
            value_rows.astype(np.int32, copy=False),
            self.feature_matrix.astype(np.int32, copy=False),
            dtype=ACCUM_DTYPE,
        )

    def encode(self, sample: np.ndarray, binary: bool = True) -> np.ndarray:
        """Encode one sample; binarize with random tie-break if ``binary``."""
        accum = self.encode_nonbinary(sample)
        if not binary:
            return accum
        return sign(accum, self._tie_rng)

    def encode_batch(self, samples: np.ndarray, binary: bool = True) -> np.ndarray:
        """Encode a ``(B, N)`` batch into a ``(B, D)`` matrix.

        Samples are processed one at a time: the intermediate
        ``(B, N, D)`` gather of a fully vectorized version would need
        gigabytes at paper scale, and the per-sample einsum is already
        memory-bandwidth-bound.
        """
        arr = self._check_sample(samples)
        if arr.ndim != 2:
            raise DimensionMismatchError(
                f"encode_batch takes a (B, N) matrix, got shape {arr.shape}"
            )
        dtype = np.int8 if binary else ACCUM_DTYPE
        out = np.empty((arr.shape[0], self.dim), dtype=dtype)
        for b in range(arr.shape[0]):
            out[b] = self.encode(arr[b], binary=binary)
        return out
