"""Vectorized batch-encoding engine.

The record-encoding kernel (Eq. 2) is a gather-multiply-accumulate::

    H[b, d] = sum_n FeaHV[n, d] * ValHV[f[b, n], d]

The naive batched form gathers a ``(B, N, D)`` value tile and contracts
it with an integer einsum — at paper scale (D = 10,000) that tile is
gigabytes and the integer contraction runs scalar, so it is *slower*
than a per-sample loop. This module instead plans the computation around
two observations:

* **Level-major decomposition.** There are only ``M`` distinct value
  hypervectors, and any level lookup can be written as a prefix sum of
  level *differences*::

      ValHV[f] = ValHV[0] + sum_{m=1..M-1} [f >= m] * dVal[m]

  so the whole batch becomes one tiny base term plus ``M - 1`` dense
  matrix products ``(f >= m) @ FeaHV[:, support_m]`` — real BLAS calls —
  evaluated only on the coordinates where level ``m`` differs from
  ``m - 1``. For the library's linear level memories (Eq. 1b) those
  supports are disjoint and total ``D / 2``: the full batch costs about
  *half* a single BLAS pass regardless of ``M``.

* **Exact small-integer float arithmetic.** Every intermediate value is
  an integer bounded by ``N * max|Fea| * max|dVal|``; when that bound
  fits a float32 mantissa (< 2^24) the BLAS pipeline is bit-exact, and
  float64 extends the guarantee to 2^53. The plan verifies the bound and
  falls back to an exact integer einsum when it cannot hold (it never
  does for bipolar hypervectors at any realistic ``N``).

Batches are processed in chunks whose float working set — the ``(chunk,
D)`` accumulator plus the ``(chunk, N)`` indicator and the largest
``(chunk, |support|)`` contribution tile — stays inside a configurable
``memory_budget``, so paper-scale encodes stream through cache instead
of materializing the ``(B, N, D)`` gather.

Beyond the integer batch API, the plan owns a **fused packed path**
(:meth:`EncodingPlan.accumulate_packed`): base-init, scatter-add, and
binarize collapse into a minimal number of ``D``-passes — the base term
broadcasts into a preallocated float accumulator reused across chunks,
contributions add in place, and the signs (with the row-ordered sign(0)
tie stream) write directly into packed uint64 bit-planes via
:func:`repro.hv.packing.pack_signs`. No ``(B, D)`` int64 cast, no int8
sign matrix, and no downstream re-pack ever materialize, which roughly
halves the D-bound per-row overhead of binary encoding at paper scale.

Level memories that defeat the difference decomposition (dense level
differences make the scatter support explode) no longer fall back to a
per-sample loop: when both operand matrices are bipolar the plan runs
the batched **bit-sliced** kernel of :mod:`repro.hv.bitslice` — XNOR +
carry-save popcount over the same packed bit-planes, ~5x faster than
the per-sample einsum at D = 10,000 and exact by construction. The
per-sample integer einsum survives only as the retained reference
implementation and as the last-resort mode for non-bipolar operands
whose accumulation bound overflows a float64 mantissa.

:func:`encode_batch_reference` preserves the original per-sample loop as
an executable specification; the differential tests in
``tests/encoding/test_batch_parity.py`` assert bit-exact equality
(including the randomized sign(0) tie-break stream) between it and every
plan mode, and the golden-seed hashes in ``tests/integration`` pin the
numerics against future rewrites.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hv.bitslice import bitsliced_accumulate
from repro.hv.ops import ACCUM_DTYPE, BIPOLAR_DTYPE
from repro.hv.packing import (
    PACKED_WORD_DTYPE,
    pack_signs,
    pack_words,
    packed_word_width,
    sign_bits,
)
from repro.utils.rng import SeedLike, resolve_rng

#: Default cap on the engine's per-chunk float working set (bytes).
#: 128 MiB keeps a D = 10,000 encode in ~1,500-row chunks — large enough
#: to amortize BLAS call overhead, small enough to coexist with the
#: caller's own arrays on a laptop-class machine.
DEFAULT_MEMORY_BUDGET = 128 * 1024 * 1024

#: Leave the BLAS difference decomposition when the summed
#: level-difference support exceeds this many multiples of ``D``: beyond
#: it the decomposition does more arithmetic (and dense scatter traffic)
#: than it saves. Linear level memories sit at 0.5; only adversarially
#: random level matrices (support ~ (M-1)/2 x D) ever cross the
#: threshold, and those route to the bit-sliced kernel instead.
SUPPORT_FALLBACK_RATIO = 8.0


def resolve_chunk_size(
    per_row_bytes: int,
    n_rows: int,
    chunk_size: int | None = None,
    memory_budget: int | None = None,
) -> int:
    """Number of batch rows per tile under a per-chunk memory budget.

    ``per_row_bytes`` is the engine working set one batch row costs; an
    explicit ``chunk_size`` overrides the budget-derived value. The
    result is always at least 1 (a single row may exceed the budget —
    the budget bounds *batch* amplification, not the model size itself)
    and never more than ``n_rows``.
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        return min(chunk_size, max(n_rows, 1))
    budget = DEFAULT_MEMORY_BUDGET if memory_budget is None else memory_budget
    if budget < 1:
        raise ConfigurationError(f"memory_budget must be >= 1, got {budget}")
    return max(1, min(n_rows if n_rows else 1, budget // max(per_row_bytes, 1)))


class EncodingPlan:
    """A precompiled batch-encoding strategy for one (ValHV, FeaHV) pair.

    Encoders build a plan lazily and reuse it for every encode call (the
    matrices are immutable by convention; see
    :meth:`repro.encoding.base.Encoder.invalidate_caches`). The plan
    owns the casts the reference implementation used to redo per call —
    hoisting them is itself a ~2x saving on the per-sample path.
    """

    def __init__(self, level_matrix: np.ndarray, feature_matrix: np.ndarray) -> None:
        lev = np.asarray(level_matrix)
        fea = np.asarray(feature_matrix)
        self.levels = int(lev.shape[0])
        self.n_features = int(fea.shape[0])
        self.dim = int(lev.shape[1])
        #: Cached int32 views of the operands (shared with the
        #: single-sample einsum path; satellite of the engine refactor).
        self.level_i32 = lev.astype(np.int32, copy=False)
        self.feature_i32 = fea.astype(np.int32, copy=False)

        diffs = lev[1:].astype(np.int64) - lev[:-1].astype(np.int64)
        self.supports = [np.flatnonzero(diffs[m]) for m in range(self.levels - 1)]
        support_total = sum(int(s.size) for s in self.supports)

        max_fea = int(np.abs(fea).max(initial=0))
        max_dval = max(
            (
                int(np.abs(diffs[m, s]).max())
                for m, s in enumerate(self.supports)
                if s.size
            ),
            default=0,
        )
        max_lev0 = int(np.abs(lev[0]).max(initial=0))
        # Worst-case magnitude of any partial accumulation: the base term
        # plus every level-difference contribution at full strength.
        bound = self.n_features * max_fea * (
            max_lev0 + max_dval * max(self.levels - 1, 1)
        )

        if bound < 2**24:
            self._float_dtype: np.dtype | None = np.dtype(np.float32)
        elif bound < 2**53:
            self._float_dtype = np.dtype(np.float64)
        else:
            self._float_dtype = None
        support_fits = support_total <= SUPPORT_FALLBACK_RATIO * self.dim

        bipolar = bool(
            np.issubdtype(lev.dtype, np.integer)
            and np.issubdtype(fea.dtype, np.integer)
            and (np.abs(lev) == 1).all()
            and (np.abs(fea) == 1).all()
        )
        if self._float_dtype is not None and support_fits:
            self.mode = "blas"
        elif bipolar:
            self.mode = "bitslice"
        else:
            self.mode = "einsum"

        #: Optional bound metric children set by :meth:`instrument`;
        #: None keeps the hot path at a single attribute check.
        self._obs: tuple | None = None

        if self.mode == "blas":
            dt = self._float_dtype
            self._fea_float = fea.astype(dt)
            # Per-step column slices of the feature matrix and the
            # matching level-difference rows, both restricted to the
            # support. For a linear level memory these total N x D/2
            # floats — cached once instead of re-gathered per call.
            self._fea_cols = [self._fea_float[:, s] for s in self.supports]
            self._dval_rows = [
                diffs[m, s].astype(dt) for m, s in enumerate(self.supports)
            ]
            base = fea.sum(axis=0, dtype=np.int64) * lev[0].astype(np.int64)
            self._base = base.astype(dt)
            max_support = max((int(s.size) for s in self.supports), default=0)
            # accumulator (D) + indicator (N) + contribution tile
            # (|support|, counted twice: the matmul result and the
            # scaled copy) per batch row.
            self._row_bytes = (
                self.dim + self.n_features + 2 * max_support
            ) * dt.itemsize
        elif self.mode == "bitslice":
            # Word-packed operands, the feature planes pre-inverted so
            # the per-feature XNOR is one XOR against a gathered row.
            self._level_words = pack_words(lev)
            self._inv_feature_words = np.bitwise_not(pack_words(fea))
            word_bytes = packed_word_width(self.dim) * 8
            planes = 2 * max(self.n_features, 1).bit_length() + 3
            # live carry-save planes + int32 counts + int64 output + the
            # boolean unpack temporary per batch row.
            self._row_bytes = planes * word_bytes + self.dim * (4 + 8 + 1)
        else:
            # (N, D) int32 gather per row dominates the fallback tile.
            self._row_bytes = self.n_features * self.dim * 4

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    def instrument(self, metrics, scope: str = "library") -> None:
        """Attach observability counters to this plan's accumulate calls.

        ``metrics`` is a :class:`repro.obs.metrics.MetricsRegistry` (or
        anything with its surface); ``scope`` labels who owns the plan —
        the serving layer passes the tenant name. The counters record
        rows encoded and calls made per kernel path (``blas`` /
        ``bitslice`` / ``einsum``) and how many chunks were served by an
        already-allocated per-call scratch buffer (the reuse the engine
        exists to provide). Counting happens once per accumulate call,
        outside the chunk loop, so the overhead is independent of batch
        size; an un-instrumented plan pays one ``is None`` check.
        """
        rows = metrics.counter(
            "repro_encode_rows_total",
            "Rows encoded through EncodingPlan, by kernel path.",
            labels=("scope", "path"),
        )
        calls = metrics.counter(
            "repro_encode_calls_total",
            "EncodingPlan accumulate calls, by kernel path.",
            labels=("scope", "path"),
        )
        reuse = metrics.counter(
            "repro_encode_scratch_reuse_total",
            "Chunks that reused the call's existing scratch buffer.",
            labels=("scope",),
        )
        self._obs = (
            rows.bind(scope=scope, path=self.mode),
            calls.bind(scope=scope, path=self.mode),
            reuse.bind(scope=scope),
        )

    def _record_call(
        self, n_rows: int, chunk: int, had_scratch: bool
    ) -> None:
        rows, calls, reuse = self._obs  # type: ignore[misc]
        rows.add(n_rows)
        calls.inc()
        if had_scratch:
            n_chunks = -(-n_rows // chunk)
            if n_chunks > 1:
                reuse.add(n_chunks - 1)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------

    def _call_scratch(self, chunk: int, n_rows: int) -> np.ndarray | None:
        """One float accumulator per accumulate call (blas mode only).

        Allocated once and reused by every chunk of the call — the win
        over PR 1's fresh base-repeat per chunk — but scoped to the
        call, so nothing pins chunk-sized memory to the plan afterwards
        and concurrent calls on one encoder never share a buffer.
        """
        if self.mode != "blas":
            return None
        return np.empty((min(chunk, n_rows), self.dim), dtype=self._float_dtype)

    def _accumulate_blas_into(self, samples: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Base-init + scatter-add fused into the float buffer ``out``."""
        np.copyto(out, self._base)
        for m in range(1, self.levels):
            support = self.supports[m - 1]
            if support.size == 0:
                continue
            indicator = (samples >= m).astype(self._float_dtype)
            contribution = indicator @ self._fea_cols[m - 1]
            contribution *= self._dval_rows[m - 1]
            out[:, support] += contribution
        return out

    def _accumulate_bitslice(self, samples: np.ndarray) -> np.ndarray:
        return bitsliced_accumulate(
            self._level_words, self._inv_feature_words, samples, self.dim
        )

    def _accumulate_einsum(self, samples: np.ndarray) -> np.ndarray:
        """The retained per-sample integer loop (exact reference mode)."""
        out = np.empty((samples.shape[0], self.dim), dtype=ACCUM_DTYPE)
        for b in range(samples.shape[0]):
            out[b] = np.einsum(
                "nd,nd->d",
                self.level_i32[samples[b]],
                self.feature_i32,
                dtype=ACCUM_DTYPE,
            )
        return out

    def _accumulate_chunk(
        self, samples: np.ndarray, scratch: np.ndarray | None
    ) -> np.ndarray:
        """One chunk of accumulations in the plan's native dtype.

        blas mode fills (a slice of) the caller's per-call *float*
        scratch (exact small integers); the other modes return fresh
        int64 rows. Callers either cast into their int64 output or hand
        the rows straight to :func:`repro.hv.packing.pack_signs` — both
        see identical values.
        """
        if self.mode == "blas":
            assert scratch is not None
            return self._accumulate_blas_into(samples, scratch[: samples.shape[0]])
        if self.mode == "bitslice":
            return self._accumulate_bitslice(samples)
        return self._accumulate_einsum(samples)

    def accumulate(
        self,
        samples: np.ndarray,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Encode a validated ``(B, N)`` level batch to ``(B, D)`` int64.

        Chunked along the batch axis so the per-tile working set stays
        under ``memory_budget`` bytes (or exactly ``chunk_size`` rows).
        """
        n_rows = int(samples.shape[0])
        out = np.empty((n_rows, self.dim), dtype=ACCUM_DTYPE)
        if n_rows == 0:
            return out
        chunk = resolve_chunk_size(self._row_bytes, n_rows, chunk_size, memory_budget)
        scratch = self._call_scratch(chunk, n_rows)
        for start in range(0, n_rows, chunk):
            stop = min(start + chunk, n_rows)
            # The assignment casts float chunks to int64 in one pass;
            # every value is an exact small integer, so the cast is too.
            out[start:stop] = self._accumulate_chunk(samples[start:stop], scratch)
        if self._obs is not None:
            self._record_call(n_rows, chunk, scratch is not None)
        return out

    def accumulate_packed(
        self,
        samples: np.ndarray,
        rng: SeedLike = None,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Encode a validated ``(B, N)`` batch straight to packed bits.

        The fused binary path: accumulations stream chunk by chunk
        through one per-call scratch buffer and binarize *in place* into
        the returned ``(B, ceil(D/64))`` uint64 bit-planes — no int64
        batch, no int8 sign matrix, no separate pack pass. Bit-exact
        with ``pack_words(binarize_batch(accumulate(samples), rng))``
        including the row-ordered sign(0) tie stream, which the parity
        tests pin.
        """
        n_rows = int(samples.shape[0])
        out = np.zeros((n_rows, packed_word_width(self.dim)), dtype=PACKED_WORD_DTYPE)
        if n_rows == 0:
            return out
        gen = resolve_rng(rng)
        chunk = resolve_chunk_size(self._row_bytes, n_rows, chunk_size, memory_budget)
        scratch = self._call_scratch(chunk, n_rows)
        for start in range(0, n_rows, chunk):
            stop = min(start + chunk, n_rows)
            pack_signs(
                self._accumulate_chunk(samples[start:stop], scratch),
                gen,
                out=out[start:stop],
            )
        if self._obs is not None:
            self._record_call(n_rows, chunk, scratch is not None)
        return out

    def accumulate_single(self, sample: np.ndarray) -> np.ndarray:
        """Encode one validated ``(N,)`` sample to a ``(D,)`` int64 HV."""
        return self.accumulate(sample[None, :])[0]


def binarize_batch(accums: np.ndarray, rng: SeedLike = None) -> np.ndarray:
    """Row-wise Eq. 3 binarization, replaying the per-sample tie stream.

    Exactly equivalent to calling :func:`repro.hv.ops.sign` on each row
    in order — the property the differential tests pin down. The tie
    stream itself lives in one place,
    :func:`repro.hv.packing.sign_bits`, shared with the fused packed
    path so the dense and packed flavors can never drift apart.
    """
    bits = sign_bits(np.asarray(accums), rng)
    return np.where(bits, 1, -1).astype(BIPOLAR_DTYPE)


def encode_batch_reference(
    level_matrix: np.ndarray,
    feature_matrix: np.ndarray,
    samples: np.ndarray,
    binary: bool = True,
    rng: SeedLike = None,
) -> np.ndarray:
    """The original per-sample encode loop, kept as an executable spec.

    One gather + integer einsum + (optional) sign per sample, casting
    the operands on every iteration exactly as the pre-engine
    implementation did. Differential tests and the old-vs-new benchmarks
    run this against :class:`EncodingPlan`; it is never used on a hot
    path.
    """
    from repro.hv.ops import sign

    lev = np.asarray(level_matrix)
    fea = np.asarray(feature_matrix)
    arr = np.asarray(samples)
    gen = resolve_rng(rng)
    out = np.empty(
        (arr.shape[0], lev.shape[1]), dtype=BIPOLAR_DTYPE if binary else ACCUM_DTYPE
    )
    for b in range(arr.shape[0]):
        accum = np.einsum(
            "nd,nd->d",
            lev[arr[b]].astype(np.int32, copy=False),
            fea.astype(np.int32, copy=False),
            dtype=ACCUM_DTYPE,
        )
        out[b] = sign(accum, gen) if binary else accum
    return out
