"""The HDLock encoder (paper Sec. 4, Fig. 4).

Instead of reading ``FeaHV_i`` from an indexed memory, the locked encoder
*derives* it on the fly from the public base pool and the secret key
(Eq. 9), then performs the ordinary record encoding (Eq. 10). The derived
matrix is cached: deriving it is pure function of (pool, key), and the
hardware pipelines the derivation anyway, so caching changes nothing
observable while keeping software encoding fast.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.base import Encoder
from repro.errors import DimensionMismatchError
from repro.memory.item_memory import LevelMemory
from repro.memory.key import LockKey
from repro.utils.rng import SeedLike


class LockedEncoder(Encoder):
    """Record encoder whose feature HVs come from ``(base pool, key)``."""

    def __init__(
        self,
        base_pool: np.ndarray,
        level_memory: LevelMemory,
        key: LockKey,
        rng: SeedLike = None,
    ) -> None:
        pool = np.asarray(base_pool)
        if pool.ndim != 2 or pool.shape[1] != level_memory.dim:
            raise DimensionMismatchError(
                f"base pool shape {pool.shape} incompatible with level "
                f"memory D={level_memory.dim}"
            )
        # Imported here, not at module scope: repro.hdlock's package
        # initializer imports this module (its high-level API constructs
        # LockedEncoders), so a top-level import would be circular.
        from repro.hdlock.feature_factory import derive_feature_matrix

        super().__init__(level_memory, rng)
        self.base_pool = pool
        self.key = key
        self._derived = derive_feature_matrix(pool, key)

    @property
    def feature_matrix(self) -> np.ndarray:
        """The derived ``(N, D)`` locked feature hypervectors (Eq. 9)."""
        return self._derived

    @property
    def layers(self) -> int:
        """Key depth ``L`` of this encoder."""
        return self.key.layers

    @property
    def pool_size(self) -> int:
        """Base pool size ``P``."""
        return self.key.pool_size

    def rekey(self, key: LockKey, rng: SeedLike = None) -> "LockedEncoder":
        """Return a new encoder over the same pool with a different key.

        Re-keying invalidates any trained class hypervectors (they were
        accumulated under the old feature HVs); callers are expected to
        retrain, see :func:`repro.hdlock.lock.lock_model`.
        """
        return LockedEncoder(self.base_pool, self.level_memory, key, rng)
