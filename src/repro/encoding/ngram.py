"""N-gram (sequence) encoding — an extension beyond the paper's record
encoder.

HDC commonly encodes sequences (text, DNA, sensor streams) by binding
``n`` consecutive symbol hypervectors, each rotated by its position, and
bundling all n-grams::

    H = sum_t  prod_{j=0..n-1} rho^j( ItemHV[s_{t+j}] )

The paper's attack surface (an item memory whose index mapping is
secret) exists here too, and HDLock applies unchanged: replace the item
memory lookup with a key-derived product. :class:`NGramEncoder` supports
both modes so the examples can demonstrate locking a sequence model.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.engine import binarize_batch, resolve_chunk_size
from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hv.ops import ACCUM_DTYPE, BIPOLAR_DTYPE, permute, sign
from repro.hv.packing import pack_signs
from repro.memory.key import LockKey
from repro.utils.rng import SeedLike, resolve_rng


class NGramEncoder:
    """Encode symbol sequences with rotated n-gram binding.

    ``item_memory`` is an ``(A, D)`` matrix with one hypervector per
    alphabet symbol. When ``key`` (plus ``base_pool``) is given the item
    hypervectors are HDLock-derived instead of stored, locking the
    alphabet mapping exactly like the record encoder's feature mapping.
    """

    def __init__(
        self,
        item_memory: np.ndarray | None = None,
        n: int = 3,
        rng: SeedLike = None,
        base_pool: np.ndarray | None = None,
        key: LockKey | None = None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"n-gram size must be >= 1, got {n}")
        if (key is None) != (base_pool is None):
            raise ConfigurationError("base_pool and key must be given together")
        if key is not None:
            # Deferred import: repro.hdlock's initializer imports the
            # encoding package, so a module-scope import would cycle.
            from repro.hdlock.feature_factory import derive_feature_matrix

            self._items = derive_feature_matrix(np.asarray(base_pool), key)
        elif item_memory is not None:
            self._items = np.asarray(item_memory)
        else:
            raise ConfigurationError("need either item_memory or (base_pool, key)")
        if self._items.ndim != 2:
            raise DimensionMismatchError(
                f"item memory must be (A, D), got {self._items.shape}"
            )
        self.n = n
        self.locked = key is not None
        self._tie_rng = resolve_rng(rng)
        # Position-rotated copies of the item matrix, shared by every
        # encode call (the per-sample path used to rebuild them per
        # sequence — n extra (A, D) passes each time).
        self._rotated: list[np.ndarray] | None = None

    @property
    def alphabet_size(self) -> int:
        """Number of symbols ``A`` in the item memory."""
        return int(self._items.shape[0])

    @property
    def dim(self) -> int:
        """Hypervector dimensionality ``D``."""
        return int(self._items.shape[1])

    @property
    def item_matrix(self) -> np.ndarray:
        """The (possibly key-derived) ``(A, D)`` item hypervectors."""
        return self._items

    def _check_sequence(self, seq: np.ndarray) -> np.ndarray:
        arr = np.asarray(seq)
        if arr.ndim != 1:
            raise DimensionMismatchError(f"sequence must be 1-D, got {arr.shape}")
        if arr.shape[0] < self.n:
            raise ConfigurationError(
                f"sequence of length {arr.shape[0]} shorter than n={self.n}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise ConfigurationError("sequences must contain integer symbol ids")
        if arr.min() < 0 or arr.max() >= self.alphabet_size:
            raise ConfigurationError(
                f"symbol ids must lie in [0, {self.alphabet_size})"
            )
        return arr

    def _rotated_items(self) -> list[np.ndarray]:
        if self._rotated is None:
            self._rotated = [permute(self._items, j) for j in range(self.n)]
        return self._rotated

    def invalidate_caches(self) -> None:
        """Drop cached rotations (after in-place item-matrix mutation)."""
        self._rotated = None

    def encode_nonbinary(self, seq: np.ndarray) -> np.ndarray:
        """Bundle all rotated n-gram bindings of ``seq`` (integer output)."""
        arr = self._check_sequence(seq)
        n_grams = arr.shape[0] - self.n + 1
        # Gather from the cached position-rotated item matrices: cheaper
        # than rotating per (t, j) pair, and shared across calls.
        rotated = self._rotated_items()
        grams = np.ones((n_grams, self.dim), dtype=BIPOLAR_DTYPE)
        for j in range(self.n):
            grams = np.multiply(
                grams, rotated[j][arr[j : j + n_grams]], dtype=BIPOLAR_DTYPE
            )
        return grams.sum(axis=0, dtype=ACCUM_DTYPE)

    def encode(self, seq: np.ndarray, binary: bool = True) -> np.ndarray:
        """Encode a sequence; binarize with random tie-break if ``binary``."""
        accum = self.encode_nonbinary(seq)
        if not binary:
            return accum
        return sign(accum, self._tie_rng)

    def _check_batch(self, seqs: np.ndarray) -> np.ndarray:
        arr = np.asarray(seqs)
        if arr.ndim != 2:
            raise DimensionMismatchError(
                f"encode_batch takes a (B, T) matrix of equal-length "
                f"sequences, got shape {arr.shape}"
            )
        if arr.shape[1] < self.n:
            raise ConfigurationError(
                f"sequences of length {arr.shape[1]} shorter than n={self.n}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise ConfigurationError("sequences must contain integer symbol ids")
        if arr.size and (arr.min() < 0 or arr.max() >= self.alphabet_size):
            raise ConfigurationError(
                f"symbol ids must lie in [0, {self.alphabet_size})"
            )
        return arr

    def encode_batch(
        self,
        seqs: np.ndarray,
        binary: bool = True,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Encode a ``(B, T)`` batch of equal-length sequences to ``(B, D)``.

        Vectorized across the batch: one ``(chunk, n_grams, D)`` bipolar
        product tile per chunk, gathered from the cached rotated item
        matrices, summed over the gram axis. Chunks are sized like the
        record engine's (``chunk_size`` rows, or a ``memory_budget``-
        bounded working set). Bit-identical to per-sequence
        :meth:`encode`, including the sign(0) tie-break stream.
        """
        arr = self._check_batch(seqs)
        accums = self._accumulate_batch(arr, chunk_size, memory_budget)
        if not binary:
            return accums
        return binarize_batch(accums, self._tie_rng)

    def _accumulate_batch(
        self,
        arr: np.ndarray,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Chunked non-binary accumulations of a validated ``(B, T)`` batch."""
        n_rows = int(arr.shape[0])
        n_grams = int(arr.shape[1]) - self.n + 1
        accums = np.empty((n_rows, self.dim), dtype=ACCUM_DTYPE)
        if n_rows:
            rotated = self._rotated_items()
            # Per row: the grams tile plus the same-shaped gather
            # temporary of each bind step, plus the int64 sum row.
            row_bytes = 2 * n_grams * self.dim + self.dim * 8
            chunk = resolve_chunk_size(row_bytes, n_rows, chunk_size, memory_budget)
            for start in range(0, n_rows, chunk):
                block = arr[start : min(start + chunk, n_rows)]
                grams = np.ones(
                    (block.shape[0], n_grams, self.dim), dtype=BIPOLAR_DTYPE
                )
                for j in range(self.n):
                    np.multiply(
                        grams,
                        rotated[j][block[:, j : j + n_grams]],
                        out=grams,
                        dtype=BIPOLAR_DTYPE,
                    )
                accums[start : start + block.shape[0]] = grams.sum(
                    axis=1, dtype=ACCUM_DTYPE
                )
        return accums

    def encode_batch_packed(
        self,
        seqs: np.ndarray,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Encode a ``(B, T)`` batch straight into packed bit-planes.

        Sequence-model twin of
        :meth:`repro.encoding.base.Encoder.encode_batch_packed`: returns
        ``(B, ceil(D/64))`` uint64 rows bit-identical to word-packing
        the binary :meth:`encode_batch` output (same tie stream), with
        the dense int8 sign matrix fused away.
        """
        arr = self._check_batch(seqs)
        return pack_signs(
            self._accumulate_batch(arr, chunk_size, memory_budget), self._tie_rng
        )
