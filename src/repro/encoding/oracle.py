"""The attacker-facing encoding oracle.

The threat model (Sec. 3.1) lets the adversary "craft his/her own inputs
and observe the encoding outputs". :class:`EncodingOracle` is that
capability and nothing more: it wraps an encoder, exposes only
``query``/``query_batch`` plus the public shape parameters, and counts
queries so experiments can report attack cost in oracle calls as well as
wall-clock time.

Attack code in :mod:`repro.attack` receives *only* an oracle and public
memory — never the encoder object — so the separation is enforced by
construction, not just convention.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.base import Encoder
from repro.errors import ConfigurationError


class EncodingOracle:
    """Query interface over a deployed encoding module."""

    def __init__(self, encoder: Encoder, binary: bool = True) -> None:
        self._encoder = encoder
        #: Whether the deployed model binarizes its encodings (Eq. 3).
        self.binary = binary
        #: Number of single-sample queries served so far.
        self.n_queries = 0

    @property
    def n_features(self) -> int:
        """Input width ``N`` — public: the device's input format."""
        return self._encoder.n_features

    @property
    def levels(self) -> int:
        """Value levels ``M`` — public: the device's input quantization."""
        return self._encoder.levels

    @property
    def dim(self) -> int:
        """Output dimensionality ``D`` — public: visible on the output."""
        return self._encoder.dim

    def query(self, sample: np.ndarray) -> np.ndarray:
        """Encode one crafted sample and return the observable output."""
        self.n_queries += 1
        return self._encoder.encode(np.asarray(sample), binary=self.binary)

    def query_batch(
        self,
        samples: np.ndarray,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Encode a batch of crafted samples (counted per sample).

        Runs through the encoder's vectorized batch engine; the chunking
        knobs are passed straight to
        :meth:`~repro.encoding.base.Encoder.encode_batch`. A deployed
        device pipelines queries the same way, so batching changes the
        observable outputs in no way — only the attacker's wall-clock.
        """
        arr = np.asarray(samples)
        self.n_queries += int(arr.shape[0])
        return self._encoder.encode_batch(
            arr,
            binary=self.binary,
            chunk_size=chunk_size,
            memory_budget=memory_budget,
        )

    def query_batch_packed(
        self,
        samples: np.ndarray,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Encode a batch and return packed uint64 bit-planes directly.

        Only available on binary deployments — the packed bus *is* the
        binary output format (a real device's memory holds exactly these
        words), so a non-binary oracle has nothing packed to expose.
        Counted per sample like :meth:`query_batch`; bit-identical to
        word-packing the dense responses, including tie-breaks.
        """
        if not self.binary:
            raise ConfigurationError(
                "packed queries are only defined for binary oracles"
            )
        arr = np.asarray(samples)
        self.n_queries += int(arr.shape[0])
        return self._encoder.encode_batch_packed(
            arr, chunk_size=chunk_size, memory_budget=memory_budget
        )
