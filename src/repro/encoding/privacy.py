"""Privacy-preserving locked encoders (Prive-HD-style transmission).

Prive-HD (PAPERS.md) observes that the hypervector a device *transmits*
need not be the full-precision accumulation: quantizing or sparsifying
the encoding before it leaves the device both shrinks the payload and
disturbs exactly the fine-grained structure an inference adversary
exploits. Here that idea becomes a defender axis for the attack arena:
the subclasses below post-process the Eq. 2 accumulation ``H_nb``
*before* binarization, so every zeroed coordinate binarizes through the
randomized ``sign(0)`` tie-break — pure per-query noise from the
attacker's point of view, which degrades the Eq. 11 difference criterion
without touching the key, the pool, or trained class hypervectors'
compatibility (the transform is applied consistently at train and
serve time since it lives in the encoder).

Both transforms are scale-free for every downstream consumer in this
repo: binary outputs only keep the sign, and the non-binary cosine
criterion is invariant to per-row positive scaling, so the quantizer
returns unscaled integer bucket indices rather than reconstructed
magnitudes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.encoding.engine import binarize_batch
from repro.encoding.locked import LockedEncoder
from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hv.packing import pack_words
from repro.memory.item_memory import LevelMemory
from repro.memory.key import LockKey
from repro.utils.rng import SeedLike

__all__ = [
    "QuantizedLockedEncoder",
    "SparsifiedLockedEncoder",
    "TransmissionLockedEncoder",
]


class TransmissionLockedEncoder(LockedEncoder):
    """Locked encoder that transforms accumulations before transmission.

    Subclasses implement :meth:`_transform_rows` over a ``(B, D)`` batch
    of integer accumulations. Every encode path — single, batch, packed —
    routes through the transform, so the attacker-facing oracle and the
    owner-side training loop observe the same privatized encodings.

    The fused packed kernel binarizes raw accumulations in-place, so the
    packed paths here take the dense detour (transform, binarize, pack);
    privacy variants trade that hot-path fusion for the transmission
    defense by construction.
    """

    def _transform_rows(self, accums: np.ndarray) -> np.ndarray:
        """Map raw ``(B, D)`` accumulations to transmitted values."""
        raise NotImplementedError

    def encode_nonbinary(self, sample: np.ndarray) -> np.ndarray:
        """One sample's transmitted (privatized) accumulation."""
        accum = super().encode_nonbinary(sample)
        return self._transform_rows(accum[None, :])[0]

    def encode_batch(
        self,
        samples: np.ndarray,
        binary: bool = True,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Batch encode with the transmission transform applied."""
        arr = self._check_sample(samples)
        if arr.ndim != 2:
            raise DimensionMismatchError(
                f"encode_batch takes a (B, N) matrix, got shape {arr.shape}"
            )
        accums = self._transform_rows(
            self.plan.accumulate(arr, chunk_size, memory_budget)
        )
        if not binary:
            return accums
        return binarize_batch(accums, self._tie_rng)

    def encode_batch_packed(
        self,
        samples: np.ndarray,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ) -> np.ndarray:
        """Packed batch path: dense privatized signs, packed at the end."""
        dense = self.encode_batch(
            samples,
            binary=True,
            chunk_size=chunk_size,
            memory_budget=memory_budget,
        )
        return pack_words(dense)

    def encode_packed(self, sample: np.ndarray) -> np.ndarray:
        """Packed single-sample path through the transform."""
        arr = self._check_sample(sample)
        if arr.ndim != 1:
            raise DimensionMismatchError(
                f"encode_packed takes one (N,) sample, got shape {arr.shape}"
            )
        return self.encode_batch_packed(arr[None, :])[0]


class QuantizedLockedEncoder(TransmissionLockedEncoder):
    """Locked encoder transmitting coarsely quantized accumulations.

    The accumulation of ``N`` independent ±1 products is approximately
    ``N(0, N)`` per coordinate; the quantizer buckets it into
    ``quant_levels`` symmetric integer levels spanning
    ``±clip_sigmas * sqrt(N)``. With the default 3 levels everything
    inside ±1.5σ collapses to 0 — the majority of coordinates — and each
    of those binarizes through a fresh ``sign(0)`` tie-break, burying
    the attacker's difference criterion in per-query noise.
    """

    def __init__(
        self,
        base_pool: np.ndarray,
        level_memory: LevelMemory,
        key: LockKey,
        rng: SeedLike = None,
        quant_levels: int = 3,
        clip_sigmas: float = 3.0,
    ) -> None:
        if quant_levels < 3 or quant_levels % 2 == 0:
            raise ConfigurationError(
                "quant_levels must be an odd integer >= 3 (a symmetric "
                f"grid including zero), got {quant_levels}"
            )
        if clip_sigmas <= 0:
            raise ConfigurationError(
                f"clip_sigmas must be positive, got {clip_sigmas}"
            )
        super().__init__(base_pool, level_memory, key, rng)
        self.quant_levels = int(quant_levels)
        self.clip_sigmas = float(clip_sigmas)

    def _transform_rows(self, accums: np.ndarray) -> np.ndarray:
        half = (self.quant_levels - 1) // 2
        step = self.clip_sigmas * math.sqrt(self.n_features) / half
        buckets = np.rint(np.asarray(accums, dtype=np.float64) / step)
        return np.clip(buckets, -half, half).astype(np.int64)

    def rekey(
        self, key: LockKey, rng: SeedLike = None
    ) -> "QuantizedLockedEncoder":
        """Re-key, preserving the quantization parameters."""
        return QuantizedLockedEncoder(
            self.base_pool,
            self.level_memory,
            key,
            rng,
            quant_levels=self.quant_levels,
            clip_sigmas=self.clip_sigmas,
        )


class SparsifiedLockedEncoder(TransmissionLockedEncoder):
    """Locked encoder transmitting only the top-magnitude coordinates.

    Per row, the ``keep_fraction`` largest-``|H|`` coordinates survive
    unchanged and the rest transmit as zero — Prive-HD's sparsification.
    The surviving coordinates are exactly the high-confidence ones, so
    classification accuracy degrades gently while the attacker's support
    fills with tie-break noise.
    """

    def __init__(
        self,
        base_pool: np.ndarray,
        level_memory: LevelMemory,
        key: LockKey,
        rng: SeedLike = None,
        keep_fraction: float = 0.05,
    ) -> None:
        if not 0.0 < keep_fraction <= 1.0:
            raise ConfigurationError(
                f"keep_fraction must be in (0, 1], got {keep_fraction}"
            )
        super().__init__(base_pool, level_memory, key, rng)
        self.keep_fraction = float(keep_fraction)

    def _transform_rows(self, accums: np.ndarray) -> np.ndarray:
        rows = np.asarray(accums, dtype=np.int64)
        dim = rows.shape[1]
        keep = max(1, int(round(self.keep_fraction * dim)))
        if keep >= dim:
            return rows
        out = np.zeros_like(rows)
        # argpartition breaks magnitude ties by position — deterministic,
        # no RNG involved, so the transform itself is a pure function.
        top = np.argpartition(np.abs(rows), dim - keep, axis=1)[:, dim - keep :]
        np.put_along_axis(out, top, np.take_along_axis(rows, top, axis=1), axis=1)
        return out

    def rekey(
        self, key: LockKey, rng: SeedLike = None
    ) -> "SparsifiedLockedEncoder":
        """Re-key, preserving the sparsification parameter."""
        return SparsifiedLockedEncoder(
            self.base_pool,
            self.level_memory,
            key,
            rng,
            keep_fraction=self.keep_fraction,
        )
