"""The standard (unprotected) record-based encoder of paper Sec. 2.

Feature hypervectors are read directly from an indexed
:class:`~repro.memory.item_memory.FeatureMemory` — precisely the design
whose index mapping the reasoning attack of Sec. 3 recovers.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.base import Encoder
from repro.errors import DimensionMismatchError
from repro.memory.item_memory import FeatureMemory, LevelMemory
from repro.utils.rng import SeedLike


class RecordEncoder(Encoder):
    """Record-based encoding with explicit feature and level memories.

    ``encode`` computes Eq. 2 (and Eq. 3 when ``binary=True``) using
    ``feature_memory.matrix`` row ``i`` as ``FeaHV_{i+1}``.
    """

    def __init__(
        self,
        feature_memory: FeatureMemory,
        level_memory: LevelMemory,
        rng: SeedLike = None,
    ) -> None:
        if feature_memory.dim != level_memory.dim:
            raise DimensionMismatchError(
                f"feature memory D={feature_memory.dim} but level memory "
                f"D={level_memory.dim}"
            )
        super().__init__(level_memory, rng)
        self.feature_memory = feature_memory

    @classmethod
    def random(
        cls,
        n_features: int,
        levels: int,
        dim: int,
        rng: SeedLike = None,
    ) -> "RecordEncoder":
        """Build an encoder with freshly generated memories.

        One seed argument drives three independent streams (feature
        memory, level memory, tie-breaking) so results are reproducible.
        """
        from repro.utils.rng import spawn_rngs

        feat_rng, level_rng, tie_rng = spawn_rngs(rng, 3)
        return cls(
            FeatureMemory.random(n_features, dim, feat_rng),
            LevelMemory.random(levels, dim, level_rng),
            rng=tie_rng,
        )

    @property
    def feature_matrix(self) -> np.ndarray:
        """The indexed ``(N, D)`` feature hypervector matrix."""
        return self.feature_memory.matrix
