"""Exception hierarchy for the :mod:`repro` package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at the API boundary.
The subclasses mirror the major subsystems: hypervector math, the
secure/public memory model of the threat model, HDLock keys, and the
reasoning attack.
"""

from __future__ import annotations

#: The taxonomy, by name. reprolint's RL004 rule and the serving
#: adapter's status-mapping table both key on these class names; the
#: explicit export list (plus the package's ``py.typed`` marker) keeps
#: that matching name-robust under refactors — renaming or removing a
#: member is an API break, not an internal cleanup.
__all__ = [
    "AttackError",
    "ConfigurationError",
    "DimensionMismatchError",
    "KeyFormatError",
    "NotBipolarError",
    "ReproError",
    "SecureMemoryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DimensionMismatchError(ReproError):
    """Two hypervectors (or pools) with incompatible dimensions were mixed."""


class NotBipolarError(ReproError):
    """An operation expected a bipolar ({-1, +1}) hypervector."""


class SecureMemoryError(ReproError):
    """Illegal access to tamper-proof memory (e.g. probing from attacker code)."""


class KeyFormatError(ReproError):
    """An HDLock key is malformed or inconsistent with its pool/dimension."""


class AttackError(ReproError):
    """The reasoning attack could not complete (e.g. ambiguous extremes)."""


class ConfigurationError(ReproError):
    """An experiment / hardware / dataset configuration is invalid."""
