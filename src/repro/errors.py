"""Exception hierarchy for the :mod:`repro` package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at the API boundary.
The subclasses mirror the major subsystems: hypervector math, the
secure/public memory model of the threat model, HDLock keys, and the
reasoning attack.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DimensionMismatchError(ReproError):
    """Two hypervectors (or pools) with incompatible dimensions were mixed."""


class NotBipolarError(ReproError):
    """An operation expected a bipolar ({-1, +1}) hypervector."""


class SecureMemoryError(ReproError):
    """Illegal access to tamper-proof memory (e.g. probing from attacker code)."""


class KeyFormatError(ReproError):
    """An HDLock key is malformed or inconsistent with its pool/dimension."""


class AttackError(ReproError):
    """The reasoning attack could not complete (e.g. ambiguous extremes)."""


class ConfigurationError(ReproError):
    """An experiment / hardware / dataset configuration is invalid."""
