"""Experiment modules — one per table/figure of the paper's evaluation.

Each module returns structured result dataclasses with a stable
``to_dict()``/``from_dict()`` schema; rendering to the paper-style text
tables is a separate formatter. :mod:`repro.experiments.runner` fans the
modules out over worker processes and writes them as deterministic JSON
artifacts (see :mod:`repro.experiments.records`), deduplicating shared
inputs through :mod:`repro.experiments.cache`.
"""

from repro.experiments.ablations import AblationsResult, run_ablations
from repro.experiments.cache import DiskCache
from repro.experiments.config import (
    FULL_SCALE,
    REDUCED_SCALE,
    ExperimentScale,
    active_scale,
)
from repro.experiments.fig3 import Fig3Result, render_fig3, run_fig3
from repro.experiments.fig56 import (
    Fig56Result,
    render_fig56,
    run_fig5,
    run_fig6,
)
from repro.experiments.fig7 import Fig7Result, mnist_checkpoints, render_fig7, run_fig7
from repro.experiments.fig8 import Fig8Cell, Fig8Result, render_fig8, run_fig8
from repro.experiments.fig9 import Fig9Result, render_fig9, run_fig9
from repro.experiments.records import (
    SCHEMA_VERSION,
    ExperimentRecord,
)
from repro.experiments.sweeps import SweepsResult, run_sweeps
from repro.experiments.table1 import Table1Row, render_table1, run_table1

# NOTE: repro.experiments.runner is intentionally not imported here so
# that `python -m repro.experiments.runner` does not trigger the
# "found in sys.modules" runpy warning; import it explicitly if needed.

__all__ = [
    "ExperimentScale",
    "REDUCED_SCALE",
    "FULL_SCALE",
    "active_scale",
    "Table1Row",
    "run_table1",
    "render_table1",
    "Fig3Result",
    "run_fig3",
    "render_fig3",
    "Fig56Result",
    "run_fig5",
    "run_fig6",
    "render_fig56",
    "Fig7Result",
    "run_fig7",
    "render_fig7",
    "mnist_checkpoints",
    "Fig8Cell",
    "Fig8Result",
    "run_fig8",
    "render_fig8",
    "Fig9Result",
    "run_fig9",
    "render_fig9",
    "AblationsResult",
    "run_ablations",
    "SweepsResult",
    "run_sweeps",
    "DiskCache",
    "ExperimentRecord",
    "SCHEMA_VERSION",
]
