"""Ablations for the design choices DESIGN.md calls out.

Each function isolates one claim from the paper's design discussion and
produces a small, assertable report:

* :func:`value_lock_leakage` — Sec. 4.1 "Why Not Represent the Value
  Hypervectors?": locking ValHVs would force a *correlated* base pool,
  and a correlated pool structurally leaks the level ordering before a
  single oracle query.
* :func:`layer_one_is_free` — Sec. 5.2: a one-layer key costs zero
  latency because permutation is a shifted memory access.
* :func:`pool_layer_synergy` — Fig. 7b: ``P`` and ``L`` are "mutually
  enhanced" — growing the pool buys more security at higher depth.
* :func:`naive_attack_on_locked` — the Sec. 3 attack, pointed at a
  locked encoder, loses its dip: no candidate scores better than chance.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

import numpy as np

from repro.attack.adaptive import (
    attack_single_layer,
    extrapolate_multi_layer_seconds,
)
from repro.attack.complexity import hdlock_guesses_per_feature
from repro.attack.feature_extraction import guess_distance_series
from repro.attack.threat_model import expose_locked_model, expose_model
from repro.attack.hdlock_attack import as_attack_surface
from repro.attack.value_extraction import extract_value_mapping
from repro.encoding.record import RecordEncoder
from repro.experiments.config import DEFAULT_SEED, ExperimentScale, active_scale
from repro.hardware.encoder_cost import relative_encoding_time
from repro.hdlock.lock import create_locked_encoder
from repro.hv.level import level_hvs
from repro.hv.ops import permute_rows
from repro.hv.properties import level_linearity_report, orthogonality_report
from repro.utils.rng import derive_seed, resolve_rng
from repro.utils.tables import render_table

#: Payload fields derived from wall-clock measurement; the runner strips
#: them from the deterministic artifact (see ``records.split_volatile``).
ABLATIONS_VOLATILE_FIELDS = frozenset(
    {"measured_seconds", "projected_l2_seconds"}
)


@dataclass(frozen=True)
class ValueLockLeakage:
    """Structural comparison: correlated vs orthogonal base pools."""

    correlated_profile_error: float
    correlated_extreme_distance: float
    orthogonal_max_deviation: float
    recovered_order_correct: bool


def value_lock_leakage(
    levels: int = 16, dim: int = 4096, seed: int = DEFAULT_SEED
) -> ValueLockLeakage:
    """Show that a value-HV lock would leak its own level structure.

    A hypothetical value lock derives ``ValHV_v = rho^{k_v}(B_v)``. To
    keep Eq. 1b intact the bases ``B_v`` must themselves be a linear
    level family — and the *published* pool then exposes the level order
    through pairwise distances alone (rotations are secret, but the
    attacker never needs them to order the levels). A feature-HV base
    pool, by contrast, is orthogonal and featureless.
    """
    rng = resolve_rng(seed)
    correlated_pool = level_hvs(levels, dim, rng)
    rotations = rng.integers(0, dim, size=levels)
    derived_values = permute_rows(correlated_pool, rotations)
    # Derived ValHVs satisfy Eq. 1b among themselves only if the bases
    # do; either way, the public pool is what leaks:
    report = level_linearity_report(correlated_pool)
    recovered = np.argsort(
        np.count_nonzero(correlated_pool != correlated_pool[0], axis=-1)
    )
    orthogonal_pool = create_locked_encoder(
        n_features=levels, levels=2, dim=dim, layers=1, rng=rng
    ).base_pool
    del derived_values  # the leak needs no queries, that is the point
    return ValueLockLeakage(
        correlated_profile_error=report.max_profile_error,
        correlated_extreme_distance=report.extreme_distance,
        orthogonal_max_deviation=orthogonality_report(
            orthogonal_pool
        ).max_abs_deviation,
        recovered_order_correct=bool((recovered == np.arange(levels)).all()),
    )


@dataclass(frozen=True)
class LayerOneCost:
    """Relative encoding time of the first key layers."""

    relative_time_l1: float
    relative_time_l2: float


def layer_one_is_free(
    n_features: int = 784, dim: int = 10_000
) -> LayerOneCost:
    """Quantify the free first layer and the 21 % second layer."""
    return LayerOneCost(
        relative_time_l1=relative_encoding_time(1, n_features, dim),
        relative_time_l2=relative_encoding_time(2, n_features, dim),
    )


@dataclass(frozen=True)
class PoolLayerSynergy:
    """Security gained by growing P at two different depths."""

    gain_at_l1: float
    gain_at_l3: float

    @property
    def mutually_enhanced(self) -> bool:
        """True when a pool increase buys more at higher depth."""
        return self.gain_at_l3 > self.gain_at_l1


def pool_layer_synergy(
    small_pool: int = 100, large_pool: int = 700, dim: int = 10_000
) -> PoolLayerSynergy:
    """Fig. 7b's observation as a ratio of guess-count gains."""
    def gain(layers: int) -> float:
        return hdlock_guesses_per_feature(
            dim, large_pool, layers
        ) / hdlock_guesses_per_feature(dim, small_pool, layers)

    return PoolLayerSynergy(gain_at_l1=gain(1), gain_at_l3=gain(3))


@dataclass(frozen=True)
class NaiveAttackComparison:
    """Plain-attack guess profile: unprotected vs locked deployment."""

    unprotected_best: float
    unprotected_chance: float
    locked_best: float

    @property
    def lock_removed_the_dip(self) -> bool:
        """True when no locked candidate beats chance meaningfully."""
        return self.locked_best > 0.5 * self.unprotected_chance


def naive_attack_on_locked(
    n_features: int = 96,
    levels: int = 8,
    layers: int = 2,
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
) -> NaiveAttackComparison:
    """Run the Sec. 3 feature sweep against both deployments."""
    cfg = scale or active_scale()
    plain_encoder = RecordEncoder.random(
        n_features, levels, cfg.dim, derive_seed(seed, "plain")
    )
    plain_surface, _ = expose_model(
        plain_encoder, binary=True, rng=derive_seed(seed, "expose")
    )
    value = extract_value_mapping(plain_surface, derive_seed(seed, "value"))
    plain_series = guess_distance_series(plain_surface, value.level_order)

    locked = create_locked_encoder(
        n_features, levels, cfg.dim, layers=layers, rng=derive_seed(seed, "lock")
    )
    locked_surface, _ = expose_locked_model(locked.encoder, binary=True)
    # The value mapping is known for the locked model (unprotected by
    # design), so hand the plain attack its level order directly.
    locked_series = guess_distance_series(
        as_attack_surface(locked_surface), np.arange(levels)
    )
    return NaiveAttackComparison(
        unprotected_best=float(plain_series.min()),
        unprotected_chance=float(np.median(plain_series)),
        locked_best=float(locked_series.min()),
    )


@dataclass(frozen=True)
class SingleLayerBreakability:
    """Measured L=1 key recovery plus projections to deeper keys."""

    key_recovered: bool
    measured_seconds: float
    guesses: int
    projected_l2_seconds: float

    @property
    def l2_infeasible_factor(self) -> float:
        """How many times longer the L=2 search is than the L=1 one."""
        return self.projected_l2_seconds / max(self.measured_seconds, 1e-12)


def single_layer_breakability(
    n_features: int = 12,
    levels: int = 6,
    dim: int = 512,
    pool_size: int = 8,
    seed: int = DEFAULT_SEED,
) -> SingleLayerBreakability:
    """Break an L=1 key outright, then project the cost of L=2.

    Grounds the paper's layer-depth guidance: the free-latency one-layer
    key falls to an exhaustive sweep in seconds at reduced scale (and
    would take only ~``6e9`` guesses at paper scale), while the measured
    guess rate projects the two-layer search to geologic time.
    """
    system = create_locked_encoder(
        n_features=n_features,
        levels=levels,
        dim=dim,
        layers=1,
        pool_size=pool_size,
        rng=derive_seed(seed, "l1"),
    )
    surface, _ = expose_locked_model(system.encoder, binary=True)
    result = attack_single_layer(surface)
    return SingleLayerBreakability(
        key_recovered=result.recovered == system.key,
        measured_seconds=result.seconds,
        guesses=result.guesses,
        projected_l2_seconds=extrapolate_multi_layer_seconds(
            result, surface, 2
        ),
    )


@dataclass(frozen=True)
class AblationsResult:
    """All five design-choice ablations, bundled for the runner."""

    leakage: ValueLockLeakage
    layer_cost: LayerOneCost
    synergy: PoolLayerSynergy
    naive: NaiveAttackComparison
    breakability: SingleLayerBreakability

    def to_dict(self) -> dict[str, Any]:
        """Stable artifact payload: one sub-object per ablation."""
        return {
            "leakage": asdict(self.leakage),
            "layer_cost": asdict(self.layer_cost),
            "synergy": asdict(self.synergy),
            "naive": asdict(self.naive),
            "breakability": asdict(self.breakability),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AblationsResult":
        """Inverse of :meth:`to_dict`; volatile timings default to 0."""
        breakability = dict(payload["breakability"])
        breakability.setdefault("measured_seconds", 0.0)
        breakability.setdefault("projected_l2_seconds", 0.0)
        return cls(
            leakage=ValueLockLeakage(**payload["leakage"]),
            layer_cost=LayerOneCost(**payload["layer_cost"]),
            synergy=PoolLayerSynergy(**payload["synergy"]),
            naive=NaiveAttackComparison(**payload["naive"]),
            breakability=SingleLayerBreakability(**breakability),
        )

    def render(self) -> str:
        """Combined ablation report (delegates to the panel renderer)."""
        return render_ablations(
            self.leakage,
            self.layer_cost,
            self.synergy,
            self.naive,
            self.breakability,
        )


def run_ablations(
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
) -> AblationsResult:
    """Run all five ablations with independent derived sub-seeds."""
    cfg = scale or active_scale()
    return AblationsResult(
        leakage=value_lock_leakage(seed=derive_seed(seed, "leakage")),
        layer_cost=layer_one_is_free(),
        synergy=pool_layer_synergy(),
        naive=naive_attack_on_locked(
            scale=cfg, seed=derive_seed(seed, "naive")
        ),
        breakability=single_layer_breakability(
            seed=derive_seed(seed, "breakability")
        ),
    )


def render_ablations(
    leakage: ValueLockLeakage,
    layer_cost: LayerOneCost,
    synergy: PoolLayerSynergy,
    naive: NaiveAttackComparison,
    breakability: SingleLayerBreakability | None = None,
) -> str:
    """One combined ablation report table."""
    rows = [
        (
            "value-lock base pool leaks level order",
            f"profile err {leakage.correlated_profile_error:.4f}, "
            f"order recovered: {leakage.recovered_order_correct}",
        ),
        (
            "feature-lock base pool is featureless",
            f"max |hamming - 0.5| = {leakage.orthogonal_max_deviation:.4f}",
        ),
        (
            "L=1 latency",
            f"{layer_cost.relative_time_l1:.3f}x (free)",
        ),
        (
            "L=2 latency",
            f"{layer_cost.relative_time_l2:.3f}x (paper: 1.21x)",
        ),
        (
            "P gain 100->700 at L=1 / L=3",
            f"{synergy.gain_at_l1:.1f}x / {synergy.gain_at_l3:.1f}x "
            f"(mutually enhanced: {synergy.mutually_enhanced})",
        ),
        (
            "plain attack best score, unprotected",
            f"{naive.unprotected_best:.4f} (chance {naive.unprotected_chance:.4f})",
        ),
        (
            "plain attack best score, locked",
            f"{naive.locked_best:.4f} (dip removed: "
            f"{naive.lock_removed_the_dip})",
        ),
    ]
    if breakability is not None:
        rows.append(
            (
                "L=1 key broken by exhaustive sweep",
                f"{breakability.key_recovered} in "
                f"{breakability.measured_seconds:.2f}s "
                f"({breakability.guesses} guesses); L=2 projected "
                f"{breakability.projected_l2_seconds:.2e}s",
            )
        )
    return render_table(
        ["ablation", "result"], rows, title="Design-choice ablations"
    )
