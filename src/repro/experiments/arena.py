"""The arena experiment: the attacker-vs-defender robustness matrix.

Runs every registered-roster attacker against every defender
configuration (:mod:`repro.arena`) and reports one
:class:`ArenaCell` per pairing: recovery rate, recovered-key Hamming
distance, oracle queries spent, candidate evaluations, and whether the
defender locked the attacker out. The matrix is the paper's security
argument made adversarial: HDLock's ``L >= 2`` claim, the monitor
countermeasure's blind spot, and the Prive-HD transmission defenses all
show up as rows and columns of one artifact.

Determinism contract (the PR-3 discipline):

* every cell's seeds derive from :func:`repro.utils.rng.derive_seed` on
  the cell's *names* — independent of registry iteration order, shard
  scheduling and ``--jobs``;
* the defender-system seed ignores the attacker, so all cells in a
  defender row deploy the bit-identical system (and the content cache
  builds it once);
* each cell gets a *fresh* system object (unpickled from cache or
  rebuilt) and a fresh oracle, because serving queries advances the
  encoder's tie-break RNG — sharing a live instance would make results
  depend on execution order.

The arena runs at a deliberately reduced shape (``N = 32``, capped
``D``): cells are adversarial interactions, not classification runs, and
the security phenomena are scale-free down to these sizes. The caps are
module constants rather than :class:`ExperimentScale` fields so existing
artifact keys stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.arena import (
    DEFAULT_ATTACKERS,
    DEFAULT_DEFENDERS,
    defender_spec,
    deploy_defender,
    duel,
    evaluate_outcome,
    make_attacker,
)
from repro.attack.protocol import AttackBudget
from repro.experiments.cache import DiskCache, cached
from repro.experiments.config import DEFAULT_SEED, ExperimentScale, active_scale
from repro.utils.rng import derive_seed, resolve_rng
from repro.utils.tables import render_table
from repro.utils.timer import Timer

__all__ = [
    "ARENA_LEVELS",
    "ARENA_MAX_DIM",
    "ARENA_MAX_FEATURES",
    "ARENA_MAX_QUERIES",
    "ARENA_N_FEATURES",
    "ARENA_VOLATILE_FIELDS",
    "ArenaCell",
    "ArenaResult",
    "arena_shards",
    "combine_arena",
    "render_arena",
    "run_arena",
    "run_arena_cell",
    "run_arena_shard",
]

#: Input width ``N`` of every arena deployment.
ARENA_N_FEATURES = 32
#: Value levels ``M`` of every arena deployment.
ARENA_LEVELS = 8
#: Hypervector width cap: ``D = min(scale.dim, ARENA_MAX_DIM)``.
ARENA_MAX_DIM = 2048
#: Features each attacker targets per cell (the scored prefix).
ARENA_MAX_FEATURES = 4
#: Oracle-query budget per cell.
ARENA_MAX_QUERIES = 512

#: Per-cell payload keys measured from wall clock (stripped from
#: artifacts by the runner; see ``split_volatile``).
ARENA_VOLATILE_FIELDS = frozenset({"seconds"})


@dataclass(frozen=True)
class ArenaCell:
    """One attacker-vs-defender pairing, flattened to scalars."""

    attacker: str
    defender: str
    layers: int
    dim: int
    pool_size: int
    binary: bool
    variant: str
    monitored: bool
    features_attacked: int
    features_recovered: int
    success_rate: float
    key_distance: float
    queries: int
    candidates: int
    abstained: int
    locked_out: bool
    seconds: float

    def to_dict(self) -> dict[str, Any]:
        """Stable artifact payload for this cell."""
        return {
            "attacker": self.attacker,
            "defender": self.defender,
            "layers": int(self.layers),
            "dim": int(self.dim),
            "pool_size": int(self.pool_size),
            "binary": bool(self.binary),
            "variant": self.variant,
            "monitored": bool(self.monitored),
            "features_attacked": int(self.features_attacked),
            "features_recovered": int(self.features_recovered),
            "success_rate": float(self.success_rate),
            "key_distance": float(self.key_distance),
            "queries": int(self.queries),
            "candidates": int(self.candidates),
            "abstained": int(self.abstained),
            "locked_out": bool(self.locked_out),
            "seconds": float(self.seconds),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArenaCell":
        """Inverse of :meth:`to_dict` (tolerates stripped volatiles)."""
        return cls(
            attacker=payload["attacker"],
            defender=payload["defender"],
            layers=int(payload["layers"]),
            dim=int(payload["dim"]),
            pool_size=int(payload["pool_size"]),
            binary=bool(payload["binary"]),
            variant=payload["variant"],
            monitored=bool(payload["monitored"]),
            features_attacked=int(payload["features_attacked"]),
            features_recovered=int(payload["features_recovered"]),
            success_rate=float(payload["success_rate"]),
            key_distance=float(payload["key_distance"]),
            queries=int(payload["queries"]),
            candidates=int(payload["candidates"]),
            abstained=int(payload["abstained"]),
            locked_out=bool(payload["locked_out"]),
            seconds=float(payload.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class ArenaResult:
    """The full robustness matrix, cells in roster order."""

    cells: tuple[ArenaCell, ...]

    def to_dict(self) -> dict[str, Any]:
        """Stable artifact payload: one entry per matrix cell."""
        return {"cells": [cell.to_dict() for cell in self.cells]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArenaResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            cells=tuple(ArenaCell.from_dict(c) for c in payload["cells"])
        )


def _arena_dim(scale: ExperimentScale) -> int:
    return min(scale.dim, ARENA_MAX_DIM)


def run_arena_cell(
    attacker_name: str,
    defender_name: str,
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
    cache: DiskCache | None = None,
) -> ArenaCell:
    """Run one matrix cell: build, deploy, duel, judge.

    The defender seed depends only on the defender (every attacker faces
    the identical system, and the cache builds it once per row); the
    attacker seed additionally folds in the attacker name, so strategies
    never share randomness. Both derive from names, never from roster
    positions.
    """
    cfg = scale or active_scale()
    dim = _arena_dim(cfg)
    spec = defender_spec(defender_name)
    defender_seed = derive_seed("arena-defender", seed, defender_name, dim)
    attacker_seed = derive_seed(
        "arena-attacker", seed, attacker_name, defender_name, dim
    )
    with Timer() as timer:
        # A cache hit unpickles a fresh copy and a miss builds one — in
        # both paths this cell owns its system outright, tie-break RNG
        # state included.
        system = cached(
            cache,
            ("arena-system", spec, ARENA_N_FEATURES, ARENA_LEVELS, dim,
             defender_seed),
            lambda: spec.build_system(
                ARENA_N_FEATURES, ARENA_LEVELS, dim, defender_seed
            ),
        )
        defense = deploy_defender(spec, system)
        attacker = make_attacker(attacker_name)
        budget = AttackBudget(
            max_features=ARENA_MAX_FEATURES, max_queries=ARENA_MAX_QUERIES
        )
        outcome = duel(
            attacker, defense, budget, resolve_rng(attacker_seed)
        )
        evaluation = evaluate_outcome(
            system.encoder.feature_matrix,
            system.base_pool,
            outcome,
            budget.features(defense.surface),
        )
    return ArenaCell(
        attacker=attacker_name,
        defender=defender_name,
        layers=spec.layers,
        dim=dim,
        pool_size=spec.pool_size,
        binary=spec.binary,
        variant=spec.variant,
        monitored=spec.monitor,
        features_attacked=evaluation.features_attacked,
        features_recovered=evaluation.features_recovered,
        success_rate=evaluation.success_rate,
        key_distance=evaluation.key_distance,
        queries=outcome.queries,
        candidates=outcome.candidates_scored,
        abstained=outcome.abstentions,
        locked_out=outcome.locked_out,
        seconds=timer.elapsed,
    )


def run_arena(
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
    cache: DiskCache | None = None,
    attackers: Sequence[str] | None = None,
    defenders: Sequence[str] | None = None,
) -> ArenaResult:
    """Run the full cross-product matrix, defender-major cell order."""
    cfg = scale or active_scale()
    attacker_roster = tuple(attackers or DEFAULT_ATTACKERS)
    defender_roster = tuple(defenders or DEFAULT_DEFENDERS)
    cells = tuple(
        run_arena_cell(
            attacker, defender, scale=cfg, seed=seed, cache=cache
        )
        for defender in defender_roster
        for attacker in attacker_roster
    )
    return ArenaResult(cells=cells)


def arena_shards(scale: ExperimentScale) -> list[Any]:
    """One shard per matrix cell, in the canonical defender-major order."""
    del scale
    return [
        (attacker, defender)
        for defender in DEFAULT_DEFENDERS
        for attacker in DEFAULT_ATTACKERS
    ]


def run_arena_shard(
    scale: ExperimentScale, seed: int, cache: DiskCache | None, shard: Any
) -> ArenaCell:
    """Run one cell as a parallel work unit."""
    attacker, defender = shard
    return run_arena_cell(
        attacker, defender, scale=scale, seed=seed, cache=cache
    )


def combine_arena(parts: list[Any]) -> ArenaResult:
    """Reassemble per-cell partials (in shard order) into the matrix."""
    return ArenaResult(cells=tuple(parts))


def render_arena(result: ArenaResult) -> str:
    """The robustness matrix as a paper-style table."""
    rows = []
    for cell in result.cells:
        if cell.locked_out:
            status = "locked out"
        elif cell.features_recovered == cell.features_attacked:
            status = "broken"
        elif cell.features_recovered > 0:
            status = "partial"
        else:
            status = "held"
        rows.append(
            (
                cell.defender,
                cell.attacker,
                f"{cell.features_recovered}/{cell.features_attacked}",
                f"{cell.key_distance:.3f}",
                cell.queries,
                cell.candidates,
                cell.abstained,
                status,
            )
        )
    return render_table(
        [
            "defender",
            "attacker",
            "recovered",
            "key dist",
            "queries",
            "candidates",
            "abstained",
            "status",
        ],
        rows,
        title=(
            "Attack arena — robustness matrix "
            f"(N={ARENA_N_FEATURES}, M={ARENA_LEVELS}, "
            f"{ARENA_MAX_FEATURES} features/cell, "
            f"query budget {ARENA_MAX_QUERIES})"
        ),
    )
