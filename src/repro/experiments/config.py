"""Experiment scaling: paper-scale vs container-scale runs.

The paper ran on a 3.60 GHz i7 with ``D = 10,000`` and full datasets;
this reproduction usually runs on small CI-like machines, so every
experiment accepts an :class:`ExperimentScale` and defaults to a reduced
configuration that finishes in minutes while preserving every *shape*
conclusion (who wins, by what factor, where trends bend). Setting the
environment variable ``REPRO_FULL_SCALE`` to a truthy value (``1``,
``true``, ``yes``, ``on`` — case-insensitive) switches the default to
paper scale; falsy values (empty, ``0``, ``false``, ``no``, ``off``)
keep the reduced scale, and anything else raises
:class:`~repro.errors.ConfigurationError` instead of being silently
ignored.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.utils.rng import DEFAULT_SEED

__all__ = [
    "ExperimentScale",
    "REDUCED_SCALE",
    "FULL_SCALE",
    "active_scale",
    "DEFAULT_SEED",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by all experiment runners."""

    name: str
    #: Hypervector dimensionality ``D``.
    dim: int
    #: Fraction of each benchmark's train/test samples to generate.
    sample_scale: float
    #: Retraining epochs for model training runs.
    retrain_epochs: int
    #: Cap on wrong-guess candidates in Fig. 5/6 sweeps (None = all).
    sweep_max_wrong: int | None
    #: Dimensionality used by the accuracy-vs-L sweep (Fig. 8), which
    #: trains 6 models per benchmark per flavor and dominates runtime.
    fig8_dim: int
    #: Sample fraction for the Fig. 8 sweep.
    fig8_sample_scale: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready field dict (artifact provenance / cache keys)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentScale":
        """Rebuild a scale from :meth:`to_dict` output."""
        return cls(**payload)


REDUCED_SCALE = ExperimentScale(
    name="reduced",
    dim=2048,
    sample_scale=0.20,
    retrain_epochs=2,
    sweep_max_wrong=300,
    fig8_dim=1024,
    fig8_sample_scale=0.12,
)

FULL_SCALE = ExperimentScale(
    name="full",
    dim=10_000,
    sample_scale=1.0,
    retrain_epochs=3,
    sweep_max_wrong=None,
    fig8_dim=10_000,
    fig8_sample_scale=1.0,
)


#: Accepted spellings of the ``REPRO_FULL_SCALE`` switch (compared
#: case-folded, surrounding whitespace ignored).
_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"", "0", "false", "no", "off"})


def active_scale() -> ExperimentScale:
    """The default scale: full when ``REPRO_FULL_SCALE`` is truthy.

    Raises :class:`~repro.errors.ConfigurationError` on unrecognized
    non-empty values — a misspelled switch must not silently fall back
    to the reduced scale.
    """
    raw = os.environ.get("REPRO_FULL_SCALE", "")
    value = raw.strip().casefold()
    if value in _TRUTHY:
        return FULL_SCALE
    if value in _FALSY:
        return REDUCED_SCALE
    raise ConfigurationError(
        f"unrecognized REPRO_FULL_SCALE value {raw!r}; "
        f"use one of {sorted(_TRUTHY)} for paper scale "
        f"or {sorted(_FALSY - {''})} (or unset) for reduced scale"
    )
