"""CSV projections of experiment artifacts (``--format csv``).

Every experiment's canonical artifact is JSON (see
:mod:`repro.experiments.records`); this module derives a flat, analysis-
friendly CSV view from the *artifact payload* — never from live result
objects — so the projection works identically for freshly computed
records and for artifacts reloaded from disk, and adding it cannot
perturb any numeric result.

Experiments whose payload is already tabular (``table1`` rows, ``fig8``
and ``arena`` cells, the ``sweeps`` point lists) project to one CSV row
per record. Series experiments (``fig3``, ``fig5``/``fig6``) project to
long format, one row per point. Everything else falls back to a generic
``path,value`` flattening of the payload tree, so ``--format csv`` never
refuses an experiment.

Output discipline: ``\\n`` line terminator and stringification via
:func:`_text` (booleans as ``true``/``false``, floats via ``repr``) keep
the bytes deterministic across platforms and runs — the same contract as
:func:`repro.experiments.records.canonical_json`.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Mapping, Sequence

__all__ = ["csv_rows", "render_csv"]


def _text(value: Any) -> str:
    """Deterministic scalar stringification for CSV fields."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _dict_rows(
    records: Sequence[Mapping[str, Any]],
) -> tuple[list[str], list[list[str]]]:
    """Rows-of-dicts to (headers, rows): first-seen key order, union."""
    headers: list[str] = []
    for record in records:
        for key in record:
            if key not in headers:
                headers.append(key)
    rows = [
        [_text(record[key]) if key in record else "" for key in headers]
        for record in records
    ]
    return headers, rows


def _flatten(prefix: str, node: Any, out: list[tuple[str, Any]]) -> None:
    """Depth-first ``path,value`` flattening of a JSON payload tree."""
    if isinstance(node, Mapping):
        for key, value in node.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), value, out)
    elif isinstance(node, (list, tuple)):
        for index, value in enumerate(node):
            _flatten(f"{prefix}[{index}]", value, out)
    else:
        out.append((prefix, node))


def _generic_rows(data: Mapping[str, Any]) -> tuple[list[str], list[list[str]]]:
    flat: list[tuple[str, Any]] = []
    _flatten("", data, flat)
    return ["path", "value"], [[path, _text(value)] for path, value in flat]


def _arena_rows(data: Mapping[str, Any]) -> tuple[list[str], list[list[str]]]:
    return _dict_rows(data["cells"])


def _table1_rows(data: Mapping[str, Any]) -> tuple[list[str], list[list[str]]]:
    return _dict_rows(data["rows"])


def _fig8_rows(data: Mapping[str, Any]) -> tuple[list[str], list[list[str]]]:
    return _dict_rows(data["cells"])


def _fig3_rows(data: Mapping[str, Any]) -> tuple[list[str], list[list[str]]]:
    correct = int(data["correct_index"])
    rows = [
        [str(index), _text(float(distance)), _text(index == correct)]
        for index, distance in enumerate(data["distances"])
    ]
    return ["candidate_index", "distance", "is_correct"], rows


def _fig56_rows(data: Mapping[str, Any]) -> tuple[list[str], list[list[str]]]:
    headers = ["panel", "parameter", "layer", "metric", "candidate", "score"]
    rows = []
    for panel_index, panel in enumerate(data["panels"]):
        for candidate, score in zip(
            panel["candidates"], panel["scores"], strict=True
        ):
            rows.append(
                [
                    str(panel_index),
                    panel["parameter"],
                    str(panel["layer"]),
                    panel["metric"],
                    _text(candidate),
                    _text(float(score)),
                ]
            )
    return headers, rows


def _sweeps_rows(data: Mapping[str, Any]) -> tuple[list[str], list[list[str]]]:
    records = [
        {"table": table, **point}
        for table in ("recovery", "margins")
        for point in data[table]
    ]
    return _dict_rows(records)


_PROJECTIONS: dict[
    str, Callable[[Mapping[str, Any]], tuple[list[str], list[list[str]]]]
] = {
    "arena": _arena_rows,
    "table1": _table1_rows,
    "fig3": _fig3_rows,
    "fig5": _fig56_rows,
    "fig6": _fig56_rows,
    "fig8": _fig8_rows,
    "sweeps": _sweeps_rows,
}


def csv_rows(
    name: str, data: Mapping[str, Any]
) -> tuple[list[str], list[list[str]]]:
    """``(headers, rows)`` CSV projection of one experiment payload.

    ``data`` is the artifact payload (the record's ``data`` object);
    experiments without a dedicated projection get the generic
    ``path,value`` flattening.
    """
    projection = _PROJECTIONS.get(name, _generic_rows)
    return projection(data)


def render_csv(name: str, data: Mapping[str, Any]) -> str:
    """One experiment payload as a deterministic CSV document."""
    headers, rows = csv_rows(name, data)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()
