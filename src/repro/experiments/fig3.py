"""Experiment Fig. 3: guess-distance profile on an unprotected model.

The paper's proof-of-concept: an MNIST-shaped encoder, an adversarial
input with pixel 1 white and everything else black, and the Hamming
distance of all 784 feature-hypervector guesses to the observed output.
The paper plants the correct candidate at pool position 400; here the
publish shuffle decides the position and the ground truth records it.
Expected shape: the correct guess sits well below every wrong guess
(paper: ~0.004 vs ~0.02 at ``D = 10,000``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.attack.feature_extraction import guess_distance_series
from repro.attack.threat_model import expose_model
from repro.attack.value_extraction import extract_value_mapping
from repro.data.benchmarks import benchmark_spec
from repro.encoding.record import RecordEncoder
from repro.experiments.config import DEFAULT_SEED, ExperimentScale, active_scale
from repro.utils.rng import resolve_rng
from repro.utils.tables import render_table


@dataclass(frozen=True)
class Fig3Result:
    """Distance of every feature guess for the attacked pixel."""

    distances: np.ndarray
    correct_index: int
    attacked_feature: int
    binary: bool

    @property
    def correct_distance(self) -> float:
        """Distance of the correct guess (the dip in the figure)."""
        return float(self.distances[self.correct_index])

    @property
    def wrong_distances(self) -> np.ndarray:
        """Distances of all wrong guesses."""
        return np.delete(self.distances, self.correct_index)

    @property
    def separation(self) -> float:
        """Smallest wrong distance minus the correct distance (> 0 means
        the correct mapping is uniquely identifiable)."""
        return float(self.wrong_distances.min() - self.correct_distance)

    def to_dict(self) -> dict[str, Any]:
        """Stable artifact payload (full distance series included)."""
        return {
            "distances": np.asarray(self.distances, dtype=float).tolist(),
            "correct_index": int(self.correct_index),
            "attacked_feature": int(self.attacked_feature),
            "binary": bool(self.binary),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Fig3Result":
        """Inverse of :meth:`to_dict`."""
        return cls(
            distances=np.asarray(payload["distances"], dtype=float),
            correct_index=int(payload["correct_index"]),
            attacked_feature=int(payload["attacked_feature"]),
            binary=bool(payload["binary"]),
        )


def run_fig3(
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
    binary: bool = True,
) -> Fig3Result:
    """Build the MNIST-shaped model, attack pixel 1, score all guesses."""
    cfg = scale or active_scale()
    spec = benchmark_spec("mnist")
    rng = resolve_rng(seed)
    encoder = RecordEncoder.random(spec.n_features, spec.levels, cfg.dim, rng)
    surface, truth = expose_model(encoder, binary=binary, rng=rng)
    value = extract_value_mapping(surface, rng)
    distances = guess_distance_series(
        surface, value.level_order, feature=0, full_dim=True
    )
    return Fig3Result(
        distances=np.asarray(distances),
        correct_index=int(truth.feature_assignment[0]),
        attacked_feature=0,
        binary=binary,
    )


def render_fig3(result: Fig3Result) -> str:
    """Text rendering of the Fig. 3 series (summary statistics)."""
    wrong = result.wrong_distances
    rows = [
        ("correct guess", f"{result.correct_distance:.5f}"),
        ("wrong guesses: min", f"{wrong.min():.5f}"),
        ("wrong guesses: mean", f"{wrong.mean():.5f}"),
        ("wrong guesses: max", f"{wrong.max():.5f}"),
        ("separation (min wrong - correct)", f"{result.separation:.5f}"),
        ("candidates tried", str(result.distances.size)),
    ]
    flavor = "binary" if result.binary else "non-binary"
    return render_table(
        ["quantity", "value"],
        rows,
        title=(
            f"Fig. 3 — guess distances, {flavor} MNIST-shaped model "
            f"(correct candidate at pool row {result.correct_index})"
        ),
    )
