"""Experiments Fig. 5 / Fig. 6: HDLock security validation sweeps.

Setup from the paper: MNIST shape (``N = 784``), ``P = N = 784``,
``L = 2``, ``D = 10,000``. The adversary is assumed to have already
learned three of the four key parameters of feature 1 —
``{k_11, index(B_11), k_12, index(B_12)}`` — and sweeps the last one.
Four panels per figure (one per parameter); Fig. 5 is the binary model
(Hamming criterion), Fig. 6 the non-binary model (cosine criterion).

The paper's conclusion, which these runs reproduce: the correct value of
the remaining parameter is *identifiable* (clear dip / cosine 1), but a
single wrong parameter destroys the mapping — so the attacker must pay
the full ``(D * P)^L`` product, ``4.81e16`` tries for MNIST.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.attack.hdlock_attack import SweepResult, sweep_parameter
from repro.attack.threat_model import expose_locked_model
from repro.data.benchmarks import benchmark_spec
from repro.experiments.cache import DiskCache, cached
from repro.experiments.config import DEFAULT_SEED, ExperimentScale, active_scale
from repro.hdlock.lock import create_locked_encoder
from repro.utils.tables import render_table

#: The four swept parameters, in the paper's panel order (a)-(d):
#: k_{1,1}, index(B_{1,1}), k_{1,2}, index(B_{1,2}).
PANEL_ORDER = (
    ("rotation", 0),
    ("index", 0),
    ("rotation", 1),
    ("index", 1),
)


@dataclass(frozen=True)
class Fig56Result:
    """All four sweep panels of Fig. 5 (binary) or Fig. 6 (non-binary)."""

    binary: bool
    panels: tuple[SweepResult, ...]

    @property
    def all_separated(self) -> bool:
        """True when every panel uniquely identifies the correct value."""
        return all(panel.separation > 0 for panel in self.panels)

    def to_dict(self) -> dict[str, Any]:
        """Stable artifact payload: one entry per sweep panel."""
        return {
            "binary": bool(self.binary),
            "panels": [
                {
                    "parameter": panel.parameter,
                    "layer": int(panel.layer),
                    "metric": panel.metric,
                    "candidates": np.asarray(panel.candidates).tolist(),
                    "scores": np.asarray(
                        panel.scores, dtype=float
                    ).tolist(),
                }
                for panel in self.panels
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Fig56Result":
        """Inverse of :meth:`to_dict`."""
        return cls(
            binary=bool(payload["binary"]),
            panels=tuple(
                SweepResult(
                    parameter=panel["parameter"],
                    layer=int(panel["layer"]),
                    metric=panel["metric"],
                    candidates=np.asarray(panel["candidates"]),
                    scores=np.asarray(panel["scores"], dtype=float),
                )
                for panel in payload["panels"]
            ),
        )


def _run(
    binary: bool,
    scale: ExperimentScale | None,
    seed: int,
    cache: DiskCache | None = None,
) -> Fig56Result:
    cfg = scale or active_scale()
    spec = benchmark_spec("mnist")
    # Fig. 5 and Fig. 6 evaluate the SAME deployed system under two
    # criteria; the cache lets whichever runs second (possibly in a
    # different worker process) reuse the generated pool/key/encoder.
    system = cached(
        cache,
        (
            "locked-system",
            spec.n_features,
            spec.levels,
            cfg.dim,
            2,
            spec.n_features,
            seed,
        ),
        lambda: create_locked_encoder(
            n_features=spec.n_features,
            levels=spec.levels,
            dim=cfg.dim,
            layers=2,
            pool_size=spec.n_features,
            rng=seed,
        ),
    )
    surface, _secure = expose_locked_model(system.encoder, binary=binary)
    panels = tuple(
        sweep_parameter(
            surface,
            system.key,
            parameter,
            layer,
            feature=0,
            max_wrong=cfg.sweep_max_wrong,
        )
        for parameter, layer in PANEL_ORDER
    )
    return Fig56Result(binary=binary, panels=panels)


def run_fig5(
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
    cache: DiskCache | None = None,
) -> Fig56Result:
    """Fig. 5: binary HDC, Hamming-distance criterion."""
    return _run(binary=True, scale=scale, seed=seed, cache=cache)


def run_fig6(
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
    cache: DiskCache | None = None,
) -> Fig56Result:
    """Fig. 6: non-binary HDC, cosine criterion."""
    return _run(binary=False, scale=scale, seed=seed, cache=cache)


_PANEL_LABELS = ("k_{1,1}", "index(B_{1,1})", "k_{1,2}", "index(B_{1,2})")


def render_fig56(result: Fig56Result) -> str:
    """Summary table of the four panels (figure series reduced to the
    statistics that carry the security argument)."""
    rows = []
    for label, panel in zip(_PANEL_LABELS, result.panels, strict=True):
        wrong = panel.scores[1:]
        if panel.metric == "hamming":
            best_wrong = f"{wrong.min():.4f}"
        else:
            best_wrong = f"{wrong.max():.4f}"
        rows.append(
            (
                label,
                panel.metric,
                f"{panel.correct_score:.4f}",
                best_wrong,
                f"{panel.separation:.4f}",
                panel.candidates.size,
            )
        )
    figure = "Fig. 5 (binary)" if result.binary else "Fig. 6 (non-binary)"
    return render_table(
        [
            "attacked parameter",
            "criterion",
            "correct score",
            "best wrong",
            "separation",
            "guesses",
        ],
        rows,
        title=f"{figure} — HDLock security validation, L=2, P=N=784",
    )
