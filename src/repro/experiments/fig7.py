"""Experiment Fig. 7: analytic attack-complexity landscape.

* Fig. 7a — per-feature guesses over a ``(D, P)`` grid at ``L = 2``
  (monomial growth in both parameters);
* Fig. 7b — per-feature guesses vs key depth ``L`` for
  ``P in {100, 300, 500, 700}`` at ``D = 10,000`` (exponential in ``L``,
  with ``P`` and ``L`` mutually enhancing).

Also checks the paper's quoted MNIST checkpoints (Sec. 5.2):
``6.15e5`` (plain), ``6.15e9`` (L=1), ``4.81e16`` (L=2), ``7.82e10``
improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.attack.complexity import (
    guesses_vs_dim_and_pool,
    guesses_vs_layers,
    hdlock_total_guesses,
    plain_total_guesses,
    security_improvement,
)
from repro.utils.tables import format_quantity, render_table

#: Grid used for the 7a surface (paper sweeps D and P around its
#: evaluation point D=10k, P<=784).
FIG7A_DIMS = (2000, 4000, 6000, 8000, 10_000)
FIG7A_POOLS = (100, 300, 500, 700)

#: Curves of 7b.
FIG7B_LAYERS = (1, 2, 3, 4, 5)
FIG7B_POOLS = (100, 300, 500, 700)
FIG7B_DIM = 10_000


@dataclass(frozen=True)
class PaperCheckpoint:
    """One complexity number quoted in the paper, with our computation."""

    label: str
    paper_value: float
    computed: float

    @property
    def relative_error(self) -> float:
        """|computed - paper| / paper."""
        return abs(self.computed - self.paper_value) / self.paper_value


@dataclass(frozen=True)
class Fig7Result:
    """Both panels plus the quoted-number checkpoints."""

    surface_7a: list[tuple[int, int, int]]
    curves_7b: dict[int, list[tuple[int, int]]]
    checkpoints: tuple[PaperCheckpoint, ...]

    @property
    def checkpoints_match(self) -> bool:
        """True when every quoted paper number matches within 1 %."""
        return all(c.relative_error < 0.01 for c in self.checkpoints)

    def to_dict(self) -> dict[str, Any]:
        """Stable artifact payload (JSON object keys are strings, so the
        7b pool sizes serialize as decimal strings)."""
        return {
            "surface_7a": [
                [int(d), int(p), int(g)] for d, p, g in self.surface_7a
            ],
            "curves_7b": {
                str(pool): [[int(depth), int(g)] for depth, g in curve]
                for pool, curve in self.curves_7b.items()
            },
            "checkpoints": [
                {
                    "label": c.label,
                    "paper_value": float(c.paper_value),
                    "computed": float(c.computed),
                }
                for c in self.checkpoints
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Fig7Result":
        """Inverse of :meth:`to_dict`."""
        return cls(
            surface_7a=[
                (int(d), int(p), int(g)) for d, p, g in payload["surface_7a"]
            ],
            curves_7b={
                int(pool): [(int(depth), int(g)) for depth, g in curve]
                for pool, curve in payload["curves_7b"].items()
            },
            checkpoints=tuple(
                PaperCheckpoint(**c) for c in payload["checkpoints"]
            ),
        )


def mnist_checkpoints() -> tuple[PaperCheckpoint, ...]:
    """The Sec. 5.2 MNIST complexity numbers (N = P = 784, D = 10k)."""
    n, d, p = 784, 10_000, 784
    return (
        PaperCheckpoint(
            "plain divide-and-conquer (N^2)",
            6.15e5,
            float(plain_total_guesses(n)),
        ),
        PaperCheckpoint(
            "HDLock L=1 (N*D*P)",
            6.15e9,
            float(hdlock_total_guesses(n, d, p, 1)),
        ),
        PaperCheckpoint(
            "HDLock L=2 (N*(D*P)^2)",
            4.81e16,
            float(hdlock_total_guesses(n, d, p, 2)),
        ),
        PaperCheckpoint(
            "improvement L=2 vs plain",
            7.82e10,
            security_improvement(n, d, p, 2),
        ),
    )


def run_fig7() -> Fig7Result:
    """Compute both panels and the checkpoints (pure arithmetic)."""
    return Fig7Result(
        surface_7a=guesses_vs_dim_and_pool(FIG7A_DIMS, FIG7A_POOLS, layers=2),
        curves_7b=guesses_vs_layers(FIG7B_LAYERS, FIG7B_POOLS, dim=FIG7B_DIM),
        checkpoints=mnist_checkpoints(),
    )


def render_fig7(result: Fig7Result) -> str:
    """Text rendering: 7a grid, 7b curves, checkpoint comparison."""
    grid_rows = {}
    for dim, pool, guesses in result.surface_7a:
        grid_rows.setdefault(dim, {})[pool] = guesses
    pools = sorted({pool for _, pool, _ in result.surface_7a})
    table_a = render_table(
        ["D \\ P"] + [str(p) for p in pools],
        [
            [str(dim)] + [format_quantity(float(grid_rows[dim][p])) for p in pools]
            for dim in sorted(grid_rows)
        ],
        title="Fig. 7a — guesses per feature vs D and P (L = 2)",
    )
    layer_values = sorted(
        {depth for curve in result.curves_7b.values() for depth, _ in curve}
    )
    table_b = render_table(
        ["P \\ L"] + [str(depth) for depth in layer_values],
        [
            [f"P={p}"]
            + [format_quantity(float(dict(curve)[depth])) for depth in layer_values]
            for p, curve in sorted(result.curves_7b.items())
        ],
        title="Fig. 7b — guesses per feature vs layers L (D = 10,000)",
    )
    table_c = render_table(
        ["paper quantity", "paper", "computed", "rel. err"],
        [
            (
                c.label,
                format_quantity(c.paper_value),
                format_quantity(c.computed),
                f"{c.relative_error * 100:.2f}%",
            )
            for c in result.checkpoints
        ],
        title="Sec. 5.2 quoted MNIST complexities",
    )
    return "\n\n".join([table_a, table_b, table_c])
