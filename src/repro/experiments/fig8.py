"""Experiment Fig. 8: classification accuracy vs key depth ``L``.

For every benchmark and both model flavors, train a model at
``L = 0`` (unprotected baseline) through ``L = 5`` and measure test
accuracy. The paper's finding — reproduced here — is a flat line: the
locked feature hypervectors are statistically indistinguishable from
fresh orthogonal ones, so HDLock costs no accuracy at any depth.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import partial
from typing import Any, Mapping, Sequence

from repro.data.benchmarks import BENCHMARK_ORDER, PAPER_REFERENCE, load_benchmark
from repro.encoding.record import RecordEncoder
from repro.experiments.cache import DiskCache, cached
from repro.experiments.config import DEFAULT_SEED, ExperimentScale, active_scale
from repro.hdlock.lock import create_locked_encoder
from repro.model.train import train_model
from repro.utils.rng import derive_seed
from repro.utils.tables import render_table

#: Key depths evaluated by the paper (0 = unprotected baseline).
LAYER_RANGE = (0, 1, 2, 3, 4, 5)


@dataclass(frozen=True)
class Fig8Cell:
    """Accuracy of one (benchmark, flavor, L) trained model."""

    benchmark: str
    binary: bool
    layers: int
    accuracy: float


@dataclass(frozen=True)
class Fig8Result:
    """The full accuracy-vs-L sweep."""

    cells: tuple[Fig8Cell, ...]

    def curve(self, benchmark: str, binary: bool) -> list[tuple[int, float]]:
        """The (L, accuracy) series of one benchmark and flavor."""
        return [
            (c.layers, c.accuracy)
            for c in self.cells
            if c.benchmark == benchmark and c.binary == binary
        ]

    def max_accuracy_drop(self, benchmark: str, binary: bool) -> float:
        """Worst accuracy loss of any locked depth vs the L=0 baseline.

        Negative values mean the locked model did *better* (seed noise).
        """
        curve = dict(self.curve(benchmark, binary))
        baseline = curve[0]
        return max(baseline - acc for l, acc in curve.items() if l > 0)

    def to_dict(self) -> dict[str, Any]:
        """Stable artifact payload: one entry per trained cell."""
        return {"cells": [asdict(c) for c in self.cells]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Fig8Result":
        """Inverse of :meth:`to_dict`."""
        return cls(cells=tuple(Fig8Cell(**c) for c in payload["cells"]))


def _train_cell(
    dataset,
    name: str,
    binary: bool,
    depth: int,
    cfg: ExperimentScale,
    run_seed: int,
) -> float:
    """Train one (benchmark, flavor, L) model and return test accuracy."""
    if depth == 0:
        encoder = RecordEncoder.random(
            dataset.n_features,
            dataset.levels,
            cfg.fig8_dim,
            run_seed,
        )
    else:
        encoder = create_locked_encoder(
            n_features=dataset.n_features,
            levels=dataset.levels,
            dim=cfg.fig8_dim,
            layers=depth,
            rng=run_seed,
        ).encoder
    training = train_model(
        encoder,
        dataset.train_x,
        dataset.train_y,
        n_classes=dataset.n_classes,
        binary=binary,
        retrain_epochs=cfg.retrain_epochs,
        rng=run_seed,
    )
    return training.model.score(dataset.test_x, dataset.test_y)


def run_fig8(
    benchmarks: Sequence[str] = BENCHMARK_ORDER,
    flavors: Sequence[bool] = (False, True),
    layers: Sequence[int] = LAYER_RANGE,
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
    cache: DiskCache | None = None,
) -> Fig8Result:
    """Train one model per (benchmark, flavor, L) and collect accuracy.

    This sweep dominates the suite's cold runtime (6 trained models per
    benchmark per flavor), so both the generated datasets and the
    per-cell accuracies go through the shared on-disk ``cache`` when one
    is provided — every cell is a pure function of its key, so warm
    re-runs and concurrent shards skip the training entirely.
    """
    cfg = scale or active_scale()
    cells: list[Fig8Cell] = []
    for name in benchmarks:
        dataset = cached(
            cache,
            ("dataset", name, seed, cfg.fig8_sample_scale),
            partial(
                load_benchmark,
                name,
                rng=seed,
                sample_scale=cfg.fig8_sample_scale,
            ),
        )
        for binary in flavors:
            for depth in layers:
                run_seed = derive_seed(seed, "fig8", name, binary, depth)
                accuracy = cached(
                    cache,
                    (
                        "fig8-cell",
                        name,
                        binary,
                        depth,
                        cfg.fig8_dim,
                        cfg.fig8_sample_scale,
                        cfg.retrain_epochs,
                        run_seed,
                    ),
                    partial(
                        _train_cell, dataset, name, binary, depth, cfg, run_seed
                    ),
                )
                cells.append(
                    Fig8Cell(
                        benchmark=name,
                        binary=binary,
                        layers=depth,
                        accuracy=accuracy,
                    )
                )
    return Fig8Result(cells=tuple(cells))


def render_fig8(result: Fig8Result) -> str:
    """Two tables (one per flavor): benchmark rows, L columns."""
    sections = []
    for binary in (False, True):
        flavor_cells = [c for c in result.cells if c.binary == binary]
        if not flavor_cells:
            continue
        benchmarks = list(dict.fromkeys(c.benchmark for c in flavor_cells))
        layer_values = sorted({c.layers for c in flavor_cells})
        rows = []
        for name in benchmarks:
            curve = dict(result.curve(name, binary))
            ref = PAPER_REFERENCE.get(name)
            paper_acc = (
                (ref.binary_accuracy if binary else ref.nonbinary_accuracy)
                if ref
                else None
            )
            rows.append(
                [name.upper()]
                + [f"{curve[depth]:.4f}" for depth in layer_values]
                + [f"{paper_acc:.4f}" if paper_acc is not None else "-"]
            )
        flavor = "binary" if binary else "non-binary"
        sections.append(
            render_table(
                ["benchmark"]
                + [f"L={depth}" for depth in layer_values]
                + ["paper (L=0)"],
                rows,
                title=f"Fig. 8 — accuracy vs key depth, {flavor} record encoding",
            )
        )
    return "\n\n".join(sections)
