"""Experiment Fig. 9: relative encoding time vs key depth.

Cycle counts come from the datapath model (:mod:`repro.hardware`), which
stands in for the paper's Zynq UltraScale+ implementation; like the
paper, "relative encoding time is the ratio of two clock-cycle
measurements". Expected shape: exactly 1.0 at ``L = 1`` (permutation is
a shifted memory access), ~1.21 at ``L = 2``, then a linear climb — and
the curves of all five benchmarks nearly coincide because the ratio is
dominated by the per-feature beat count, which does not depend on ``N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.data.benchmarks import BENCHMARK_ORDER, BENCHMARKS
from repro.experiments.config import DEFAULT_SEED, ExperimentScale
from repro.hardware.datapath import DatapathConfig
from repro.hardware.encoder_cost import encoding_cycles, relative_time_series
from repro.utils.tables import render_table

#: Key depths on the Fig. 9 x-axis.
LAYER_RANGE = (1, 2, 3, 4, 5)

#: The paper's headline overhead at L = 2.
PAPER_L2_OVERHEAD = 1.21


@dataclass(frozen=True)
class Fig9Result:
    """Relative-encoding-time curves per benchmark plus baseline cycles."""

    curves: dict[str, list[tuple[int, float]]]
    baseline_cycles: dict[str, int]
    dim: int

    def overhead_at(self, layers: int) -> dict[str, float]:
        """Relative time of every benchmark at one key depth."""
        return {name: dict(curve)[layers] for name, curve in self.curves.items()}

    @property
    def curve_spread_at_l2(self) -> float:
        """Max minus min relative time across benchmarks at L = 2 — the
        'curves coincide' observation quantified."""
        values = list(self.overhead_at(2).values())
        return max(values) - min(values)

    def to_dict(self) -> dict[str, Any]:
        """Stable artifact payload."""
        return {
            "curves": {
                name: [[int(depth), float(t)] for depth, t in curve]
                for name, curve in self.curves.items()
            },
            "baseline_cycles": {
                name: int(c) for name, c in self.baseline_cycles.items()
            },
            "dim": int(self.dim),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Fig9Result":
        """Inverse of :meth:`to_dict`."""
        return cls(
            curves={
                name: [(int(depth), float(t)) for depth, t in curve]
                for name, curve in payload["curves"].items()
            },
            baseline_cycles=dict(payload["baseline_cycles"]),
            dim=int(payload["dim"]),
        )


def run_fig9(
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
    config: DatapathConfig | None = None,
    dim: int | None = None,
) -> Fig9Result:
    """Evaluate the cycle model on all five benchmark shapes.

    The cycle model is pure arithmetic, so unlike the other experiments
    this one defaults to the paper's ``D = 10,000`` even at reduced
    scale; pass ``dim`` to explore other dimensionalities.
    """
    del scale, seed  # the cycle model is deterministic and free
    dim = 10_000 if dim is None else dim
    shapes = {name: BENCHMARKS[name].n_features for name in BENCHMARK_ORDER}
    curves = relative_time_series(LAYER_RANGE, shapes, dim, config)
    baseline = {
        name: encoding_cycles(n, dim, 0, config) for name, n in shapes.items()
    }
    return Fig9Result(curves=curves, baseline_cycles=baseline, dim=dim)


def render_fig9(result: Fig9Result) -> str:
    """Benchmark rows, L columns, plus the paper's L=2 reference."""
    layer_values = sorted(
        {depth for curve in result.curves.values() for depth, _ in curve}
    )
    rows = []
    for name, curve in result.curves.items():
        series = dict(curve)
        rows.append(
            [name.upper(), str(result.baseline_cycles[name])]
            + [f"{series[depth]:.3f}" for depth in layer_values]
        )
    rows.append(
        ["(paper)", "-"]
        + [
            "1.000"
            if depth == 1
            else (f"{PAPER_L2_OVERHEAD:.3f}" if depth == 2 else "-")
            for depth in layer_values
        ]
    )
    return render_table(
        ["benchmark", "baseline cycles"] + [f"L={depth}" for depth in layer_values],
        rows,
        title=(
            f"Fig. 9 — relative encoding time vs key depth "
            f"(cycle model, D={result.dim})"
        ),
    )
