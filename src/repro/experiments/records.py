"""Structured experiment records and on-disk JSON artifacts.

Every experiment run produces an :class:`ExperimentRecord` — the
experiment's structured payload plus the provenance needed to reproduce
it (scale, root seed, derived child seed, environment) and the wall
clock measured *inside* the worker that ran it.

Artifacts are deterministic by construction: wall-clock measurements and
any payload fields derived from them (``reasoning_seconds``,
``measured_seconds``, …) are split out of the payload by
:func:`split_volatile` into the record's ``timing`` section, which is
excluded from the artifact file. For a fixed ``--seed`` the artifact
bytes are therefore identical no matter how many workers produced them
(``--jobs 1`` vs ``--jobs 4``), which makes artifacts diffable and the
``--out`` directory resumable: an artifact whose embedded ``key``
(a content hash over schema/experiment/seed/scale/environment) matches
the requested run is up to date and is skipped.

Artifact layout under ``--out DIR``::

    DIR/
      <experiment>.json   # canonical JSON, deterministic per seed
      manifest.json       # volatile run metadata: timings, statuses

Artifact schema (one file per experiment)::

    {
      "schema": 1,              # bumped on breaking layout changes
      "experiment": "fig3",
      "key": "<sha256 hex>",    # identity hash used by resume
      "seed": 19740,            # root suite seed (--seed)
      "child_seed": ...,        # SeedSequence-derived seed consumed
      "scale": {...},           # ExperimentScale.to_dict()
      "env": {...},             # python/numpy/platform versions
      "data": {...}             # experiment payload, timing-free
    }
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Final, Iterable, Mapping

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "ExperimentRecord",
    "artifact_up_to_date",
    "canonical_json",
    "environment_provenance",
    "load_artifact",
    "merge_volatile",
    "record_key",
    "split_volatile",
]

#: Version of the artifact layout; bump on breaking schema changes so
#: stale artifacts stop matching the resume key.
SCHEMA_VERSION: Final[int] = 1


def canonical_json(obj: Any) -> str:
    """Serialize ``obj`` to the one canonical JSON text used on disk.

    Sorted keys, two-space indent, trailing newline — stable bytes for
    identical values, so artifact parity can be asserted bytewise.
    """
    return json.dumps(obj, sort_keys=True, indent=2, allow_nan=False) + "\n"


def environment_provenance() -> dict[str, str]:
    """Versions that determine the numeric results on this machine."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
    }


def split_volatile(
    node: Any, volatile_keys: Iterable[str], _path: str = ""
) -> tuple[Any, dict[str, Any]]:
    """Strip wall-clock-derived fields out of a payload tree.

    Returns ``(clean, volatile)`` where ``clean`` is ``node`` with every
    mapping key named in ``volatile_keys`` removed (recursively, through
    dicts and lists) and ``volatile`` maps the JSON path of each removed
    field (e.g. ``"rows[3].reasoning_seconds"``) to its value.
    """
    keys = frozenset(volatile_keys)
    volatile: dict[str, Any] = {}
    if isinstance(node, Mapping):
        clean: dict[str, Any] = {}
        for k, v in node.items():
            child_path = f"{_path}.{k}" if _path else str(k)
            if k in keys:
                volatile[child_path] = v
                continue
            sub_clean, sub_volatile = split_volatile(v, keys, child_path)
            clean[k] = sub_clean
            volatile.update(sub_volatile)
        return clean, volatile
    if isinstance(node, list):
        items = []
        for i, v in enumerate(node):
            sub_clean, sub_volatile = split_volatile(v, keys, f"{_path}[{i}]")
            items.append(sub_clean)
            volatile.update(sub_volatile)
        return items, volatile
    return node, volatile


def merge_volatile(clean: Any, volatile: Mapping[str, Any]) -> Any:
    """Inverse of :func:`split_volatile` (for rebuilding full payloads)."""
    import copy
    import re

    merged = copy.deepcopy(clean)
    token = re.compile(r"\.?([^.\[\]]+)|\[(\d+)\]")
    for path, value in volatile.items():
        parts: list[str | int] = [
            int(index) if index else name
            for name, index in token.findall(path)
        ]
        node = merged
        for part in parts[:-1]:
            node = node[part]
        node[parts[-1]] = value
    return merged


def record_key(
    experiment: str,
    seed: int,
    child_seed: int,
    scale: Mapping[str, Any],
    env: Mapping[str, Any] | None = None,
    schema: int = SCHEMA_VERSION,
) -> str:
    """Content hash identifying one (experiment, scale, seed, env) run.

    The resume logic treats an on-disk artifact as up to date exactly
    when its embedded key equals this hash for the requested run.
    """
    identity = {
        "schema": schema,
        "experiment": experiment,
        "seed": seed,
        "child_seed": child_seed,
        "scale": dict(scale),
        "env": dict(env if env is not None else environment_provenance()),
    }
    digest = hashlib.sha256(canonical_json(identity).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class ExperimentRecord:
    """One experiment's structured result plus reproduction provenance."""

    experiment: str
    seed: int
    child_seed: int
    scale: dict[str, Any]
    data: dict[str, Any]
    timing: dict[str, Any] = field(default_factory=dict)
    env: dict[str, str] = field(default_factory=environment_provenance)
    schema: int = SCHEMA_VERSION

    @property
    def key(self) -> str:
        """The resume/identity hash of this record."""
        return record_key(
            self.experiment,
            self.seed,
            self.child_seed,
            self.scale,
            self.env,
            self.schema,
        )

    def artifact_dict(self) -> dict[str, Any]:
        """The deterministic subset written to the artifact file."""
        return {
            "schema": self.schema,
            "experiment": self.experiment,
            "key": self.key,
            "seed": self.seed,
            "child_seed": self.child_seed,
            "scale": dict(self.scale),
            "env": dict(self.env),
            "data": self.data,
        }

    def to_dict(self) -> dict[str, Any]:
        """Full serialization, timing included (manifest / stdout JSON)."""
        payload = self.artifact_dict()
        payload["timing"] = self.timing
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentRecord":
        """Rebuild a record from :meth:`to_dict` or an artifact dict."""
        return cls(
            experiment=payload["experiment"],
            seed=payload["seed"],
            child_seed=payload["child_seed"],
            scale=dict(payload["scale"]),
            data=dict(payload["data"]),
            timing=dict(payload.get("timing", {})),
            env=dict(payload["env"]),
            schema=payload["schema"],
        )

    def write_artifact(self, out_dir: str | Path) -> Path:
        """Write the canonical artifact file; returns its path."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{self.experiment}.json"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(canonical_json(self.artifact_dict()), encoding="utf-8")
        tmp.replace(path)
        return path


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Read one artifact file back as a plain dict."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def artifact_up_to_date(path: str | Path, expected_key: str) -> bool:
    """True when ``path`` exists and its embedded key matches."""
    path = Path(path)
    if not path.is_file():
        return False
    try:
        payload = load_artifact(path)
    except (OSError, json.JSONDecodeError):
        return False
    return payload.get("key") == expected_key
