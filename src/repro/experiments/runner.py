"""Parallel, artifact-producing experiment runner.

Regenerates any subset of the paper's tables and figures, serially or
fanned out over worker processes, as text reports or machine-readable
JSON artifacts::

    python -m repro                                    # everything, text
    python -m repro --only fig3,fig9 --seed 7
    python -m repro --jobs 4 --format json --out artifacts
    REPRO_FULL_SCALE=1 python -m repro --only table1

Flags:

``--only NAMES``
    Comma-separated subset of the registry (whitespace around names and
    empty segments are tolerated; duplicates collapse, order preserved).
    Unknown names are a usage error (exit code 2), not a traceback.
``--seed N``
    Root suite seed. Every experiment consumes its own child seed,
    derived from one :class:`numpy.random.SeedSequence` keyed by the
    experiment's fixed registry position — deterministic given the root
    seed, independent across experiments, and identical under every
    ``--jobs`` setting. (Fig. 5 and Fig. 6 share one child seed on
    purpose: they evaluate the same deployed system under two criteria.)
``--jobs N``
    Number of worker processes. Experiments always execute in spawned
    workers (also for ``--jobs 1``) so numeric results cannot depend on
    the parallelism level; wall clocks are measured inside the worker
    that ran the experiment, keeping reasoning-time numbers honest under
    concurrency.
``--format text|json|csv``
    ``text`` prints the paper-style tables; ``json`` prints one
    canonical JSON document with every record plus per-experiment
    timings; ``csv`` prints flat per-experiment CSV projections of the
    artifact payloads (:mod:`repro.experiments.csvfmt`) and, with
    ``--out``, writes one ``<name>.csv`` next to each JSON artifact.
``--out DIR``
    Write one deterministic JSON artifact per experiment plus a
    ``manifest.json`` with the volatile run metadata (statuses, wall
    clocks, cache hit rates). Re-running with the same seed/scale skips
    experiments whose artifact key already matches (resume); see
    :mod:`repro.experiments.records` for the artifact schema.
``--cache DIR`` / ``--no-cache``
    Shared on-disk cache for deterministic intermediates (benchmark
    datasets, Fig. 8 trained cells, the Fig. 5/6 locked system); see
    :mod:`repro.experiments.cache` for the layout. Defaults to
    ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-hdlock``.

Exit codes: 0 on success, 1 when an experiment fails, 2 on usage or
configuration errors (unknown experiment names, bad ``REPRO_FULL_SCALE``
values).
"""

from __future__ import annotations

import argparse
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.data.benchmarks import BENCHMARK_ORDER
from repro.errors import ConfigurationError
from repro.experiments.ablations import (
    ABLATIONS_VOLATILE_FIELDS,
    AblationsResult,
    run_ablations,
)
from repro.experiments.arena import (
    ARENA_VOLATILE_FIELDS,
    ArenaResult,
    arena_shards,
    combine_arena,
    render_arena,
    run_arena,
    run_arena_shard,
)
from repro.experiments.cache import DiskCache
from repro.experiments.csvfmt import render_csv
from repro.experiments.config import DEFAULT_SEED, ExperimentScale, active_scale
from repro.experiments.fig3 import Fig3Result, render_fig3, run_fig3
from repro.experiments.fig56 import Fig56Result, render_fig56, run_fig5, run_fig6
from repro.experiments.fig7 import Fig7Result, render_fig7, run_fig7
from repro.experiments.fig8 import Fig8Result, render_fig8, run_fig8
from repro.experiments.fig9 import Fig9Result, render_fig9, run_fig9
from repro.experiments.records import (
    ExperimentRecord,
    artifact_up_to_date,
    canonical_json,
    environment_provenance,
    load_artifact,
    record_key,
    split_volatile,
)
from repro.experiments.sweeps import SweepsResult, run_sweeps
from repro.experiments.table1 import (
    TABLE1_VOLATILE_FIELDS,
    render_table1,
    run_table1,
    table1_from_dict,
    table1_to_dict,
)
from repro.obs.trace import SpanRecorder, span
from repro.utils.timer import Timer

#: Default cache location when neither ``--cache`` nor ``--no-cache``
#: nor ``$REPRO_CACHE_DIR`` says otherwise.
DEFAULT_CACHE_DIR = "~/.cache/repro-hdlock"


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: how to run, serialize and render one experiment.

    Experiments whose wall clock would dominate the suite declare
    ``shards``: independent work units (e.g. one per benchmark/flavor)
    that workers can run concurrently and ``combine`` reassembles into
    the one canonical result. Shards receive the experiment's child seed
    and derive their internal streams from their own identity, so a
    sharded run is bit-identical to the whole-experiment run.
    """

    name: str
    #: Experiments in the same seed group receive the same child seed
    #: (used by fig5/fig6, which deploy one system under two criteria).
    seed_group: str
    run: Callable[[ExperimentScale, int, DiskCache | None], Any]
    to_dict: Callable[[Any], dict[str, Any]]
    from_dict: Callable[[dict[str, Any]], Any]
    render: Callable[[Any], str]
    #: Payload keys measured from wall clock, stripped from artifacts.
    volatile: frozenset[str] = frozenset()
    #: Work-unit descriptors for parallel execution (None = one unit).
    shards: Callable[[ExperimentScale], list[Any]] | None = None
    #: Run one shard: ``(scale, child_seed, cache, shard) -> partial``.
    run_shard: (
        Callable[[ExperimentScale, int, DiskCache | None, Any], Any] | None
    ) = None
    #: Reassemble shard partials (in shard order) into the result.
    combine: Callable[[list[Any]], Any] | None = None


def _spec(
    name: str,
    run: Callable[..., Any],
    to_dict: Callable[[Any], dict[str, Any]],
    from_dict: Callable[[dict[str, Any]], Any],
    render: Callable[[Any], str],
    seed_group: str | None = None,
    volatile: frozenset[str] = frozenset(),
    shards: Callable[[ExperimentScale], list[Any]] | None = None,
    run_shard: Callable[..., Any] | None = None,
    combine: Callable[[list[Any]], Any] | None = None,
) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        seed_group=seed_group or name,
        run=run,
        to_dict=to_dict,
        from_dict=from_dict,
        render=render,
        volatile=volatile,
        shards=shards,
        run_shard=run_shard,
        combine=combine,
    )


def _table1_shards(scale: ExperimentScale) -> list[Any]:
    del scale
    return [
        (benchmark, binary)
        for benchmark in BENCHMARK_ORDER
        for binary in (False, True)
    ]


def _run_table1_shard(
    scale: ExperimentScale, seed: int, cache: DiskCache | None, shard: Any
) -> Any:
    benchmark, binary = shard
    return run_table1(
        benchmarks=(benchmark,),
        flavors=(binary,),
        scale=scale,
        seed=seed,
        cache=cache,
    )


def _combine_table1(parts: list[Any]) -> Any:
    # Shard order mirrors run_table1's benchmark-major loop, so
    # concatenating partials in shard order is the canonical row order.
    return [row for part in parts for row in part]


def _fig8_shards(scale: ExperimentScale) -> list[Any]:
    del scale
    return list(BENCHMARK_ORDER)


def _run_fig8_shard(
    scale: ExperimentScale, seed: int, cache: DiskCache | None, shard: Any
) -> Any:
    return run_fig8(benchmarks=(shard,), scale=scale, seed=seed, cache=cache)


def _combine_fig8(parts: list[Any]) -> Any:
    return Fig8Result(
        cells=tuple(cell for part in parts for cell in part.cells)
    )


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        _spec(
            "table1",
            lambda scale, seed, cache: run_table1(
                scale=scale, seed=seed, cache=cache
            ),
            table1_to_dict,
            table1_from_dict,
            render_table1,
            volatile=TABLE1_VOLATILE_FIELDS,
            shards=_table1_shards,
            run_shard=_run_table1_shard,
            combine=_combine_table1,
        ),
        _spec(
            "fig3",
            lambda scale, seed, cache: run_fig3(scale=scale, seed=seed),
            Fig3Result.to_dict,
            Fig3Result.from_dict,
            render_fig3,
        ),
        _spec(
            "fig5",
            lambda scale, seed, cache: run_fig5(
                scale=scale, seed=seed, cache=cache
            ),
            Fig56Result.to_dict,
            Fig56Result.from_dict,
            render_fig56,
            seed_group="fig56",
        ),
        _spec(
            "fig6",
            lambda scale, seed, cache: run_fig6(
                scale=scale, seed=seed, cache=cache
            ),
            Fig56Result.to_dict,
            Fig56Result.from_dict,
            render_fig56,
            seed_group="fig56",
        ),
        _spec(
            "fig7",
            lambda scale, seed, cache: run_fig7(),
            Fig7Result.to_dict,
            Fig7Result.from_dict,
            render_fig7,
        ),
        _spec(
            "fig8",
            lambda scale, seed, cache: run_fig8(
                scale=scale, seed=seed, cache=cache
            ),
            Fig8Result.to_dict,
            Fig8Result.from_dict,
            render_fig8,
            shards=_fig8_shards,
            run_shard=_run_fig8_shard,
            combine=_combine_fig8,
        ),
        _spec(
            "fig9",
            lambda scale, seed, cache: run_fig9(scale=scale, seed=seed),
            Fig9Result.to_dict,
            Fig9Result.from_dict,
            render_fig9,
        ),
        _spec(
            "ablations",
            lambda scale, seed, cache: run_ablations(scale=scale, seed=seed),
            AblationsResult.to_dict,
            AblationsResult.from_dict,
            AblationsResult.render,
            volatile=ABLATIONS_VOLATILE_FIELDS,
        ),
        _spec(
            "sweeps",
            lambda scale, seed, cache: run_sweeps(scale=scale, seed=seed),
            SweepsResult.to_dict,
            SweepsResult.from_dict,
            SweepsResult.render,
        ),
        # The arena is registered LAST on purpose: seed-group positions
        # are spawn keys, so appending (never inserting) keeps every
        # earlier experiment's child seed — and artifact bytes — intact.
        _spec(
            "arena",
            lambda scale, seed, cache: run_arena(
                scale=scale, seed=seed, cache=cache
            ),
            ArenaResult.to_dict,
            ArenaResult.from_dict,
            render_arena,
            volatile=ARENA_VOLATILE_FIELDS,
            shards=arena_shards,
            run_shard=run_arena_shard,
            combine=combine_arena,
        ),
    )
}

#: Seed groups in fixed registry order; a group's position is its
#: SeedSequence spawn key, so child seeds do not depend on which subset
#: of experiments a given invocation selects.
_SEED_GROUPS: tuple[str, ...] = tuple(
    dict.fromkeys(spec.seed_group for spec in EXPERIMENTS.values())
)


def child_seed(root_seed: int, name: str) -> int:
    """The derived seed experiment ``name`` consumes for root ``--seed``.

    Spawned from one :class:`numpy.random.SeedSequence` keyed by the
    experiment's seed-group position: deterministic given the root seed,
    statistically independent across groups, and identical regardless of
    ``--only`` subsets or ``--jobs`` settings.
    """
    group = EXPERIMENTS[name].seed_group
    spawn_key = _SEED_GROUPS.index(group)
    state = np.random.SeedSequence(
        root_seed, spawn_key=(spawn_key,)
    ).generate_state(2)
    return (int(state[0]) << 32 | int(state[1])) & 0x7FFF_FFFF_FFFF_FFFF


def normalize_names(raw: str | None) -> list[str]:
    """Parse ``--only``: strip segments, drop empties, dedupe in order.

    Raises :class:`KeyError` naming the unknown experiments (the CLI
    turns this into a usage error, exit code 2).
    """
    if raw is None:
        return list(EXPERIMENTS)
    names = [segment.strip() for segment in raw.split(",")]
    names = list(dict.fromkeys(n for n in names if n))
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {unknown}; available: {list(EXPERIMENTS)}"
        )
    return names


@dataclass(frozen=True)
class ExperimentOutcome:
    """One assembled experiment: the record plus its text rendering."""

    record: ExperimentRecord
    rendered: str


@dataclass(frozen=True)
class ShardOutcome:
    """What one worker hands back for one work unit."""

    partial: Any
    elapsed: float
    cache_hits: int
    cache_misses: int
    #: Finished trace spans as plain dicts — picklable, so they survive
    #: the spawn pool; filed under the manifest's volatile timing.
    spans: tuple = ()


def _execute_shard(
    name: str,
    shard: Any,
    scale: ExperimentScale,
    root_seed: int,
    cache_dir: str | None,
) -> ShardOutcome:
    """Run one work unit (in whatever process this is called from).

    The wall clock is measured inside the worker, around exactly this
    unit's computation on this core — reasoning-time numbers stay honest
    no matter how many sibling units run concurrently. Each unit also
    records a trace span (named ``<experiment>`` or
    ``<experiment>/<shard>``); spans travel back as dicts and end up in
    the manifest's volatile section only, never in artifacts.
    """
    spec = EXPERIMENTS[name]
    cache = DiskCache(cache_dir) if cache_dir else None
    seed = child_seed(root_seed, name)
    recorder = SpanRecorder()
    span_name = name if shard is None else f"{name}/{shard}"
    with Timer() as timer:
        with span(span_name, recorder):
            if shard is None:
                partial = spec.run(scale, seed, cache)
            else:
                partial = spec.run_shard(scale, seed, cache, shard)
    return ShardOutcome(
        partial=partial,
        elapsed=timer.elapsed,
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else 0,
        spans=tuple(recorder.drain()),
    )


def _assemble(
    name: str,
    scale: ExperimentScale,
    root_seed: int,
    shards: list[Any],
    outcomes: list[ShardOutcome],
) -> ExperimentOutcome:
    """Combine shard partials into the experiment's record + rendering.

    ``timing.elapsed_seconds`` is the sum of in-worker shard clocks —
    the serial-equivalent cost of the experiment, independent of how
    the units were scheduled.
    """
    spec = EXPERIMENTS[name]
    if shards == [None]:
        result = outcomes[0].partial
    else:
        result = spec.combine([o.partial for o in outcomes])
    rendered = spec.render(result)
    data, volatile = split_volatile(spec.to_dict(result), spec.volatile)
    timing: dict[str, Any] = {
        "elapsed_seconds": sum(o.elapsed for o in outcomes),
        "volatile": volatile,
        "cache": {
            "hits": sum(o.cache_hits for o in outcomes),
            "misses": sum(o.cache_misses for o in outcomes),
        },
        # Spans live under timing, which artifact_dict() excludes — so
        # tracing can stay always-on without touching artifact bytes.
        "spans": [s for o in outcomes for s in o.spans],
    }
    if shards != [None]:
        timing["shards"] = {
            str(s): o.elapsed for s, o in zip(shards, outcomes, strict=True)
        }
    record = ExperimentRecord(
        experiment=name,
        seed=root_seed,
        child_seed=child_seed(root_seed, name),
        scale=scale.to_dict(),
        data=data,
        timing=timing,
    )
    return ExperimentOutcome(record=record, rendered=rendered)


def _execute(
    name: str,
    scale: ExperimentScale,
    root_seed: int,
    cache_dir: str | None,
) -> ExperimentOutcome:
    """Run one whole experiment in this process (library/compat path)."""
    outcome = _execute_shard(name, None, scale, root_seed, cache_dir)
    return _assemble(name, scale, root_seed, [None], [outcome])


def run_experiments(
    names: list[str] | None = None,
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
    cache_dir: str | None = None,
) -> dict[str, str]:
    """Run the named experiments in-process (all when ``names`` is None).

    Library-facing convenience kept for compatibility: returns rendered
    text keyed by experiment name and raises :class:`KeyError` on
    unknown names. The CLI path goes through worker processes instead.
    """
    cfg = scale or active_scale()
    selected = normalize_names(",".join(names) if names else None)
    return {
        name: _execute(name, cfg, seed, cache_dir).rendered
        for name in selected
    }


def _pin_worker_blas_threads() -> None:
    """Single-thread the BLAS pools of spawned workers.

    Set before the executor starts so freshly spawned interpreters load
    numpy with one BLAS thread regardless of ``--jobs``: per-experiment
    numbers stay bitwise identical at every parallelism level, and N
    workers do not oversubscribe N cores with N x T BLAS threads.
    Explicit user settings win (``setdefault``).
    """
    for var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
        os.environ.setdefault(var, "1")


def _run_pool(
    pending: list[str],
    scale: ExperimentScale,
    seed: int,
    cache_dir: str | None,
    jobs: int,
) -> tuple[dict[str, ExperimentOutcome], dict[str, str]]:
    """Execute ``pending`` on a spawn-based process pool.

    Sharded experiments fan out one future per work unit so a single
    heavyweight experiment (Table 1 at full scale) cannot serialize the
    suite on its own. Returns ``(outcomes, errors)`` keyed by
    experiment name.
    """
    outcomes: dict[str, ExperimentOutcome] = {}
    errors: dict[str, str] = {}
    if not pending:
        return outcomes, errors
    shard_lists = {
        name: (
            EXPERIMENTS[name].shards(scale)
            if EXPERIMENTS[name].shards is not None
            else [None]
        )
        for name in pending
    }
    _pin_worker_blas_threads()
    units = sum(len(shards) for shards in shard_lists.values())
    workers = min(jobs, units)
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=get_context("spawn")
    ) as pool:
        futures = {
            name: [
                pool.submit(_execute_shard, name, shard, scale, seed, cache_dir)
                for shard in shard_lists[name]
            ]
            for name in pending
        }
        for name, shard_futures in futures.items():
            shard_outcomes: list[ShardOutcome] = []
            failure: str | None = None
            for future in shard_futures:
                try:
                    shard_outcomes.append(future.result())
                except Exception as exc:  # worker died or shard raised
                    failure = failure or f"{type(exc).__name__}: {exc}"
            if failure is not None:
                errors[name] = failure
                continue
            try:
                outcomes[name] = _assemble(
                    name, scale, seed, shard_lists[name], shard_outcomes
                )
            except Exception as exc:
                errors[name] = f"{type(exc).__name__}: {exc}"
    return outcomes, errors


def _write_manifest(
    out_dir: Path,
    scale: ExperimentScale,
    seed: int,
    jobs: int,
    statuses: dict[str, dict[str, Any]],
) -> Path:
    """Write the volatile run metadata next to the artifacts."""
    manifest = {
        "seed": seed,
        "jobs": jobs,
        "scale": scale.to_dict(),
        "env": environment_provenance(),
        "experiments": statuses,
    }
    path = out_dir / "manifest.json"
    path.write_text(canonical_json(manifest), encoding="utf-8")
    return path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the HDLock paper's tables and figures.",
    )
    parser.add_argument(
        "--only",
        default=None,
        help=f"comma-separated subset of {sorted(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="root suite seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to fan experiments out over (default 1)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        help="stdout format: paper-style text tables, canonical JSON, or "
        "flat CSV projections (see repro.experiments.csvfmt)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write per-experiment JSON artifacts + manifest.json here; "
        "re-runs skip artifacts that are already up to date",
    )
    parser.add_argument(
        "--cache",
        default=os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR),
        metavar="DIR",
        help="shared on-disk cache for datasets/trained models "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro-hdlock)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared on-disk cache",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (see module docstring for flags and exit codes)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        names = normalize_names(args.only)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    try:
        scale = active_scale()
    except ConfigurationError as exc:
        parser.error(str(exc))
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    cache_dir = None if args.no_cache else str(Path(args.cache).expanduser())
    out_dir = Path(args.out).expanduser() if args.out else None

    env = environment_provenance()
    expected_keys = {
        name: record_key(
            name, args.seed, child_seed(args.seed, name), scale.to_dict(), env
        )
        for name in names
    }

    # Resume: artifacts whose embedded key matches are already up to date.
    skipped: dict[str, Path] = {}
    if out_dir is not None:
        for name in names:
            path = out_dir / f"{name}.json"
            if artifact_up_to_date(path, expected_keys[name]):
                skipped[name] = path
    pending = [n for n in names if n not in skipped]

    outcomes, errors = _run_pool(
        pending, scale, args.seed, cache_dir, args.jobs
    )

    statuses: dict[str, dict[str, Any]] = {}
    for name in names:
        if name in skipped:
            statuses[name] = {"status": "skipped"}
        elif name in outcomes:
            statuses[name] = {
                "status": "run",
                "timing": outcomes[name].record.timing,
            }
        else:
            statuses[name] = {"status": "error", "error": errors[name]}

    # CSV consumes artifact *payloads*, identically for fresh records
    # and artifacts reloaded from a resume skip.
    payloads: dict[str, dict[str, Any]] = {}
    if args.format == "csv" or out_dir is not None:
        for name in names:
            if name in outcomes:
                payloads[name] = outcomes[name].record.data
            elif name in skipped:
                payloads[name] = load_artifact(skipped[name])["data"]

    if out_dir is not None:
        for outcome in outcomes.values():
            outcome.record.write_artifact(out_dir)
        if args.format == "csv":
            for name, data in payloads.items():
                path = out_dir / f"{name}.csv"
                path.write_text(render_csv(name, data), encoding="utf-8")
        _write_manifest(out_dir, scale, args.seed, args.jobs, statuses)

    if args.format == "json":
        documents = []
        for name in names:
            if name in outcomes:
                documents.append(outcomes[name].record.to_dict())
            elif name in skipped:
                documents.append(load_artifact(skipped[name]))
        print(  # reprolint: disable=RL007 -- the JSON document IS the CLI's product; stdout is the contract
            canonical_json(
                {
                    "seed": args.seed,
                    "jobs": args.jobs,
                    "scale": scale.to_dict(),
                    "experiments": statuses,
                    "records": documents,
                }
            ),
            end="",
        )
    elif args.format == "csv":
        for name in names:
            print(f"=== {name} ===")  # reprolint: disable=RL007 -- CSV-mode section header; stdout is the product
            if name in payloads:
                print(render_csv(name, payloads[name]), end="")  # reprolint: disable=RL007 -- the CSV projection IS the CLI's product
            else:
                print(f"[error: {errors[name]}]")  # reprolint: disable=RL007 -- in-band error marker in the rendered report
    else:
        print(f"[experiment scale: {scale.name}, D={scale.dim}]")  # reprolint: disable=RL007 -- text-mode report banner; stdout is the product
        for name in names:
            print()  # reprolint: disable=RL007 -- text-report section spacing
            print(f"=== {name} ===")  # reprolint: disable=RL007 -- text-mode section header; stdout is the product
            if name in skipped:
                print(f"[skipped: artifact up to date at {skipped[name]}]")  # reprolint: disable=RL007 -- in-band resume marker in the rendered report
            elif name in outcomes:
                print(outcomes[name].rendered)  # reprolint: disable=RL007 -- the paper-style table IS the CLI's product
            else:
                print(f"[error: {errors[name]}]")  # reprolint: disable=RL007 -- in-band error marker in the rendered report

    for name, message in errors.items():
        print(f"error: {name}: {message}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
