"""Command-line experiment runner.

Regenerates any subset of the paper's tables and figures as text::

    python -m repro.experiments.runner                 # everything, reduced
    python -m repro.experiments.runner --only fig3,fig9
    REPRO_FULL_SCALE=1 python -m repro.experiments.runner --only table1

Each experiment prints the same rows/series the paper reports, next to
the paper's reference values where the paper states them.
"""

from __future__ import annotations

import argparse
from typing import Callable

from repro.experiments.ablations import (
    layer_one_is_free,
    naive_attack_on_locked,
    pool_layer_synergy,
    render_ablations,
    single_layer_breakability,
    value_lock_leakage,
)
from repro.experiments.config import DEFAULT_SEED, ExperimentScale, active_scale
from repro.experiments.fig3 import render_fig3, run_fig3
from repro.experiments.fig56 import render_fig56, run_fig5, run_fig6
from repro.experiments.fig7 import render_fig7, run_fig7
from repro.experiments.fig8 import render_fig8, run_fig8
from repro.experiments.fig9 import render_fig9, run_fig9
from repro.experiments.sweeps import (
    margin_vs_features,
    recovery_vs_dim,
    render_sweeps,
)
from repro.experiments.table1 import render_table1, run_table1


def _run_table1(scale: ExperimentScale, seed: int) -> str:
    return render_table1(run_table1(scale=scale, seed=seed))


def _run_fig3(scale: ExperimentScale, seed: int) -> str:
    return render_fig3(run_fig3(scale=scale, seed=seed))


def _run_fig5(scale: ExperimentScale, seed: int) -> str:
    return render_fig56(run_fig5(scale=scale, seed=seed))


def _run_fig6(scale: ExperimentScale, seed: int) -> str:
    return render_fig56(run_fig6(scale=scale, seed=seed))


def _run_fig7(scale: ExperimentScale, seed: int) -> str:
    del scale, seed  # analytic
    return render_fig7(run_fig7())


def _run_fig8(scale: ExperimentScale, seed: int) -> str:
    return render_fig8(run_fig8(scale=scale, seed=seed))


def _run_fig9(scale: ExperimentScale, seed: int) -> str:
    return render_fig9(run_fig9(scale=scale, seed=seed))


def _run_ablations(scale: ExperimentScale, seed: int) -> str:
    return render_ablations(
        value_lock_leakage(seed=seed),
        layer_one_is_free(),
        pool_layer_synergy(),
        naive_attack_on_locked(scale=scale, seed=seed),
        single_layer_breakability(seed=seed),
    )


def _run_sweeps(scale: ExperimentScale, seed: int) -> str:
    del scale  # sweeps pick their own (N, D) grids
    return render_sweeps(
        recovery_vs_dim(seed=seed), margin_vs_features(seed=seed)
    )


EXPERIMENTS: dict[str, Callable[[ExperimentScale, int], str]] = {
    "table1": _run_table1,
    "fig3": _run_fig3,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "ablations": _run_ablations,
    "sweeps": _run_sweeps,
}


def run_experiments(
    names: list[str] | None = None,
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
) -> dict[str, str]:
    """Run the named experiments (all when ``names`` is None)."""
    cfg = scale or active_scale()
    selected = names or list(EXPERIMENTS)
    unknown = [n for n in selected if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {unknown}; available: {list(EXPERIMENTS)}"
        )
    return {name: EXPERIMENTS[name](cfg, seed) for name in selected}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the HDLock paper's tables and figures."
    )
    parser.add_argument(
        "--only",
        default=None,
        help=f"comma-separated subset of {sorted(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="experiment seed"
    )
    args = parser.parse_args(argv)
    names = args.only.split(",") if args.only else None
    scale = active_scale()
    print(f"[experiment scale: {scale.name}, D={scale.dim}]")
    for name, report in run_experiments(names, scale, args.seed).items():
        print()
        print(f"=== {name} ===")
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
