"""Parameter-sweep experiments beyond the paper's figures.

Two sweeps that quantify the operating envelope of the Sec. 3 attack:

* :func:`recovery_vs_dim` — feature-mapping recovery rate as ``D``
  shrinks relative to ``N``. The binary attack's margin is the gap
  between the sign-tie noise floor and the wrong-guess band; both are
  set by binomial concentration, so recovery degrades once ``D`` stops
  dominating ``N``. This is the quantitative version of the reduced-
  scale caveat in EXPERIMENTS.md (binary FACE at 98.8 %).
* :func:`margin_vs_features` — the Fig. 3 dip (correct-to-best-wrong
  separation) as the model widens at fixed ``D``: more features mean a
  larger bundle, a smaller per-constituent advantage
  (:mod:`repro.hv.capacity`), and a thinner margin.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.attack.pipeline import run_reasoning_attack, verify_mapping
from repro.attack.threat_model import expose_model
from repro.attack.value_extraction import extract_value_mapping
from repro.attack.feature_extraction import guess_distance_series
from repro.encoding.record import RecordEncoder
from repro.experiments.config import DEFAULT_SEED, ExperimentScale
from repro.utils.rng import derive_seed
from repro.utils.tables import render_table


@dataclass(frozen=True)
class RecoveryPoint:
    """Mapping-recovery quality of one (N, D) attack run."""

    n_features: int
    dim: int
    feature_accuracy: float
    value_accuracy: float
    median_margin: float


def recovery_vs_dim(
    dims: Sequence[int] = (256, 512, 1024, 2048),
    n_features: int = 96,
    levels: int = 8,
    binary: bool = True,
    seed: int = DEFAULT_SEED,
) -> list[RecoveryPoint]:
    """Attack one model per ``D`` and record recovery quality."""
    points = []
    for dim in dims:
        run_seed = derive_seed(seed, "recovery", dim)
        encoder = RecordEncoder.random(n_features, levels, dim, run_seed)
        surface, truth = expose_model(encoder, binary=binary, rng=run_seed)
        result = run_reasoning_attack(surface, run_seed)
        verdict = verify_mapping(result, truth)
        finite = result.feature.margins[np.isfinite(result.feature.margins)]
        points.append(
            RecoveryPoint(
                n_features=n_features,
                dim=dim,
                feature_accuracy=verdict.feature_accuracy,
                value_accuracy=verdict.value_accuracy,
                median_margin=float(np.median(finite)) if finite.size else 0.0,
            )
        )
    return points


@dataclass(frozen=True)
class MarginPoint:
    """Fig.-3-style separation of one (N, D) deployment."""

    n_features: int
    dim: int
    correct_distance: float
    best_wrong_distance: float

    @property
    def separation(self) -> float:
        """Best wrong minus correct; positive = dip present."""
        return self.best_wrong_distance - self.correct_distance


def margin_vs_features(
    feature_counts: Sequence[int] = (64, 128, 256, 512),
    dim: int = 2048,
    levels: int = 8,
    seed: int = DEFAULT_SEED,
) -> list[MarginPoint]:
    """Measure the guess-distance dip as the model widens at fixed D."""
    points = []
    for n in feature_counts:
        run_seed = derive_seed(seed, "margin", n)
        encoder = RecordEncoder.random(n, levels, dim, run_seed)
        surface, truth = expose_model(encoder, binary=True, rng=run_seed)
        value = extract_value_mapping(surface, run_seed)
        series = guess_distance_series(surface, value.level_order, feature=0)
        correct = truth.feature_assignment[0]
        wrong = np.delete(series, correct)
        points.append(
            MarginPoint(
                n_features=n,
                dim=dim,
                correct_distance=float(series[correct]),
                best_wrong_distance=float(wrong.min()),
            )
        )
    return points


@dataclass(frozen=True)
class SweepsResult:
    """Both operating-envelope sweeps, bundled for the runner."""

    recovery: list[RecoveryPoint]
    margins: list[MarginPoint]

    def to_dict(self) -> dict[str, Any]:
        """Stable artifact payload."""
        return {
            "recovery": [asdict(p) for p in self.recovery],
            "margins": [asdict(p) for p in self.margins],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepsResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            recovery=[RecoveryPoint(**p) for p in payload["recovery"]],
            margins=[MarginPoint(**p) for p in payload["margins"]],
        )

    def render(self) -> str:
        """Delegates to the two-table renderer."""
        return render_sweeps(self.recovery, self.margins)


def run_sweeps(
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
) -> SweepsResult:
    """Run both sweeps (they pick their own (N, D) grids)."""
    del scale
    return SweepsResult(
        recovery=recovery_vs_dim(seed=seed),
        margins=margin_vs_features(seed=seed),
    )


def render_sweeps(
    recovery: list[RecoveryPoint], margins: list[MarginPoint]
) -> str:
    """Text rendering of both sweeps."""
    table_a = render_table(
        ["D", "feature recovery", "value recovery", "median margin"],
        [
            (
                p.dim,
                f"{p.feature_accuracy:.1%}",
                f"{p.value_accuracy:.1%}",
                f"{p.median_margin:.4f}",
            )
            for p in recovery
        ],
        title=(
            f"Recovery vs dimensionality (binary, N={recovery[0].n_features})"
            if recovery
            else "Recovery vs dimensionality"
        ),
    )
    table_b = render_table(
        ["N", "correct score", "best wrong", "separation"],
        [
            (
                p.n_features,
                f"{p.correct_distance:.4f}",
                f"{p.best_wrong_distance:.4f}",
                f"{p.separation:.4f}",
            )
            for p in margins
        ],
        title=(
            f"Guess-dip margin vs model width (binary, D={margins[0].dim})"
            if margins
            else "Guess-dip margin vs model width"
        ),
    )
    return "\n\n".join([table_a, table_b])
