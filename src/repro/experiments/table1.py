"""Experiment Table 1: reasoning attack across the five benchmarks.

For every benchmark and both model flavors the paper reports three
numbers: the original model accuracy, the accuracy of the model
reconstructed from the stolen mapping (identical when the theft
succeeded), and the reasoning time. This module regenerates all of them
against the synthetic benchmark stand-ins and renders them side by side
with the paper's reference values.

Absolute times are hardware-bound (3.6 GHz i7 in the paper vs whatever
runs this); the shape conclusions — recovery with zero accuracy loss,
time scaling roughly with ``N^2 * D``, PAMAP orders of magnitude below
the rest — are scale-free.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import partial
from typing import Any, Mapping, Sequence

from repro.attack.pipeline import run_reasoning_attack, verify_mapping
from repro.attack.reconstruct import evaluate_theft
from repro.attack.threat_model import expose_model
from repro.data.benchmarks import BENCHMARK_ORDER, PAPER_REFERENCE, load_benchmark
from repro.encoding.record import RecordEncoder
from repro.experiments.cache import DiskCache, cached
from repro.experiments.config import DEFAULT_SEED, ExperimentScale, active_scale
from repro.model.train import train_model
from repro.utils.rng import derive_seed, resolve_rng
from repro.utils.tables import format_seconds, render_table

#: Payload fields derived from wall-clock measurement; the runner strips
#: them from the deterministic artifact (see ``records.split_volatile``).
TABLE1_VOLATILE_FIELDS = frozenset({"reasoning_seconds"})


@dataclass(frozen=True)
class Table1Row:
    """One (benchmark, flavor) cell group of Table 1."""

    benchmark: str
    binary: bool
    original_accuracy: float
    recovered_accuracy: float
    reasoning_seconds: float
    oracle_queries: int
    guesses: int
    mapping_exact: bool
    feature_mapping_accuracy: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready field dict."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Table1Row":
        """Rebuild a row; volatile timing fields default to 0.0."""
        fields = dict(payload)
        fields.setdefault("reasoning_seconds", 0.0)
        return cls(**fields)


def table1_to_dict(rows: Sequence[Table1Row]) -> dict[str, Any]:
    """Stable artifact payload for a Table 1 run."""
    return {"rows": [row.to_dict() for row in rows]}


def table1_from_dict(payload: Mapping[str, Any]) -> list[Table1Row]:
    """Inverse of :func:`table1_to_dict`."""
    return [Table1Row.from_dict(row) for row in payload["rows"]]


def run_table1(
    benchmarks: Sequence[str] = BENCHMARK_ORDER,
    flavors: Sequence[bool] = (False, True),
    scale: ExperimentScale | None = None,
    seed: int = DEFAULT_SEED,
    cache: DiskCache | None = None,
) -> list[Table1Row]:
    """Train, deploy, attack and reconstruct every requested model.

    ``flavors`` lists ``binary`` values; the paper's order is non-binary
    first. ``cache`` deduplicates the generated benchmark datasets; the
    attack itself is always run live so the reasoning times stay honest
    measurements of this machine.
    """
    cfg = scale or active_scale()
    rows: list[Table1Row] = []
    for name in benchmarks:
        dataset = cached(
            cache,
            ("dataset", name, seed, cfg.sample_scale),
            partial(
                load_benchmark, name, rng=seed, sample_scale=cfg.sample_scale
            ),
        )
        for binary in flavors:
            rng = resolve_rng(derive_seed(seed, name, binary))
            encoder = RecordEncoder.random(
                dataset.n_features, dataset.levels, cfg.dim, rng
            )
            training = train_model(
                encoder,
                dataset.train_x,
                dataset.train_y,
                n_classes=dataset.n_classes,
                binary=binary,
                retrain_epochs=cfg.retrain_epochs,
                rng=rng,
            )
            original_accuracy = training.model.score(
                dataset.test_x, dataset.test_y
            )
            surface, truth = expose_model(encoder, binary=binary, rng=rng)
            result = run_reasoning_attack(surface, rng)
            verdict = verify_mapping(result, truth)
            theft, _ = evaluate_theft(
                original_accuracy,
                surface,
                result,
                dataset,
                binary=binary,
                retrain_epochs=cfg.retrain_epochs,
                rng=rng,
            )
            rows.append(
                Table1Row(
                    benchmark=name,
                    binary=binary,
                    original_accuracy=theft.original_accuracy,
                    recovered_accuracy=theft.recovered_accuracy,
                    reasoning_seconds=result.total_seconds,
                    oracle_queries=result.total_queries,
                    guesses=result.total_guesses,
                    mapping_exact=verdict.exact,
                    feature_mapping_accuracy=verdict.feature_accuracy,
                )
            )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Paper-style rendering with reference columns."""
    sections = []
    for binary in (False, True):
        flavor_rows = [r for r in rows if r.binary == binary]
        if not flavor_rows:
            continue
        table_rows = []
        for r in flavor_rows:
            ref = PAPER_REFERENCE.get(r.benchmark)
            ref_acc = (
                (ref.binary_accuracy if binary else ref.nonbinary_accuracy)
                if ref
                else None
            )
            ref_time = (
                (
                    ref.binary_reasoning_seconds
                    if binary
                    else ref.nonbinary_reasoning_seconds
                )
                if ref
                else None
            )
            table_rows.append(
                (
                    r.benchmark.upper(),
                    f"{r.original_accuracy:.4f}",
                    f"{r.recovered_accuracy:.4f}",
                    format_seconds(r.reasoning_seconds),
                    f"{r.feature_mapping_accuracy * 100:.1f}%",
                    f"{ref_acc:.4f}" if ref_acc is not None else "-",
                    format_seconds(ref_time) if ref_time is not None else "-",
                )
            )
        flavor = "Binary" if binary else "Non-Binary"
        sections.append(
            render_table(
                [
                    "benchmark",
                    "orig acc",
                    "recovered acc",
                    "reasoning",
                    "map recovered",
                    "paper acc",
                    "paper time",
                ],
                table_rows,
                title=f"Table 1 — {flavor} HDC model",
            )
        )
    return "\n\n".join(sections)
