"""Cycle-accurate cost model of the FPGA encoder datapath (Fig. 9)."""

from repro.hardware.adder_tree import (
    accumulator_width_bits,
    adder_count,
    tree_depth,
    tree_latency_cycles,
)
from repro.hardware.datapath import (
    DEFAULT_ACCUMULATE_LANES,
    DEFAULT_BIND_LANES,
    DatapathConfig,
)
from repro.hardware.encoder_cost import (
    encoding_cycles,
    encoding_seconds,
    relative_encoding_time,
    relative_time_series,
)
from repro.hardware.inference_cost import (
    inference_cycles,
    relative_inference_time,
    similarity_cycles,
    throughput_samples_per_second,
)
from repro.hardware.memory_model import (
    BRAM36_BITS,
    MemoryBank,
    ModelFootprint,
    key_to_model_ratio,
    model_footprint,
)
from repro.hardware.pipeline import (
    EncoderSchedule,
    PipelineStage,
    encoder_stages,
    schedule_encoder,
)
from repro.hardware.report import (
    ResourceReport,
    estimate_resources,
    render_resource_table,
)

__all__ = [
    "DatapathConfig",
    "DEFAULT_ACCUMULATE_LANES",
    "DEFAULT_BIND_LANES",
    "tree_depth",
    "adder_count",
    "accumulator_width_bits",
    "tree_latency_cycles",
    "MemoryBank",
    "ModelFootprint",
    "model_footprint",
    "key_to_model_ratio",
    "BRAM36_BITS",
    "PipelineStage",
    "EncoderSchedule",
    "encoder_stages",
    "schedule_encoder",
    "encoding_cycles",
    "encoding_seconds",
    "relative_encoding_time",
    "relative_time_series",
    "similarity_cycles",
    "inference_cycles",
    "relative_inference_time",
    "throughput_samples_per_second",
    "ResourceReport",
    "estimate_resources",
    "render_resource_table",
]
