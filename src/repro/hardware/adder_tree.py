"""Segmented pipelined adder tree for the encoding accumulation.

The record encoder sums ``N`` bound hypervectors (Eq. 2). In hardware
this is a binary adder tree: ``N`` leaf inputs, ``ceil(log2 N)`` levels,
fully pipelined so it accepts one new segment per beat and only adds its
depth once as latency. The model exposes depth, adder count, and the
cycle accounting used by :mod:`repro.hardware.pipeline`.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def tree_depth(n_inputs: int) -> int:
    """Pipeline depth (levels) of a binary adder tree over ``n_inputs``."""
    if n_inputs < 1:
        raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
    return math.ceil(math.log2(n_inputs)) if n_inputs > 1 else 0


def adder_count(n_inputs: int) -> int:
    """Two-input adders in the tree (``n_inputs - 1`` for a binary tree)."""
    if n_inputs < 1:
        raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
    return n_inputs - 1


def accumulator_width_bits(n_inputs: int, input_bits: int = 2) -> int:
    """Bit width needed at the tree root to hold the worst-case sum.

    Bipolar products are 2-bit signed (+1/-1); every tree level adds one
    carry bit, so the root needs ``input_bits + depth`` bits.
    """
    if input_bits < 1:
        raise ConfigurationError(f"input_bits must be >= 1, got {input_bits}")
    return input_bits + tree_depth(n_inputs)


def tree_latency_cycles(n_inputs: int) -> int:
    """One-time pipeline latency contributed by the tree per sample.

    The tree is fully pipelined, so its depth appears once as fill
    latency rather than multiplying the per-feature beat count.
    """
    return tree_depth(n_inputs)
