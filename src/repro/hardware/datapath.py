"""Parameterized encoder datapath (the paper's FPGA stand-in).

Paper Fig. 9 measures HDLock's latency overhead in *clock cycles* on a
Xilinx Zynq UltraScale+ running the segmented, pipelined, tree-structured
HDC datapath of QuantHD [4]. No FPGA is available to this reproduction,
so :mod:`repro.hardware` models that datapath at cycle granularity:

* hypervectors stream through the datapath in *segments*; a functional
  unit with ``W`` lanes consumes ``ceil(D / W)`` beats per hypervector;
* the **accumulate path** (value-bind + segmented adder tree) is the
  wide, expensive unit — its lane count bounds encoding throughput;
* the **bind unit** is a cheap XOR array used only for the extra
  ``L - 1`` base-hypervector products HDLock introduces (Eq. 9);
* **permutation is free**: a circular rotation is a shifted BRAM read
  (see :mod:`repro.hardware.memory_model`), which is why a single-layer
  key costs no latency (paper Sec. 5.2).

The default lane widths are calibrated so the model reproduces the
paper's headline: +21 % encoding time at ``L = 2`` relative to the
unprotected baseline, growing linearly per additional layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Calibrated lane widths: ceil(10000/532) = 19 accumulate beats and
#: ceil(10000/2560) = 4 bind beats per feature give 23/19 = 1.21x at
#: L = 2, matching Fig. 9.
DEFAULT_ACCUMULATE_LANES = 532
DEFAULT_BIND_LANES = 2560


@dataclass(frozen=True)
class DatapathConfig:
    """Resource parameters of the modeled encoder datapath."""

    #: Lanes (dimensions/cycle) of the multiply-accumulate + tree path.
    accumulate_lanes: int = DEFAULT_ACCUMULATE_LANES
    #: Lanes (dimensions/cycle) of the XOR bind unit for key layers.
    bind_lanes: int = DEFAULT_BIND_LANES
    #: Concurrent hypervector fetch ports (feature + value by default).
    memory_ports: int = 2
    #: Cycles to fill the pipeline at the start of each sample.
    pipeline_fill: int = 8
    #: Modeled clock, used only to convert cycles to seconds.
    clock_mhz: float = 200.0

    def __post_init__(self) -> None:
        if self.accumulate_lanes < 1 or self.bind_lanes < 1:
            raise ConfigurationError(
                f"lane counts must be >= 1, got accumulate="
                f"{self.accumulate_lanes}, bind={self.bind_lanes}"
            )
        if self.memory_ports < 1:
            raise ConfigurationError(
                f"memory_ports must be >= 1, got {self.memory_ports}"
            )
        if self.pipeline_fill < 0:
            raise ConfigurationError(
                f"pipeline_fill must be >= 0, got {self.pipeline_fill}"
            )
        if self.clock_mhz <= 0:
            raise ConfigurationError(
                f"clock_mhz must be > 0, got {self.clock_mhz}"
            )

    def accumulate_beats(self, dim: int) -> int:
        """Beats for the accumulate path to stream one hypervector."""
        _check_dim(dim)
        return math.ceil(dim / self.accumulate_lanes)

    def bind_beats(self, dim: int) -> int:
        """Beats for the bind unit to stream one hypervector."""
        _check_dim(dim)
        return math.ceil(dim / self.bind_lanes)

    @property
    def cycle_seconds(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / (self.clock_mhz * 1e6)


def _check_dim(dim: int) -> None:
    if dim < 1:
        raise ConfigurationError(f"dim must be >= 1, got {dim}")
