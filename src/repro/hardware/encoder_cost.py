"""Top-level encoding-cost queries (the Fig. 9 producer).

All results are clock-cycle counts from the pipeline schedule; relative
encoding time is a cycle-count ratio exactly as the paper measures it
("clock cycles are utilized as the encoding time, so the relative
encoding time is the ratio of two clock-cycle measurements").
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.hardware.datapath import DatapathConfig
from repro.hardware.pipeline import schedule_encoder


def encoding_cycles(
    n_features: int,
    dim: int,
    layers: int,
    config: DatapathConfig | None = None,
) -> int:
    """Clock cycles to encode one sample at key depth ``layers``.

    ``layers = 0`` is the unprotected baseline encoder; ``layers = 1``
    differs only in reading its feature HV through a rotated (free)
    access, so both cost the same.
    """
    return schedule_encoder(n_features, dim, layers, config).cycles_per_sample


def encoding_seconds(
    n_features: int,
    dim: int,
    layers: int,
    config: DatapathConfig | None = None,
) -> float:
    """Wall-clock encoding latency at the modeled clock."""
    cfg = config or DatapathConfig()
    return encoding_cycles(n_features, dim, layers, cfg) * cfg.cycle_seconds


def relative_encoding_time(
    layers: int,
    n_features: int,
    dim: int,
    config: DatapathConfig | None = None,
    baseline_layers: int = 0,
) -> float:
    """Cycle ratio of an ``layers``-deep HDLock encoder to the baseline.

    This is Fig. 9's y-axis. With default calibration: 1.0 at ``L = 1``
    (free permutation) and ~1.21 at ``L = 2``, then linear.
    """
    cfg = config or DatapathConfig()
    locked = encoding_cycles(n_features, dim, layers, cfg)
    baseline = encoding_cycles(n_features, dim, baseline_layers, cfg)
    return locked / baseline


def relative_time_series(
    layer_range: Iterable[int],
    shapes: Mapping[str, int],
    dim: int,
    config: DatapathConfig | None = None,
) -> dict[str, list[tuple[int, float]]]:
    """Fig. 9 curves: relative encoding time vs ``L`` per benchmark.

    ``shapes`` maps benchmark name to its feature count ``N``. The
    curves nearly coincide across datasets — the per-feature beat ratio
    dominates and is ``N``-independent, reproducing the paper's
    observation that overhead growth "is independent of the dataset
    scale".
    """
    layer_list = list(layer_range)
    return {
        name: [
            (layers, relative_encoding_time(layers, n_features, dim, config))
            for layers in layer_list
        ]
        for name, n_features in shapes.items()
    }
