"""End-to-end inference cost: encoding plus associative search.

Fig. 9 isolates the *encoding* overhead because that is the only stage
HDLock changes. This module extends the cycle model with the remaining
inference stage — similarity search against the ``C`` class
hypervectors — so the defender can see HDLock's overhead in end-to-end
terms: the associative stage is ``C / N`` of the encoding work, so the
relative inference overhead is strictly smaller than the relative
encoding overhead (and dilutes further for few-feature models).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hardware.adder_tree import tree_latency_cycles
from repro.hardware.datapath import DatapathConfig
from repro.hardware.encoder_cost import encoding_cycles


def similarity_cycles(
    n_classes: int,
    dim: int,
    config: DatapathConfig | None = None,
) -> int:
    """Cycles for the associative-memory stage of one query.

    Each class comparison streams the query against one stored class HV
    through the same wide lanes used for accumulation (XOR + popcount
    for the binary model, multiply-accumulate for the non-binary one);
    the ``C`` comparisons pipeline back to back, and the winner-take-all
    compare tree adds its depth once.
    """
    if n_classes < 2:
        raise ConfigurationError(f"need at least 2 classes, got {n_classes}")
    cfg = config or DatapathConfig()
    beats_per_class = cfg.accumulate_beats(dim)
    return n_classes * beats_per_class + tree_latency_cycles(n_classes)


def inference_cycles(
    n_features: int,
    dim: int,
    n_classes: int,
    layers: int,
    config: DatapathConfig | None = None,
) -> int:
    """Total cycles to classify one sample (encode + search)."""
    return encoding_cycles(n_features, dim, layers, config) + similarity_cycles(
        n_classes, dim, config
    )


def relative_inference_time(
    layers: int,
    n_features: int,
    dim: int,
    n_classes: int,
    config: DatapathConfig | None = None,
) -> float:
    """End-to-end analog of Fig. 9's relative *encoding* time.

    Always at most the relative encoding time: the similarity stage is
    HDLock-independent, so it dilutes the overhead by a factor
    ``encode / (encode + search)``.
    """
    locked = inference_cycles(n_features, dim, n_classes, layers, config)
    baseline = inference_cycles(n_features, dim, n_classes, 0, config)
    return locked / baseline


def throughput_samples_per_second(
    n_features: int,
    dim: int,
    n_classes: int,
    layers: int,
    config: DatapathConfig | None = None,
) -> float:
    """Modeled classification throughput at the configured clock."""
    cfg = config or DatapathConfig()
    cycles = inference_cycles(n_features, dim, n_classes, layers, cfg)
    return 1.0 / (cycles * cfg.cycle_seconds)
