"""On-chip memory model: BRAM banks, free rotations, footprint accounting.

Two facts from the paper live here:

* **permutation is a shifted memory access** (Sec. 5.2): reading a
  circularly rotated hypervector from a banked memory only changes the
  read address offset, so ``rho_k`` costs zero extra cycles — this is
  why single-layer HDLock has no latency overhead;
* **the mapping is the only thing that fits in secure memory**
  (Sec. 3.1): hypervector memories are megabyte-scale while the index
  mapping / HDLock key is kilobit-scale. :func:`model_footprint` and
  :func:`key_to_model_ratio` quantify that gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory.key import LockKey

#: Usable bits of one Xilinx BRAM36 block.
BRAM36_BITS = 36 * 1024


@dataclass(frozen=True)
class MemoryBank:
    """One banked hypervector store with rotate-on-read addressing."""

    name: str
    rows: int
    dim: int
    width_bits: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.dim < 1 or self.width_bits < 1:
            raise ConfigurationError(f"degenerate memory bank: {self}")

    @property
    def words_per_row(self) -> int:
        """Memory words occupied by one (bit-packed bipolar) hypervector."""
        return math.ceil(self.dim / self.width_bits)

    @property
    def total_bits(self) -> int:
        """Total storage of the bank in bits (1 bit per dimension)."""
        return self.rows * self.dim

    @property
    def bram36_blocks(self) -> int:
        """BRAM36 blocks needed to hold this bank."""
        return math.ceil(self.total_bits / BRAM36_BITS)

    def read_cycles(self, rotation: int = 0) -> int:
        """Cycles to issue a (possibly rotated) row read.

        Rotation only re-bases the word address and barrel-shifts within
        the word — combinational, so the cost is the same one issue cycle
        regardless of ``rotation``. The argument is validated but does
        not change the result; that *is* the model.
        """
        if not 0 <= rotation < self.dim:
            raise ConfigurationError(
                f"rotation {rotation} outside [0, {self.dim})"
            )
        return 1


@dataclass(frozen=True)
class ModelFootprint:
    """Bit-packed storage of a deployed HDC model's memories."""

    feature_bits: int
    value_bits: int
    class_bits: int

    @property
    def total_bits(self) -> int:
        """Total hypervector storage in bits."""
        return self.feature_bits + self.value_bits + self.class_bits

    @property
    def total_bytes(self) -> int:
        """Total hypervector storage in bytes."""
        return math.ceil(self.total_bits / 8)


def model_footprint(
    n_features: int,
    levels: int,
    dim: int,
    n_classes: int,
    class_bits_per_dim: int = 1,
) -> ModelFootprint:
    """Storage of feature/value/class memories (binary model by default).

    Non-binary class memories store multi-bit accumulators; pass e.g.
    ``class_bits_per_dim=16`` for that variant.
    """
    if min(n_features, levels, dim, n_classes, class_bits_per_dim) < 1:
        raise ConfigurationError("all footprint parameters must be >= 1")
    return ModelFootprint(
        feature_bits=n_features * dim,
        value_bits=levels * dim,
        class_bits=n_classes * dim * class_bits_per_dim,
    )


def key_to_model_ratio(key: LockKey, footprint: ModelFootprint) -> float:
    """Secure-memory demand of the key relative to the full model.

    Paper-scale MNIST (N=784, M=16, D=10k, C=10, L=2): key ~= 37 kbit vs
    model ~= 8 Mbit — two to three orders of magnitude, which is the
    threat model's premise that only the mapping fits in secure storage.
    """
    return key.storage_bits() / float(footprint.total_bits)
