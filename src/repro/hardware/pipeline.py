"""Cycle schedule of the (locked) encoder pipeline.

Per feature, the datapath must:

1. fetch the ``L`` base hypervectors (rotations are free shifted reads)
   and the value hypervector — hidden behind compute by the memory
   ports for realistic port counts;
2. run ``L - 1`` bind passes through the XOR unit to materialize
   ``FeaHV_i`` (Eq. 9) — this is HDLock's only added work;
3. stream the value-bind + adder-tree accumulate pass.

The bind unit and the accumulate path share the feature's hypervector
stream, so their beats add per feature (they cannot overlap for the
*same* feature; across features the pipeline keeps every unit busy,
which the fill latency accounts for). An unprotected encoder and a
single-layer key both skip step 2 entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.adder_tree import tree_latency_cycles
from repro.hardware.datapath import DatapathConfig


@dataclass(frozen=True)
class PipelineStage:
    """One stage of the per-feature schedule."""

    name: str
    beats: int
    note: str


@dataclass(frozen=True)
class EncoderSchedule:
    """Cycle accounting of one encoded sample."""

    stages: tuple[PipelineStage, ...]
    beats_per_feature: int
    fill_cycles: int
    n_features: int

    @property
    def cycles_per_sample(self) -> int:
        """Total cycles to encode one sample."""
        return self.fill_cycles + self.n_features * self.beats_per_feature


def encoder_stages(
    dim: int, layers: int, config: DatapathConfig
) -> tuple[PipelineStage, ...]:
    """Per-feature stages for a key depth of ``layers`` (0 = unlocked)."""
    if layers < 0:
        raise ConfigurationError(f"layers must be >= 0, got {layers}")
    stages = [
        PipelineStage(
            name="fetch",
            beats=0,
            note=(
                "base/value reads stream through "
                f"{config.memory_ports} ports behind compute; rotations "
                "are shifted reads (free)"
            ),
        )
    ]
    extra_binds = max(layers - 1, 0)
    if extra_binds:
        stages.append(
            PipelineStage(
                name="bind",
                beats=extra_binds * config.bind_beats(dim),
                note=f"{extra_binds} XOR pass(es) deriving FeaHV (Eq. 9)",
            )
        )
    stages.append(
        PipelineStage(
            name="accumulate",
            beats=config.accumulate_beats(dim),
            note="value bind + segmented adder tree (Eq. 2)",
        )
    )
    return tuple(stages)


def schedule_encoder(
    n_features: int,
    dim: int,
    layers: int,
    config: DatapathConfig | None = None,
) -> EncoderSchedule:
    """Build the cycle schedule for one encoded sample."""
    if n_features < 1:
        raise ConfigurationError(f"n_features must be >= 1, got {n_features}")
    cfg = config or DatapathConfig()
    stages = encoder_stages(dim, layers, cfg)
    beats = sum(stage.beats for stage in stages)
    fill = cfg.pipeline_fill + tree_latency_cycles(n_features)
    return EncoderSchedule(
        stages=stages,
        beats_per_feature=beats,
        fill_cycles=fill,
        n_features=n_features,
    )
