"""Resource and latency reporting for the modeled datapath.

Estimates are deliberately coarse (LUT-per-lane constants, not synthesis
results) — their role is to expose *relative* costs: how the bind unit,
accumulate path and memories scale with ``(D, L, N)``, and that HDLock's
added logic is a small fraction of the baseline encoder. Constants are
documented so anyone recalibrating against a real synthesis run can
adjust them in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.adder_tree import accumulator_width_bits, adder_count
from repro.hardware.datapath import DatapathConfig
from repro.hardware.memory_model import MemoryBank
from repro.utils.tables import render_table

#: LUTs per XOR bind lane (2-input XOR plus routing margin).
LUTS_PER_BIND_LANE = 1.0
#: LUTs per accumulate lane: value bind (1), popcount compressor slice
#: (~6) and the lane's share of tree adders and accumulators (~5).
LUTS_PER_ACCUMULATE_LANE = 12.0
#: LUTs per adder-tree node bit.
LUTS_PER_TREE_BIT = 1.0


@dataclass(frozen=True)
class ResourceReport:
    """Estimated logic and memory usage of one encoder configuration."""

    layers: int
    bind_luts: int
    accumulate_luts: int
    tree_luts: int
    bram36_blocks: int

    @property
    def total_luts(self) -> int:
        """Total estimated LUTs."""
        return self.bind_luts + self.accumulate_luts + self.tree_luts


def estimate_resources(
    n_features: int,
    levels: int,
    dim: int,
    layers: int,
    config: DatapathConfig | None = None,
) -> ResourceReport:
    """Estimate the logic/BRAM of a (locked) encoder instance."""
    cfg = config or DatapathConfig()
    needs_bind_unit = layers >= 2
    bind_luts = int(cfg.bind_lanes * LUTS_PER_BIND_LANE) if needs_bind_unit else 0
    accumulate_luts = int(cfg.accumulate_lanes * LUTS_PER_ACCUMULATE_LANE)
    # The tree spans the accumulate lanes; each lane feeds a tree over
    # the feature dimension with widening accumulators.
    tree_bits = adder_count(n_features) * accumulator_width_bits(n_features)
    tree_luts = int(
        LUTS_PER_TREE_BIT * tree_bits * cfg.accumulate_lanes / max(dim, 1)
    )
    pool_rows = n_features if layers == 0 else max(n_features, 1)
    banks = [
        MemoryBank("base-or-feature", pool_rows, dim, width_bits=cfg.bind_lanes),
        MemoryBank("value", levels, dim, width_bits=cfg.bind_lanes),
    ]
    return ResourceReport(
        layers=layers,
        bind_luts=bind_luts,
        accumulate_luts=accumulate_luts,
        tree_luts=tree_luts,
        bram36_blocks=sum(bank.bram36_blocks for bank in banks),
    )


def render_resource_table(reports: list[ResourceReport]) -> str:
    """ASCII table comparing resource estimates across key depths."""
    rows = [
        (
            r.layers,
            r.bind_luts,
            r.accumulate_luts,
            r.tree_luts,
            r.total_luts,
            r.bram36_blocks,
        )
        for r in reports
    ]
    return render_table(
        ["L", "bind LUTs", "acc LUTs", "tree LUTs", "total LUTs", "BRAM36"],
        rows,
        title="Estimated encoder resources vs key depth",
    )
