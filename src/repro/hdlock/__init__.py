"""HDLock: the paper's defense — privileged (keyed) feature encoding."""

from repro.hdlock.analysis import (
    TradeoffRow,
    recommend_layers,
    render_tradeoff_table,
    security_level_bits,
    tradeoff_table,
)
from repro.hdlock.feature_factory import derive_feature_hv, derive_feature_matrix
from repro.hdlock.keygen import generate_key, identity_like_key
from repro.hdlock.lock import (
    LockedSystem,
    create_locked_encoder,
    lock_encoder,
    lock_model,
)
from repro.hdlock.provisioning import (
    BundleManifest,
    load_key,
    load_public_bundle,
    restore_encoder,
    save_key,
    save_public_bundle,
)

__all__ = [
    "generate_key",
    "identity_like_key",
    "derive_feature_hv",
    "derive_feature_matrix",
    "LockedSystem",
    "create_locked_encoder",
    "lock_encoder",
    "lock_model",
    "security_level_bits",
    "recommend_layers",
    "TradeoffRow",
    "tradeoff_table",
    "render_tradeoff_table",
    "BundleManifest",
    "save_public_bundle",
    "save_key",
    "load_public_bundle",
    "load_key",
    "restore_encoder",
]
