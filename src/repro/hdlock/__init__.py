"""HDLock: the paper's defense — privileged (keyed) feature encoding.

Beyond the single-model lock/analysis API, this package carries the
fleet key lifecycle: vectorized bulk keygen (:func:`generate_keys`),
the packed memory-mapped :class:`~repro.hdlock.keystore.KeyStore` with
persistent revocation and in-place rotation, and the provisioning
helpers that keep public bundles and key material apart.
"""

from repro.hdlock.analysis import (
    TradeoffRow,
    recommend_layers,
    render_tradeoff_table,
    security_level_bits,
    tradeoff_table,
)
from repro.hdlock.feature_factory import derive_feature_hv, derive_feature_matrix
from repro.hdlock.keygen import generate_key, generate_keys, identity_like_key
from repro.hdlock.keystore import KeyStore
from repro.hdlock.lock import (
    LockedSystem,
    create_locked_encoder,
    lock_encoder,
    lock_model,
    rotate_system,
)
from repro.hdlock.provisioning import (
    BundleManifest,
    load_fleet_key,
    load_key,
    load_public_bundle,
    open_fleet_store,
    restore_device_encoder,
    restore_encoder,
    save_fleet_keys,
    save_key,
    save_public_bundle,
)

__all__ = [
    "generate_key",
    "generate_keys",
    "identity_like_key",
    "derive_feature_hv",
    "derive_feature_matrix",
    "LockedSystem",
    "create_locked_encoder",
    "lock_encoder",
    "lock_model",
    "rotate_system",
    "security_level_bits",
    "recommend_layers",
    "TradeoffRow",
    "tradeoff_table",
    "render_tradeoff_table",
    "BundleManifest",
    "KeyStore",
    "save_public_bundle",
    "save_key",
    "save_fleet_keys",
    "load_public_bundle",
    "load_key",
    "load_fleet_key",
    "open_fleet_store",
    "restore_encoder",
    "restore_device_encoder",
]
