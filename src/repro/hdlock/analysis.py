"""Security / overhead trade-off analysis for HDLock parameters.

The defender chooses ``L`` (key depth) and ``P`` (pool size) under a
latency budget (Fig. 9) and a security target (Fig. 7). This module
connects the two models: guess-count formulas from
:mod:`repro.attack.complexity` and cycle counts from
:mod:`repro.hardware.encoder_cost`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.attack.complexity import (
    hdlock_guesses_per_feature,
    hdlock_total_guesses,
    security_improvement,
)
from repro.errors import ConfigurationError
from repro.hardware.datapath import DatapathConfig
from repro.hardware.encoder_cost import relative_encoding_time
from repro.utils.tables import format_quantity, render_table


def security_level_bits(
    n_features: int, dim: int, pool_size: int, layers: int
) -> float:
    """log2 of the total reasoning guesses — a key-strength style metric.

    The paper's MNIST two-layer configuration lands at ~55 bits.
    """
    return math.log2(hdlock_total_guesses(n_features, dim, pool_size, layers))


def recommend_layers(
    target_guesses: float,
    n_features: int,
    dim: int,
    pool_size: int,
    max_layers: int = 16,
) -> int:
    """Smallest ``L`` whose total guess count reaches ``target_guesses``.

    Raises when even ``max_layers`` falls short (degenerate pool/dim).
    """
    if target_guesses <= 0:
        raise ConfigurationError(
            f"target_guesses must be > 0, got {target_guesses}"
        )
    for layers in range(1, max_layers + 1):
        if hdlock_total_guesses(n_features, dim, pool_size, layers) >= target_guesses:
            return layers
    raise ConfigurationError(
        f"no key depth up to {max_layers} reaches {target_guesses:.2e} guesses "
        f"with D={dim}, P={pool_size}"
    )


@dataclass(frozen=True)
class TradeoffRow:
    """One (L, security, latency) point of the design space."""

    layers: int
    guesses_per_feature: int
    total_guesses: int
    security_bits: float
    improvement_over_plain: float
    relative_encoding_time: float


def tradeoff_table(
    n_features: int,
    dim: int,
    pool_size: int,
    layer_range: Iterable[int] = (1, 2, 3, 4, 5),
    config: DatapathConfig | None = None,
) -> list[TradeoffRow]:
    """Enumerate the security/latency trade-off across key depths.

    This is the quantitative version of the paper's Sec. 5.2 discussion
    ("there exists trade-off while choosing the number of layers L").
    """
    rows = []
    for layers in layer_range:
        rows.append(
            TradeoffRow(
                layers=layers,
                guesses_per_feature=hdlock_guesses_per_feature(
                    dim, pool_size, layers
                ),
                total_guesses=hdlock_total_guesses(
                    n_features, dim, pool_size, layers
                ),
                security_bits=security_level_bits(
                    n_features, dim, pool_size, layers
                ),
                improvement_over_plain=security_improvement(
                    n_features, dim, pool_size, layers
                ),
                relative_encoding_time=relative_encoding_time(
                    layers, n_features, dim, config
                ),
            )
        )
    return rows


def render_tradeoff_table(rows: list[TradeoffRow]) -> str:
    """ASCII rendering of :func:`tradeoff_table`."""
    table_rows = [
        (
            r.layers,
            format_quantity(float(r.guesses_per_feature)),
            format_quantity(float(r.total_guesses)),
            f"{r.security_bits:.1f}",
            format_quantity(r.improvement_over_plain),
            f"{r.relative_encoding_time:.2f}x",
        )
        for r in rows
    ]
    return render_table(
        [
            "L",
            "guesses/feature",
            "total guesses",
            "bits",
            "vs plain",
            "rel. time",
        ],
        table_rows,
        title="HDLock security vs latency trade-off",
    )
