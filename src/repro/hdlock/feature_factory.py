"""Derivation of locked feature hypervectors from a base pool and a key.

This implements Eq. 9 of the paper::

    FeaHV_i = prod_{l=1..L} rho^{k_{i,l}}(B_{i,l})

The base pool ``B`` lives in public memory; the per-feature indices and
rotation amounts come from the :class:`~repro.memory.key.LockKey` in
secure memory. Because rotation of a random bipolar HV yields another
(quasi-independent) random bipolar HV, and binding preserves
quasi-orthogonality, the derived feature hypervectors behave statistically
exactly like freshly drawn orthogonal feature HVs — which is why HDLock
costs no accuracy (paper Fig. 8).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError, KeyFormatError
from repro.hv.ops import BIPOLAR_DTYPE, bind_many, permute, permute_rows
from repro.memory.key import LockKey, SubKey


def derive_feature_hv(pool: np.ndarray, subkey: SubKey) -> np.ndarray:
    """Derive the feature hypervector of a single feature.

    ``pool`` is the ``(P, D)`` base matrix; the result is the bound
    product of the subkey's ``L`` rotated base HVs.
    """
    mat = np.asarray(pool)
    layers = [permute(mat[index], rotation) for index, rotation in subkey.pairs()]
    return bind_many(np.stack(layers))


def derive_feature_matrix(pool: np.ndarray, key: LockKey) -> np.ndarray:
    """Derive all ``N`` locked feature hypervectors at once.

    Vectorized layer by layer: gather the selected base rows, rotate each
    row by its own amount, and multiply the ``L`` layer matrices
    element-wise. Returns an ``(N, D)`` bipolar matrix laid out exactly
    like a plain :class:`~repro.memory.item_memory.FeatureMemory`.
    """
    mat = np.asarray(pool)
    if mat.ndim != 2:
        raise DimensionMismatchError(f"base pool must be (P, D), got {mat.shape}")
    if mat.shape[0] < key.pool_size or mat.shape[1] != key.dim:
        raise KeyFormatError(
            f"key expects pool >= {key.pool_size} x {key.dim}, got {mat.shape}"
        )
    indices, rotations = key.to_arrays()
    product = np.ones((key.n_features, key.dim), dtype=BIPOLAR_DTYPE)
    for step in range(key.layers):
        layer = permute_rows(mat[indices[:, step]], rotations[:, step])
        product = np.multiply(product, layer, dtype=BIPOLAR_DTYPE)
    return product
