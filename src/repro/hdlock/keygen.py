"""HDLock key generation.

A key assigns every feature ``L`` (base index, rotation) pairs drawn
uniformly from ``[0, P) x [0, D)``. Two constraints beyond uniformity:

* within one subkey, the ``L`` (index, rotation) pairs must be distinct —
  a repeated pair would bind a hypervector with itself and cancel to the
  all-ones vector, degenerating the product;
* across features, whole subkeys must be distinct, otherwise two features
  would share one derived hypervector and become indistinguishable to the
  encoder.

Both events are vanishingly rare for paper-scale ``P * D`` but cheap to
rule out, so the generator enforces them.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.memory.key import LockKey, SubKey
from repro.utils.rng import SeedLike, resolve_rng


def generate_key(
    n_features: int,
    layers: int,
    pool_size: int,
    dim: int,
    rng: SeedLike = None,
) -> LockKey:
    """Draw a uniform random HDLock key.

    ``layers`` is the paper's ``L`` (key depth), ``pool_size`` its ``P``.
    Raises :class:`ConfigurationError` when the requested key space is
    too small to satisfy the distinctness constraints (e.g. more layers
    than available pairs).
    """
    if n_features < 1:
        raise ConfigurationError(f"n_features must be >= 1, got {n_features}")
    if layers < 1:
        raise ConfigurationError(f"layers must be >= 1, got {layers}")
    if pool_size < 1 or dim < 1:
        raise ConfigurationError(
            f"pool_size and dim must be >= 1, got {pool_size} and {dim}"
        )
    pair_space = pool_size * dim
    if layers > pair_space:
        raise ConfigurationError(
            f"cannot pick {layers} distinct (index, rotation) pairs from a "
            f"space of {pair_space}"
        )
    # Distinct-subkey feasibility: each subkey is a size-`layers` subset
    # of the pair space, so at most C(pair_space, layers) distinct
    # subkeys exist. Detect infeasible requests up front instead of
    # letting rejection sampling spin forever on degenerate toy sizes.
    if math.comb(pair_space, layers) < n_features:
        raise ConfigurationError(
            f"only {math.comb(pair_space, layers)} distinct subkeys exist "
            f"for P={pool_size}, D={dim}, L={layers}; cannot key "
            f"{n_features} features"
        )

    gen = resolve_rng(rng)
    seen_subkeys: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
    subkeys: list[SubKey] = []
    # Rejection sampling: collisions are (layers^2 / pair_space)-rare, so
    # the expected number of retries is negligible at any realistic size.
    while len(subkeys) < n_features:
        pairs: set[tuple[int, int]] = set()
        while len(pairs) < layers:
            index = int(gen.integers(0, pool_size))
            rotation = int(gen.integers(0, dim))
            pairs.add((index, rotation))
        ordered = tuple(sorted(pairs))
        indices = tuple(p[0] for p in ordered)
        rotations = tuple(p[1] for p in ordered)
        fingerprint = (indices, rotations)
        if fingerprint in seen_subkeys:
            continue
        seen_subkeys.add(fingerprint)
        subkeys.append(SubKey(indices, rotations))
    return LockKey(subkeys, pool_size=pool_size, dim=dim)


def identity_like_key(n_features: int, dim: int, rng: SeedLike = None) -> LockKey:
    """A single-layer key over a pool of size ``N`` with random rotations.

    This is the paper's ``L = 1`` configuration (footnote 2: with
    ``P = N`` the bases can serve directly as the unprotected feature
    HVs). Rotation is a shifted memory read, so this layer costs no
    latency yet already multiplies attack complexity by ``D * P / N``.
    """
    gen = resolve_rng(rng)
    perm = gen.permutation(n_features)
    subkeys = [
        SubKey((int(perm[i]),), (int(gen.integers(0, dim)),))
        for i in range(n_features)
    ]
    return LockKey(subkeys, pool_size=n_features, dim=dim)
