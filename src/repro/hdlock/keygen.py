"""HDLock key generation — single keys and fleet-scale bulk batches.

A key assigns every feature ``L`` (base index, rotation) pairs drawn
uniformly from ``[0, P) x [0, D)``. Two constraints beyond uniformity:

* within one subkey, the ``L`` (index, rotation) pairs must be distinct —
  a repeated pair would bind a hypervector with itself and cancel to the
  all-ones vector, degenerating the product;
* across features, whole subkeys must be distinct, otherwise two features
  would share one derived hypervector and become indistinguishable to the
  encoder.

Both events are vanishingly rare for paper-scale ``P * D`` but cheap to
rule out, so the generator enforces them.

The workhorse is :func:`generate_keys`: it draws all
``(n_devices, N, L)`` pairs in batched :meth:`numpy.random.Generator.
integers` calls (one 63-bit code ``index * D + rotation`` per pair) and
enforces both distinctness constraints with vectorized sort + compare
passes instead of per-pair Python loops — the difference between
minutes and milliseconds per thousand devices at fleet scale.
:func:`generate_key` is the single-device wrapper over the same core,
so ``generate_keys(1, ...)`` and ``generate_key(...)`` are identical
for identical seeds by construction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.key import KeyBatch, LockKey, SubKey
from repro.utils.rng import SeedLike, resolve_rng

__all__ = [
    "generate_key",
    "generate_key_reference",
    "generate_keys",
    "identity_like_key",
]


def _check_key_shape(
    n_features: int, layers: int, pool_size: int, dim: int
) -> int:
    """Validate a key shape; returns the (index, rotation) pair space."""
    if n_features < 1:
        raise ConfigurationError(f"n_features must be >= 1, got {n_features}")
    if layers < 1:
        raise ConfigurationError(f"layers must be >= 1, got {layers}")
    if pool_size < 1 or dim < 1:
        raise ConfigurationError(
            f"pool_size and dim must be >= 1, got {pool_size} and {dim}"
        )
    pair_space = pool_size * dim
    if pair_space > np.iinfo(np.int64).max:
        raise ConfigurationError(
            f"pair space P * D = {pair_space} exceeds the int64 code range"
        )
    if layers > pair_space:
        raise ConfigurationError(
            f"cannot pick {layers} distinct (index, rotation) pairs from a "
            f"space of {pair_space}"
        )
    # Distinct-subkey feasibility: each subkey is a size-`layers` subset
    # of the pair space, so at most C(pair_space, layers) distinct
    # subkeys exist. Detect infeasible requests up front instead of
    # letting rejection sampling spin forever on degenerate toy sizes.
    if math.comb(pair_space, layers) < n_features:
        raise ConfigurationError(
            f"only {math.comb(pair_space, layers)} distinct subkeys exist "
            f"for P={pool_size}, D={dim}, L={layers}; cannot key "
            f"{n_features} features"
        )
    return pair_space


def _code_dtype(pair_space: int) -> np.dtype:
    """Narrowest draw dtype covering codes in ``[0, pair_space)``.

    uint32 halves the memory traffic of the fleet-scale draw + sort
    whenever ``P * D`` fits (it always does for deployable models).
    """
    return np.dtype(np.uint32 if pair_space <= (1 << 32) else np.int64)


#: Element budget per dedup-scan chunk (~64 MB of uint64 scratch). The
#: scans deliberately stream through one small reusable buffer: GB-scale
#: *fresh* allocations pay a first-touch page-fault storm on constrained
#: hosts (observed 10-20 s per GB, dwarfing the arithmetic), while a
#: chunk-sized scratch is faulted in once and recycled thereafter.
_SCAN_CHUNK_ELEMENTS = 8 << 20


def _duplicate_rows(codes: np.ndarray) -> np.ndarray:
    """Row ids (leading axis) whose sorted codes repeat a value.

    Streamed in chunks so the comparison scratch stays small enough for
    the allocator to recycle (see ``_SCAN_CHUNK_ELEMENTS``).
    """
    rows, layers = codes.shape
    chunk = max(1, _SCAN_CHUNK_ELEMENTS // max(layers - 1, 1))
    hits: list[np.ndarray] = []
    for start in range(0, rows, chunk):
        block = codes[start : start + chunk]
        repeated = (block[:, 1:] == block[:, :-1]).any(axis=-1)
        found = np.nonzero(repeated)[0]
        if found.size:
            hits.append(found + start)
    if not hits:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(hits)


def _draw_sorted_subkeys(
    gen: np.random.Generator, count: int, layers: int, pair_space: int
) -> np.ndarray:
    """Draw ``(count, layers)`` sorted pair codes, distinct within a row.

    Rejection sampling on whole rows: a row with a repeated code is
    redrawn, which conditions the i.i.d. uniform draw on all-distinct —
    the resulting code *set* per row is uniform over size-``layers``
    subsets of the pair space, exactly the distribution of the original
    per-pair Python loop. Collisions are ``layers^2 / pair_space``-rare,
    so the expected number of passes is ~1 at any realistic size.
    """
    dtype = _code_dtype(pair_space)
    codes = gen.integers(0, pair_space, size=(count, layers), dtype=dtype)
    codes.sort(axis=-1)
    if layers == 1:
        return codes
    while True:
        bad = _duplicate_rows(codes)
        if bad.size == 0:
            return codes
        fresh = gen.integers(
            0, pair_space, size=(bad.size, layers), dtype=dtype
        )
        fresh.sort(axis=-1)
        codes[bad] = fresh


def _subkey_fingerprints(codes: np.ndarray, pair_space: int) -> np.ndarray:
    """One scalar per subkey such that equal rows get equal scalars.

    Three tiers, cheapest first. When a subkey's raw bytes fit one
    machine word, the fingerprint is a zero-copy byte *view* — equal
    rows have equal bytes, and the dedup scan only needs an equality
    grouping, not a meaningful order. When the ``L`` codes fit 63 bits
    the fingerprint is an exact bit-packing. Wider shapes fall back to
    an FNV-style 64-bit mix, where a *hash* equality only nominates a
    device for the exact per-device confirmation pass in
    :func:`_redraw_duplicate_subkeys` — duplicates can never be missed,
    spurious matches cost one cheap recheck.
    """
    layers = codes.shape[2]
    if layers == 1:
        return codes[:, :, 0]
    if layers * codes.dtype.itemsize == 8 and codes.flags.c_contiguous:
        return codes.view(np.uint64)[:, :, 0]
    bits = int(pair_space - 1).bit_length()
    if layers * bits <= 63:
        packed = codes[:, :, 0].astype(np.int64)
        for level in range(1, layers):
            packed = (packed << bits) | codes[:, :, level].astype(np.int64)
        return packed
    mixed = np.zeros(codes.shape[:2], dtype=np.uint64)
    for level in range(layers):
        mixed = (mixed * np.uint64(0x100000001B3)) ^ codes[:, :, level].astype(
            np.uint64
        )
    return mixed


def _redraw_duplicate_subkeys(
    gen: np.random.Generator,
    codes: np.ndarray,
    pair_space: int,
) -> None:
    """Make the ``N`` subkeys of every device pairwise distinct, in place.

    ``codes`` is ``(n_devices, N, L)`` with each subkey row already
    sorted. Each subkey collapses to a scalar fingerprint (zero-copy at
    fleet shapes), device chunks are copied into one warm scratch buffer
    and sorted in place along the feature axis, and an adjacent-equal
    compare flags devices with repeated fingerprints — only those rare
    devices pay an exact duplicate-position scan. Later occurrences are
    redrawn (first kept, mirroring the sequential rejection of the
    scalar reference) until every device is collision-free.
    """
    n_devices, n_features, layers = codes.shape
    chunk = max(1, _SCAN_CHUNK_ELEMENTS // n_features)
    scratch = np.empty((min(chunk, n_devices), n_features), dtype=np.uint64)
    while True:
        suspects: list[int] = []
        for start in range(0, n_devices, chunk):
            block = codes[start : start + chunk]
            ranked = scratch[: block.shape[0]]
            # unsafe cast: fingerprints are non-negative, and the scan
            # only groups equal values, so int64 -> uint64 is lossless
            np.copyto(
                ranked,
                _subkey_fingerprints(block, pair_space),
                casting="unsafe",
            )
            ranked.sort(axis=1)
            repeated = np.nonzero(
                (ranked[:, 1:] == ranked[:, :-1]).any(axis=1)
            )[0]
            suspects.extend((repeated + start).tolist())
        if not suspects:
            return
        bad_devices: list[int] = []
        bad_positions: list[int] = []
        for device in suspects:
            _, inverse = np.unique(codes[device], axis=0, return_inverse=True)
            seen: set[int] = set()
            for position, group in enumerate(inverse.tolist()):
                if group in seen:
                    bad_devices.append(device)
                    bad_positions.append(position)
                else:
                    seen.add(group)
        if not bad_devices:  # hash-collision nominees only, nothing real
            return
        codes[bad_devices, bad_positions] = _draw_sorted_subkeys(
            gen, len(bad_devices), layers, pair_space
        )


def generate_keys(
    n_devices: int,
    n_features: int,
    layers: int,
    pool_size: int,
    dim: int,
    rng: SeedLike = None,
) -> KeyBatch:
    """Draw uniform random HDLock keys for a whole device fleet at once.

    ``layers`` is the paper's ``L`` (key depth), ``pool_size`` its ``P``.
    All ``n_devices * N * L`` (index, rotation) pairs come from batched
    generator calls; both distinctness constraints (within-subkey pairs,
    across-feature subkeys) are enforced with vectorized sort + unique
    passes. Keys of *different* devices may collide — at fleet scale
    that probability is astronomically small; quantify it with
    :func:`repro.hv.capacity.fleet_key_report`.

    Raises :class:`ConfigurationError` when the requested key space is
    too small to satisfy the distinctness constraints (e.g. more layers
    than available pairs).
    """
    if n_devices < 1:
        raise ConfigurationError(f"n_devices must be >= 1, got {n_devices}")
    pair_space = _check_key_shape(n_features, layers, pool_size, dim)
    gen = resolve_rng(rng)
    codes = _draw_sorted_subkeys(
        gen, n_devices * n_features, layers, pair_space
    ).reshape(n_devices, n_features, layers)
    _redraw_duplicate_subkeys(gen, codes, pair_space)
    # int32 halves the resident fleet footprint; P and D are each far
    # below 2**31 for any deployable model (the pair *space* may not be,
    # which is why codes may need the wider draw dtype). The rotations
    # reuse the draw buffer in place — one fewer GB-scale first-touch
    # allocation at fleet scale.
    out_dtype = np.dtype(
        np.int32 if max(pool_size, dim) <= np.iinfo(np.int32).max else np.int64
    )
    divisor = codes.dtype.type(dim)
    indices = np.floor_divide(codes, divisor)
    np.remainder(codes, divisor, out=codes)
    rotations = codes
    if indices.dtype.itemsize == out_dtype.itemsize:
        # e.g. uint32 -> int32: values are < max(P, D) <= int32 max, so
        # the reinterpreting view is value-preserving and copy-free
        indices = indices.view(out_dtype)
        rotations = rotations.view(out_dtype)
    else:
        indices = indices.astype(out_dtype, copy=False)
        rotations = rotations.astype(out_dtype, copy=False)
    return KeyBatch(indices, rotations, pool_size=pool_size, dim=dim)


def generate_key(
    n_features: int,
    layers: int,
    pool_size: int,
    dim: int,
    rng: SeedLike = None,
) -> LockKey:
    """Draw a uniform random HDLock key for a single device.

    Thin wrapper over the vectorized bulk path: for identical seeds,
    ``generate_key(...)`` equals ``generate_keys(1, ...).key(0)`` bit
    for bit. Raises :class:`ConfigurationError` on infeasible shapes,
    same as :func:`generate_keys`.
    """
    return generate_keys(1, n_features, layers, pool_size, dim, rng).key(0)


def generate_key_reference(
    n_features: int,
    layers: int,
    pool_size: int,
    dim: int,
    rng: SeedLike = None,
) -> LockKey:
    """Per-pair scalar reference generator (the pre-vectorization loop).

    Retained as the behavioral baseline for the bulk path, mirroring
    ``encode_batch_reference`` on the encoding side: the distribution-
    parity tests compare :func:`generate_keys` marginals against this
    loop, and the fleet-scale perf gate measures its speedup over it.
    Draws scalar-at-a-time, so its seeded output differs from
    :func:`generate_key` — only the *distribution* is identical.
    """
    _check_key_shape(n_features, layers, pool_size, dim)
    gen = resolve_rng(rng)
    seen_subkeys: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
    subkeys: list[SubKey] = []
    while len(subkeys) < n_features:
        pairs: set[tuple[int, int]] = set()
        while len(pairs) < layers:
            index = int(gen.integers(0, pool_size))
            rotation = int(gen.integers(0, dim))
            pairs.add((index, rotation))
        ordered = tuple(sorted(pairs))
        indices = tuple(p[0] for p in ordered)
        rotations = tuple(p[1] for p in ordered)
        fingerprint = (indices, rotations)
        if fingerprint in seen_subkeys:
            continue
        seen_subkeys.add(fingerprint)
        subkeys.append(SubKey(indices, rotations))
    return LockKey(subkeys, pool_size=pool_size, dim=dim)


def identity_like_key(n_features: int, dim: int, rng: SeedLike = None) -> LockKey:
    """A single-layer key over a pool of size ``N`` with random rotations.

    This is the paper's ``L = 1`` configuration (footnote 2: with
    ``P = N`` the bases can serve directly as the unprotected feature
    HVs). Rotation is a shifted memory read, so this layer costs no
    latency yet already multiplies attack complexity by ``D * P / N``.
    """
    gen = resolve_rng(rng)
    perm = gen.permutation(n_features)
    subkeys = [
        SubKey((int(perm[i]),), (int(gen.integers(0, dim)),))
        for i in range(n_features)
    ]
    return LockKey(subkeys, pool_size=n_features, dim=dim)
