"""Fleet-scale packed key store: mmap random access over millions of keys.

One JSON file per key (the escrow format of
:mod:`repro.hdlock.provisioning`) tops out at thousands of devices — a
million-device fleet needs a store that is compact at rest and O(1) to
read. This module provides it:

* **fixed-stride packed records** — each device's key is its ``N * L``
  (index, rotation) pairs bit-packed at the information-theoretic width
  ``ceil(log2 P) + ceil(log2 D)`` bits per pair (the
  :meth:`~repro.memory.key.LockKey.storage_bits` accounting), rounded up
  to whole bytes per record. Same packed-word discipline as
  :mod:`repro.hv.packing`, applied to key material instead of
  hypervectors: at-rest size stays within a byte of the floor.
* **memory-mapped random access** — records are fixed-stride, so device
  ``i`` lives at byte offset ``i * stride``; :meth:`KeyStore.key` is one
  mmap slice + one vectorized unpack, never a full-file read.
* **bulk append** — a :class:`~repro.memory.key.KeyBatch` lands as one
  packbits pass + one sequential write, which is what makes provisioning
  a fleet I/O-bound instead of Python-bound.
* **lifecycle state in the header** — the revocation list and the
  rotation generation counter persist in ``keystore.json`` next to the
  shape metadata, so reopening a store restores the full lifecycle
  state, not just key bytes.

Key material is secret: the store directory's files are created
``0o600`` (and the directory ``0o700``), matching the single-key escrow
contract of :func:`repro.hdlock.provisioning.save_key`.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Iterator, Tuple

import numpy as np

from repro.errors import ConfigurationError, KeyFormatError
from repro.memory.key import KeyBatch, LockKey, storage_bits_per_key
from repro.utils.rng import SeedLike

#: File names inside a key store directory.
HEADER_FILE = "keystore.json"
DATA_FILE = "keys.bin"

#: Store format identity and version, checked on open.
MAGIC = "hdlock-keystore"
FORMAT_VERSION = 1

#: Devices packed per vectorized packbits pass during bulk append —
#: bounds the transient bit matrix to a few hundred MB at fleet shape.
APPEND_CHUNK = 8192


def _bits_for(cardinality: int) -> int:
    """Bits needed to address ``cardinality`` values (min 1)."""
    return max(math.ceil(math.log2(cardinality)), 1)


def _secure_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` with owner-only permissions."""
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
    with os.fdopen(fd, "wb") as fh:
        fh.write(payload)
    os.chmod(path, 0o600)


class KeyStore:
    """Memory-mapped, fixed-stride store of per-device HDLock keys.

    Construct with :meth:`create` (new store) or :meth:`open` (existing
    directory); the constructor itself is internal.
    """

    def __init__(
        self,
        directory: Path,
        n_features: int,
        layers: int,
        pool_size: int,
        dim: int,
        n_devices: int,
        generation: int,
        revoked: set[int],
    ) -> None:
        self.directory = Path(directory)
        self.n_features = int(n_features)
        self.layers = int(layers)
        self.pool_size = int(pool_size)
        self.dim = int(dim)
        self.n_devices = int(n_devices)
        self.generation = int(generation)
        self.revoked = set(int(d) for d in revoked)
        self.index_bits = _bits_for(self.pool_size)
        self.rotation_bits = _bits_for(self.dim)
        self._records: np.memmap | None = None

    # -- lifecycle of the store itself ---------------------------------

    @classmethod
    def create(
        cls,
        directory: str | Path,
        n_features: int,
        layers: int,
        pool_size: int,
        dim: int,
    ) -> "KeyStore":
        """Create an empty store for keys of the given shape."""
        if min(n_features, layers, pool_size, dim) < 1:
            raise ConfigurationError(
                f"store shape must be positive, got N={n_features} "
                f"L={layers} P={pool_size} D={dim}"
            )
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        os.chmod(path, 0o700)
        if (path / HEADER_FILE).exists():
            raise ConfigurationError(f"key store already exists at {path}")
        store = cls(
            path, n_features, layers, pool_size, dim,
            n_devices=0, generation=0, revoked=set(),
        )
        _secure_write_bytes(path / DATA_FILE, b"")
        store._write_header()
        return store

    @classmethod
    def open(cls, directory: str | Path) -> "KeyStore":
        """Open an existing store, validating header and data length."""
        path = Path(directory)
        header_path = path / HEADER_FILE
        try:
            payload = json.loads(header_path.read_text())
        except OSError as exc:
            raise ConfigurationError(
                f"no key store at {path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise KeyFormatError(
                f"malformed key store header {header_path}: {exc}"
            ) from exc
        try:
            if payload["magic"] != MAGIC:
                raise KeyFormatError(
                    f"{header_path} is not an hdlock key store "
                    f"(magic {payload['magic']!r})"
                )
            if int(payload["version"]) != FORMAT_VERSION:
                raise KeyFormatError(
                    f"key store version {payload['version']} unsupported "
                    f"(this build reads version {FORMAT_VERSION})"
                )
            store = cls(
                path,
                n_features=int(payload["n_features"]),
                layers=int(payload["layers"]),
                pool_size=int(payload["pool_size"]),
                dim=int(payload["dim"]),
                n_devices=int(payload["n_devices"]),
                generation=int(payload["generation"]),
                revoked=set(int(d) for d in payload["revoked"]),
            )
            declared_stride = int(payload["stride_bytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise KeyFormatError(
                f"malformed key store header {header_path}: {exc}"
            ) from exc
        if declared_stride != store.stride_bytes:
            raise KeyFormatError(
                f"header stride {declared_stride} inconsistent with shape "
                f"(expected {store.stride_bytes} bytes/key)"
            )
        data_path = path / DATA_FILE
        try:
            actual = data_path.stat().st_size
        except OSError as exc:
            raise ConfigurationError(
                f"key store data file missing at {data_path}: {exc}"
            ) from exc
        expected = store.n_devices * store.stride_bytes
        if actual != expected:
            raise KeyFormatError(
                f"key store data is {actual} bytes but header declares "
                f"{store.n_devices} devices x {store.stride_bytes} bytes"
            )
        bad_revoked = [d for d in store.revoked if not 0 <= d < store.n_devices]
        if bad_revoked:
            raise KeyFormatError(
                f"revocation list names unknown devices {sorted(bad_revoked)}"
            )
        return store

    def _write_header(self) -> None:
        payload = {
            "magic": MAGIC,
            "version": FORMAT_VERSION,
            "n_features": self.n_features,
            "layers": self.layers,
            "pool_size": self.pool_size,
            "dim": self.dim,
            "n_devices": self.n_devices,
            "stride_bytes": self.stride_bytes,
            "generation": self.generation,
            "revoked": sorted(self.revoked),
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        _secure_write_bytes(self.directory / HEADER_FILE, text.encode())

    def close(self) -> None:
        """Drop the data mmap (header state is already on disk)."""
        self._records = None

    # -- geometry ------------------------------------------------------

    @property
    def pair_bits(self) -> int:
        """Packed width of one (index, rotation) pair in bits."""
        return self.index_bits + self.rotation_bits

    @property
    def stride_bytes(self) -> int:
        """Fixed on-disk record size of one device's key."""
        return -(-(self.n_features * self.layers * self.pair_bits) // 8)

    def storage_floor_bits(self) -> int:
        """Information-theoretic bits per key (the 1.0x reference)."""
        return storage_bits_per_key(
            self.n_features, self.layers, self.pool_size, self.dim
        )

    def __len__(self) -> int:
        return self.n_devices

    # -- record packing ------------------------------------------------

    def _pack_records(
        self, indices: np.ndarray, rotations: np.ndarray
    ) -> np.ndarray:
        """Bit-pack ``(B, N, L)`` key arrays into ``(B, stride)`` bytes."""
        batch = indices.shape[0]
        codes = (
            indices.astype(np.uint64) << np.uint64(self.rotation_bits)
        ) | rotations.astype(np.uint64)
        shifts = np.arange(
            self.pair_bits - 1, -1, -1, dtype=np.uint64
        )
        bits = (
            (codes.reshape(batch, -1)[:, :, None] >> shifts) & np.uint64(1)
        ).astype(np.uint8)
        return np.packbits(  # reprolint: disable=RL002 -- packs key-code records for at-rest storage, not HV bit-planes; never on the inference hot path
            bits.reshape(batch, -1), axis=-1
        )

    def _unpack_records(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`_pack_records`: ``(B, stride)`` bytes to
        ``(B, N, L)`` index/rotation arrays."""
        batch = rows.shape[0]
        n_pairs = self.n_features * self.layers
        bits = np.unpackbits(  # reprolint: disable=RL002 -- unpacks key-code records read from the store, not HV bit-planes; never on the inference hot path
            np.ascontiguousarray(rows), axis=-1, count=n_pairs * self.pair_bits
        ).reshape(batch, n_pairs, self.pair_bits)
        weights = np.uint64(1) << np.arange(
            self.pair_bits - 1, -1, -1, dtype=np.uint64
        )
        codes = (bits.astype(np.uint64) * weights).sum(
            axis=-1, dtype=np.uint64
        )
        shape = (batch, self.n_features, self.layers)
        indices = (codes >> np.uint64(self.rotation_bits)).astype(
            np.int64
        ).reshape(shape)
        rotations = (
            codes & np.uint64((1 << self.rotation_bits) - 1)
        ).astype(np.int64).reshape(shape)
        return indices, rotations

    def _mmap(self) -> np.memmap:
        if self._records is None or self._records.shape[0] != self.n_devices:
            self._records = np.memmap(
                self.directory / DATA_FILE,
                dtype=np.uint8,
                mode="r+",
                shape=(self.n_devices, self.stride_bytes),
            )
        return self._records

    # -- key access ----------------------------------------------------

    def _check_device(self, device_id: int) -> int:
        device = int(device_id)
        if not 0 <= device < self.n_devices:
            raise ConfigurationError(
                f"device id {device} outside store of {self.n_devices} devices"
            )
        return device

    def arrays(self, device_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """O(1) read of one device's ``(N, L)`` index/rotation arrays."""
        device = self._check_device(device_id)
        row = np.asarray(self._mmap()[device])[None, :]
        indices, rotations = self._unpack_records(row)
        return indices[0], rotations[0]

    def key(self, device_id: int, allow_revoked: bool = False) -> LockKey:
        """The :class:`LockKey` of one device.

        Revoked devices refuse to load (a revoked key must never reach a
        service path) unless ``allow_revoked`` is set, e.g. for audits.
        """
        device = self._check_device(device_id)
        if device in self.revoked and not allow_revoked:
            raise KeyFormatError(
                f"device {device} is revoked; its key no longer loads"
            )
        indices, rotations = self.arrays(device)
        return LockKey.from_arrays(
            indices, rotations, self.pool_size, self.dim
        )

    def __iter__(self) -> Iterator[LockKey]:
        for device in range(self.n_devices):
            yield self.key(device, allow_revoked=True)

    # -- provisioning / lifecycle --------------------------------------

    def _check_batch(self, batch: KeyBatch) -> None:
        if (
            batch.n_features != self.n_features
            or batch.layers != self.layers
            or batch.pool_size != self.pool_size
            or batch.dim != self.dim
        ):
            raise KeyFormatError(
                f"batch shape (N={batch.n_features}, L={batch.layers}, "
                f"P={batch.pool_size}, D={batch.dim}) does not match store "
                f"(N={self.n_features}, L={self.layers}, "
                f"P={self.pool_size}, D={self.dim})"
            )

    def append(self, batch: KeyBatch) -> range:
        """Bulk-append a key batch; returns the assigned device id range.

        One packbits pass per :data:`APPEND_CHUNK` devices plus one
        sequential write — no per-device Python work.
        """
        self._check_batch(batch)
        first = self.n_devices
        self._records = None  # invalidate before the file grows
        with open(self.directory / DATA_FILE, "ab") as fh:
            for start in range(0, batch.n_devices, APPEND_CHUNK):
                stop = min(start + APPEND_CHUNK, batch.n_devices)
                fh.write(
                    self._pack_records(
                        batch.indices[start:stop], batch.rotations[start:stop]
                    ).tobytes()
                )
        self.n_devices += batch.n_devices
        self._write_header()
        return range(first, self.n_devices)

    def append_key(self, key: LockKey) -> int:
        """Append a single key; returns its assigned device id."""
        indices, rotations = key.to_arrays()
        batch = KeyBatch(
            indices[None, :, :], rotations[None, :, :], key.pool_size, key.dim
        )
        return self.append(batch)[0]

    def revoke(self, device_id: int) -> None:
        """Persistently revoke a device's key (idempotent)."""
        device = self._check_device(device_id)
        if device not in self.revoked:
            self.revoked.add(device)
            self._write_header()

    def is_revoked(self, device_id: int) -> bool:
        """Whether a device's key is on the revocation list."""
        return self._check_device(device_id) in self.revoked

    def rotate(self, device_id: int, rng: SeedLike = None) -> LockKey:
        """Replace one device's key with a fresh draw, in place.

        Fixed-stride records make rotation O(1): the new key overwrites
        the device's record bytes, the store's rotation ``generation``
        counter bumps, and a prior revocation of the device is lifted
        (the compromised key it named no longer exists). Returns the new
        key; re-locking the deployed encoder with it is
        :func:`repro.hdlock.lock.rotate_system`'s job.
        """
        from repro.hdlock.keygen import generate_keys

        device = self._check_device(device_id)
        fresh = generate_keys(
            1, self.n_features, self.layers, self.pool_size, self.dim, rng
        )
        records = self._mmap()
        records[device] = self._pack_records(
            fresh.indices, fresh.rotations
        )[0]
        records.flush()
        self.generation += 1
        self.revoked.discard(device)
        self._write_header()
        return fresh.key(0)

    def __repr__(self) -> str:
        return (
            f"KeyStore({self.n_devices} devices, N={self.n_features}, "
            f"L={self.layers}, P={self.pool_size}, D={self.dim}, "
            f"{self.stride_bytes} B/key, generation={self.generation}, "
            f"{len(self.revoked)} revoked)"
        )
