"""High-level HDLock API: build or retrofit a locked encoding module.

Two entry points:

* :func:`create_locked_encoder` — greenfield deployment: generate a base
  pool, a key, and the locked encoder in one call;
* :func:`lock_encoder` — retrofit: take an existing unprotected
  :class:`~repro.encoding.record.RecordEncoder` and produce a locked
  replacement sharing its level memory. The derived feature HVs differ
  from the original ones, so any trained class hypervectors must be
  retrained — :func:`lock_model` bundles that step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.locked import LockedEncoder
from repro.encoding.record import RecordEncoder
from repro.errors import ConfigurationError
from repro.hdlock.keygen import generate_key
from repro.hv.random import random_pool
from repro.memory.item_memory import LevelMemory
from repro.memory.key import LockKey
from repro.memory.secure import SecureMemory
from repro.model.train import TrainingResult, train_model
from repro.utils.rng import SeedLike, spawn_rngs


@dataclass(frozen=True)
class LockedSystem:
    """A deployed HDLock encoding module and its secret."""

    encoder: LockedEncoder
    key: LockKey
    base_pool: np.ndarray
    secure_memory: SecureMemory

    @property
    def layers(self) -> int:
        """Key depth ``L``."""
        return self.key.layers

    @property
    def pool_size(self) -> int:
        """Base pool size ``P``."""
        return self.key.pool_size


def create_locked_encoder(
    n_features: int,
    levels: int,
    dim: int,
    layers: int,
    pool_size: int | None = None,
    rng: SeedLike = None,
) -> LockedSystem:
    """Generate pool, key, level memory and the locked encoder.

    ``pool_size`` defaults to ``n_features`` — the paper's evaluation
    setting (``P = N``), under which the base pool is exactly as large
    as an unprotected feature memory, i.e. zero extra public storage.
    """
    if layers < 1:
        raise ConfigurationError(f"layers must be >= 1, got {layers}")
    p = n_features if pool_size is None else pool_size
    pool_rng, level_rng, key_rng, tie_rng = spawn_rngs(rng, 4)
    pool = random_pool(p, dim, pool_rng)
    level_memory = LevelMemory.random(levels, dim, level_rng)
    key = generate_key(n_features, layers, p, dim, key_rng)
    encoder = LockedEncoder(pool, level_memory, key, rng=tie_rng)
    secure = SecureMemory()
    secure.store("lock_key", key)
    return LockedSystem(
        encoder=encoder, key=key, base_pool=pool, secure_memory=secure
    )


def lock_encoder(
    encoder: RecordEncoder,
    layers: int,
    pool_size: int | None = None,
    rng: SeedLike = None,
) -> LockedSystem:
    """Retrofit HDLock onto an existing unprotected encoder.

    The level memory is reused (value HVs stay unprotected by design,
    Sec. 4.1 "Why Not Represent the Value Hypervectors?"); a fresh base
    pool and key replace the feature memory.
    """
    if layers < 1:
        raise ConfigurationError(f"layers must be >= 1, got {layers}")
    p = encoder.n_features if pool_size is None else pool_size
    pool_rng, key_rng, tie_rng = spawn_rngs(rng, 3)
    pool = random_pool(p, encoder.dim, pool_rng)
    key = generate_key(encoder.n_features, layers, p, encoder.dim, key_rng)
    locked = LockedEncoder(pool, encoder.level_memory, key, rng=tie_rng)
    secure = SecureMemory()
    secure.store("lock_key", key)
    return LockedSystem(
        encoder=locked, key=key, base_pool=pool, secure_memory=secure
    )


def rotate_system(system: LockedSystem, rng: SeedLike = None) -> LockedSystem:
    """Re-lock a deployed system under a fresh key (key rotation).

    The bounded-cost property of HDLock rotation: the public artifacts —
    base pool and level memory — are untouched, so nothing redeploys to
    device flash. Only the secret changes: one key draw plus one
    derived-feature-matrix rebuild (:mod:`repro.hdlock.feature_factory`
    inside the new encoder), independent of fleet size and of any
    training data. Trained class hypervectors were accumulated under the
    old feature HVs and must be retrained, exactly as after
    :meth:`~repro.encoding.locked.LockedEncoder.rekey`.
    """
    key_rng, tie_rng = spawn_rngs(rng, 2)
    key = generate_key(
        system.key.n_features,
        system.key.layers,
        system.pool_size,
        system.key.dim,
        key_rng,
    )
    encoder = system.encoder.rekey(key, tie_rng)
    secure = SecureMemory()
    secure.store("lock_key", key)
    return LockedSystem(
        encoder=encoder, key=key, base_pool=system.base_pool, secure_memory=secure
    )


def lock_model(
    encoder: RecordEncoder,
    train_x: np.ndarray,
    train_y: np.ndarray,
    n_classes: int,
    layers: int,
    binary: bool = True,
    pool_size: int | None = None,
    retrain_epochs: int = 3,
    rng: SeedLike = None,
) -> tuple[LockedSystem, TrainingResult]:
    """Retrofit the lock and retrain class hypervectors under it.

    Returns the locked system plus the retrained model — the paper's
    Fig. 8 workflow (accuracy under HDLock at a given ``L``).
    """
    lock_rng, train_rng = spawn_rngs(rng, 2)
    system = lock_encoder(encoder, layers, pool_size, lock_rng)
    training = train_model(
        system.encoder,
        train_x,
        train_y,
        n_classes=n_classes,
        binary=binary,
        retrain_epochs=retrain_epochs,
        rng=train_rng,
    )
    return system, training
