"""Deployment provisioning: persist the public bundle and the key apart.

A real HDLock rollout writes two artifacts with different trust levels:

* the **public bundle** — bit-packed base pool and value memory plus a
  manifest with shapes and SHA-256 checksums. This goes to ordinary
  device flash; per the threat model the adversary can read all of it.
* the **key material** — either a single ``LockKey`` JSON file
  (:func:`save_key`, owner-only ``0o600`` permissions) or, for fleets,
  a packed :class:`~repro.hdlock.keystore.KeyStore`
  (:func:`save_fleet_keys`). Both are destined for the tamper-proof
  store and never ship next to the bundle.

Loading verifies the checksums, so a tampered pool (a known class of
attacks against stored models) is detected before the encoder is
reconstructed, and cross-checks the manifest's declared shapes against
the arrays actually on disk, so a manifest inconsistent with its
payload fails loudly instead of unpacking garbage. Every loader honors
the package error contract: missing or truncated files surface as
:class:`ConfigurationError` (bundle) or :class:`KeyFormatError` (key
material), never as raw ``OSError``/``ValueError``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.encoding.locked import LockedEncoder
from repro.errors import ConfigurationError, KeyFormatError
from repro.hdlock.keystore import HEADER_FILE, KeyStore
from repro.hv.packing import pack, unpack
from repro.memory.item_memory import LevelMemory
from repro.memory.key import KeyBatch, LockKey
from repro.utils.rng import SeedLike

#: File names inside a bundle directory.
POOL_FILE = "base_pool.npy"
VALUES_FILE = "value_memory.npy"
MANIFEST_FILE = "manifest.json"
KEY_FILE = "lock_key.json"

#: Subdirectory holding the fleet key store next to single-key escrow.
KEYSTORE_DIR = "keystore"


@dataclass(frozen=True)
class BundleManifest:
    """Shapes and integrity digests of a public bundle."""

    dim: int
    pool_size: int
    levels: int
    pool_sha256: str
    values_sha256: str

    def to_json(self) -> str:
        """Serialize the manifest."""
        return json.dumps(
            {
                "dim": self.dim,
                "pool_size": self.pool_size,
                "levels": self.levels,
                "pool_sha256": self.pool_sha256,
                "values_sha256": self.values_sha256,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "BundleManifest":
        """Parse a manifest; raises on malformed content."""
        try:
            payload = json.loads(text)
            manifest = cls(
                dim=int(payload["dim"]),
                pool_size=int(payload["pool_size"]),
                levels=int(payload["levels"]),
                pool_sha256=str(payload["pool_sha256"]),
                values_sha256=str(payload["values_sha256"]),
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"malformed bundle manifest: {exc}") from exc
        if min(manifest.dim, manifest.pool_size, manifest.levels) < 1:
            raise ConfigurationError(
                f"bundle manifest declares a degenerate shape: dim="
                f"{manifest.dim}, pool_size={manifest.pool_size}, "
                f"levels={manifest.levels}"
            )
        return manifest


def _digest(packed: np.ndarray) -> str:
    return hashlib.sha256(packed.tobytes()).hexdigest()


def save_public_bundle(
    directory: str | Path, encoder: LockedEncoder
) -> BundleManifest:
    """Write the encoder's public memories (bit-packed) plus manifest.

    The key is deliberately *not* written here; see :func:`save_key`.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    packed_pool = pack(encoder.base_pool)
    packed_values = pack(encoder.level_memory.matrix)
    np.save(path / POOL_FILE, packed_pool)
    np.save(path / VALUES_FILE, packed_values)
    manifest = BundleManifest(
        dim=encoder.dim,
        pool_size=int(encoder.base_pool.shape[0]),
        levels=encoder.levels,
        pool_sha256=_digest(packed_pool),
        values_sha256=_digest(packed_values),
    )
    (path / MANIFEST_FILE).write_text(manifest.to_json())
    return manifest


def save_key(directory: str | Path, key: LockKey) -> Path:
    """Write the key JSON (destined for tamper-proof storage).

    The file is created with owner-only ``0o600`` permissions — the key
    is the secret the whole scheme rests on, so it must never be
    world-readable even while it transits an owner-side filesystem.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    key_path = path / KEY_FILE
    fd = os.open(key_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
    with os.fdopen(fd, "w") as fh:
        fh.write(key.to_json())
    # A pre-existing file keeps its old mode through os.open; pin it.
    os.chmod(key_path, 0o600)
    return key_path


def _load_packed(path: Path, what: str) -> np.ndarray:
    """Load one packed ``.npy`` array, normalizing failure modes."""
    try:
        arr = np.load(path)
    except OSError as exc:
        raise ConfigurationError(f"bundle {what} unreadable at {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigurationError(
            f"bundle {what} at {path} is corrupt or truncated: {exc}"
        ) from exc
    if arr.ndim != 2 or arr.dtype != np.uint8:
        raise ConfigurationError(
            f"bundle {what} at {path} is not a packed (K, ceil(D/8)) uint8 "
            f"array (got shape {arr.shape}, dtype {arr.dtype})"
        )
    return arr


def load_public_bundle(
    directory: str | Path,
) -> tuple[np.ndarray, LevelMemory, BundleManifest]:
    """Read and integrity-check a public bundle.

    Raises :class:`ConfigurationError` when any piece is missing or
    corrupt, when the manifest's declared shapes disagree with the
    arrays actually loaded, or when a checksum does not match — a
    tampered pool must never silently reach the encoder.
    """
    path = Path(directory)
    try:
        manifest_text = (path / MANIFEST_FILE).read_text()
    except OSError as exc:
        raise ConfigurationError(
            f"bundle manifest unreadable at {path / MANIFEST_FILE}: {exc}"
        ) from exc
    manifest = BundleManifest.from_json(manifest_text)
    packed_pool = _load_packed(path / POOL_FILE, "base pool")
    packed_values = _load_packed(path / VALUES_FILE, "value memory")
    # Cross-check declared shapes against the loaded arrays *before*
    # unpacking: np.unpackbits(count=dim) on a pool packed for a
    # different width would either explode or silently mis-slice.
    packed_width = -(-manifest.dim // 8)
    if packed_pool.shape != (manifest.pool_size, packed_width):
        raise ConfigurationError(
            f"base pool shape {packed_pool.shape} inconsistent with "
            f"manifest (pool_size={manifest.pool_size}, dim={manifest.dim} "
            f"-> expected {(manifest.pool_size, packed_width)})"
        )
    if packed_values.shape != (manifest.levels, packed_width):
        raise ConfigurationError(
            f"value memory shape {packed_values.shape} inconsistent with "
            f"manifest (levels={manifest.levels}, dim={manifest.dim} "
            f"-> expected {(manifest.levels, packed_width)})"
        )
    if _digest(packed_pool) != manifest.pool_sha256:
        raise ConfigurationError(
            f"base pool in {path} fails its integrity check"
        )
    if _digest(packed_values) != manifest.values_sha256:
        raise ConfigurationError(
            f"value memory in {path} fails its integrity check"
        )
    pool = unpack(packed_pool, manifest.dim)
    values = LevelMemory(unpack(packed_values, manifest.dim))
    return pool, values, manifest


def load_key(path: str | Path) -> LockKey:
    """Read a key file written by :func:`save_key`.

    Raises :class:`KeyFormatError` when the file is missing, unreadable
    or malformed (the :meth:`LockKey.from_json` contract).
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise KeyFormatError(f"key file unreadable at {path}: {exc}") from exc
    return LockKey.from_json(text)


def save_fleet_keys(directory: str | Path, batch: KeyBatch) -> KeyStore:
    """Persist a fleet key batch into the bundle's packed key store.

    Creates ``directory/keystore`` on first use (appends on subsequent
    calls) and bulk-appends the batch. Like :func:`save_key`, the store
    lives apart from the public bundle trust-wise — callers ship the
    bundle, not this directory.
    """
    store_dir = Path(directory) / KEYSTORE_DIR
    if (store_dir / HEADER_FILE).exists():
        store = KeyStore.open(store_dir)
    else:
        store = KeyStore.create(
            store_dir,
            n_features=batch.n_features,
            layers=batch.layers,
            pool_size=batch.pool_size,
            dim=batch.dim,
        )
    store.append(batch)
    return store


def open_fleet_store(directory: str | Path) -> KeyStore:
    """Open the key store provisioned under ``directory`` by
    :func:`save_fleet_keys`."""
    return KeyStore.open(Path(directory) / KEYSTORE_DIR)


def load_fleet_key(directory: str | Path, device_id: int) -> LockKey:
    """O(1) load of one device's key from the fleet store.

    Refuses revoked devices (:class:`KeyFormatError`), so a service path
    using this helper can never hand out a revoked key.
    """
    return open_fleet_store(directory).key(device_id)


def restore_encoder(
    directory: str | Path, key: LockKey, rng: SeedLike = None
) -> LockedEncoder:
    """Rebuild the locked encoder from a bundle directory plus its key.

    The key is validated against the bundle's shape (a key for a
    different pool must not quietly derive garbage features).
    """
    pool, values, manifest = load_public_bundle(directory)
    if key.dim != manifest.dim or key.pool_size > manifest.pool_size:
        raise KeyFormatError(
            f"key (P<={key.pool_size}, D={key.dim}) does not fit bundle "
            f"(P={manifest.pool_size}, D={manifest.dim})"
        )
    return LockedEncoder(pool, values, key, rng=rng)


def restore_device_encoder(
    directory: str | Path, device_id: int, rng: SeedLike = None
) -> LockedEncoder:
    """Rebuild one fleet device's locked encoder: bundle + store key."""
    return restore_encoder(directory, load_fleet_key(directory, device_id), rng)
