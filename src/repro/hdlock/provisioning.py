"""Deployment provisioning: persist the public bundle and the key apart.

A real HDLock rollout writes two artifacts with different trust levels:

* the **public bundle** — bit-packed base pool and value memory plus a
  manifest with shapes and SHA-256 checksums. This goes to ordinary
  device flash; per the threat model the adversary can read all of it.
* the **key file** — the ``LockKey`` JSON. This goes to the tamper-proof
  store and never ships next to the bundle.

Loading verifies the checksums, so a tampered pool (a known class of
attacks against stored models) is detected before the encoder is
reconstructed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.encoding.locked import LockedEncoder
from repro.errors import ConfigurationError, KeyFormatError
from repro.hv.packing import pack, unpack
from repro.memory.item_memory import LevelMemory
from repro.memory.key import LockKey
from repro.utils.rng import SeedLike

#: File names inside a bundle directory.
POOL_FILE = "base_pool.npy"
VALUES_FILE = "value_memory.npy"
MANIFEST_FILE = "manifest.json"
KEY_FILE = "lock_key.json"


@dataclass(frozen=True)
class BundleManifest:
    """Shapes and integrity digests of a public bundle."""

    dim: int
    pool_size: int
    levels: int
    pool_sha256: str
    values_sha256: str

    def to_json(self) -> str:
        """Serialize the manifest."""
        return json.dumps(
            {
                "dim": self.dim,
                "pool_size": self.pool_size,
                "levels": self.levels,
                "pool_sha256": self.pool_sha256,
                "values_sha256": self.values_sha256,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "BundleManifest":
        """Parse a manifest; raises on malformed content."""
        try:
            payload = json.loads(text)
            return cls(
                dim=int(payload["dim"]),
                pool_size=int(payload["pool_size"]),
                levels=int(payload["levels"]),
                pool_sha256=str(payload["pool_sha256"]),
                values_sha256=str(payload["values_sha256"]),
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"malformed bundle manifest: {exc}") from exc


def _digest(packed: np.ndarray) -> str:
    return hashlib.sha256(packed.tobytes()).hexdigest()


def save_public_bundle(
    directory: str | Path, encoder: LockedEncoder
) -> BundleManifest:
    """Write the encoder's public memories (bit-packed) plus manifest.

    The key is deliberately *not* written here; see :func:`save_key`.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    packed_pool = pack(encoder.base_pool)
    packed_values = pack(encoder.level_memory.matrix)
    np.save(path / POOL_FILE, packed_pool)
    np.save(path / VALUES_FILE, packed_values)
    manifest = BundleManifest(
        dim=encoder.dim,
        pool_size=int(encoder.base_pool.shape[0]),
        levels=encoder.levels,
        pool_sha256=_digest(packed_pool),
        values_sha256=_digest(packed_values),
    )
    (path / MANIFEST_FILE).write_text(manifest.to_json())
    return manifest


def save_key(directory: str | Path, key: LockKey) -> Path:
    """Write the key JSON (destined for tamper-proof storage)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    key_path = path / KEY_FILE
    key_path.write_text(key.to_json())
    return key_path


def load_public_bundle(
    directory: str | Path,
) -> tuple[np.ndarray, LevelMemory, BundleManifest]:
    """Read and integrity-check a public bundle.

    Raises :class:`ConfigurationError` when a checksum does not match —
    a tampered pool must never silently reach the encoder.
    """
    path = Path(directory)
    manifest = BundleManifest.from_json((path / MANIFEST_FILE).read_text())
    packed_pool = np.load(path / POOL_FILE)
    packed_values = np.load(path / VALUES_FILE)
    if _digest(packed_pool) != manifest.pool_sha256:
        raise ConfigurationError(
            f"base pool in {path} fails its integrity check"
        )
    if _digest(packed_values) != manifest.values_sha256:
        raise ConfigurationError(
            f"value memory in {path} fails its integrity check"
        )
    pool = unpack(packed_pool, manifest.dim)
    values = LevelMemory(unpack(packed_values, manifest.dim))
    return pool, values, manifest


def load_key(path: str | Path) -> LockKey:
    """Read a key file written by :func:`save_key`."""
    return LockKey.from_json(Path(path).read_text())


def restore_encoder(
    directory: str | Path, key: LockKey, rng: SeedLike = None
) -> LockedEncoder:
    """Rebuild the locked encoder from a bundle directory plus its key.

    The key is validated against the bundle's shape (a key for a
    different pool must not quietly derive garbage features).
    """
    pool, values, manifest = load_public_bundle(directory)
    if key.dim != manifest.dim or key.pool_size > manifest.pool_size:
        raise KeyFormatError(
            f"key (P<={key.pool_size}, D={key.dim}) does not fit bundle "
            f"(P={manifest.pool_size}, D={manifest.dim})"
        )
    return LockedEncoder(pool, values, key, rng=rng)
