"""Hypervector substrate: bipolar vectors, MAP operators, similarity.

This package is the mathematical foundation everything else builds on:
:mod:`repro.encoding` composes these operators into the paper's encoding
module, :mod:`repro.attack` inverts them, and :mod:`repro.hdlock` uses
them to derive locked feature hypervectors.
"""

from repro.hv.bitslice import CarrySaveAccumulator, bitsliced_accumulate
from repro.hv.capacity import (
    CapacityPoint,
    capacity,
    detection_margin,
    empirical_capacity_curve,
    expected_member_distance,
    majority_advantage,
)
from repro.hv.level import expected_level_distance, level_hvs, level_profile
from repro.hv.ops import (
    ACCUM_DTYPE,
    BIPOLAR_DTYPE,
    DEFAULT_DIM,
    as_bipolar,
    bind,
    bind_many,
    bundle,
    check_same_dim,
    invert,
    permute,
    permute_inverse,
    permute_rows,
    sign,
    stack,
)
from repro.hv.packing import (
    PACKED_WORD_DTYPE,
    PackedPool,
    hamming_packed,
    pack,
    pack_signs,
    pack_words,
    packed_hamming,
    packed_word_width,
    pairwise_hamming_packed,
    sign_bits,
    unpack,
    unpack_words,
)
from repro.hv.properties import (
    LevelLinearityReport,
    OrthogonalityReport,
    expected_random_deviation,
    level_linearity_report,
    orthogonality_report,
)
from repro.hv.random import random_hv, random_pool, shuffled_copy
from repro.hv.similarity import (
    cosine,
    cosine_matrix,
    dot,
    hamming,
    is_bipolar,
    nearest,
    nearest_batch,
    pairwise_hamming,
)

__all__ = [
    "ACCUM_DTYPE",
    "BIPOLAR_DTYPE",
    "DEFAULT_DIM",
    "as_bipolar",
    "bind",
    "bind_many",
    "bundle",
    "check_same_dim",
    "invert",
    "permute",
    "permute_inverse",
    "permute_rows",
    "sign",
    "stack",
    "random_hv",
    "random_pool",
    "shuffled_copy",
    "level_hvs",
    "level_profile",
    "expected_level_distance",
    "cosine",
    "cosine_matrix",
    "dot",
    "hamming",
    "is_bipolar",
    "nearest",
    "nearest_batch",
    "pairwise_hamming",
    "pack",
    "unpack",
    "pack_words",
    "unpack_words",
    "pack_signs",
    "sign_bits",
    "packed_word_width",
    "PACKED_WORD_DTYPE",
    "hamming_packed",
    "packed_hamming",
    "pairwise_hamming_packed",
    "PackedPool",
    "CarrySaveAccumulator",
    "bitsliced_accumulate",
    "OrthogonalityReport",
    "LevelLinearityReport",
    "orthogonality_report",
    "level_linearity_report",
    "expected_random_deviation",
    "capacity",
    "CapacityPoint",
    "detection_margin",
    "empirical_capacity_curve",
    "expected_member_distance",
    "majority_advantage",
]
