"""Bit-sliced multiply-accumulate over word-packed bipolar hypervectors.

For *bipolar* operands the record-encoding multiply-accumulate (Eq. 2)

    H[b, d] = sum_n FeaHV[n, d] * ValHV[f[b, n], d]

has a purely boolean core: the product of two ``{-1, +1}`` entries is
``+1`` exactly when their sign bits agree, so

    H[b, d] = 2 * matches[b, d] - N

where ``matches`` counts XNOR agreements across the ``N`` features. This
module evaluates that count entirely in the packed uint64 bit-plane
domain of :mod:`repro.hv.packing` — the software twin of the popcount
adder trees HDC accelerators build in hardware, and the engine's batched
path for level memories whose structure defeats the level-difference
BLAS decomposition (see :mod:`repro.encoding.engine`).

Each feature contributes one ``(B, W)`` plane ``level_bits ^
~feature_bits`` (an XNOR via a feature matrix inverted once at plan
compile time). A carry-save adder network of 3:2 compressors — full
adders over 64-lane words: ``sum = a ^ b ^ c``, ``carry = (a & b) |
(c & (a ^ b))`` — reduces the ``N`` weight-0 planes to at most two
planes per power-of-two weight, after which one unpack pass per
surviving plane rebuilds the integer counts. Per feature the kernel
moves ``~7 * D / 8`` bytes per batch row instead of the ``8-16 * D`` of
the dense integer path, which is where its ~5x speedup over the retained
per-sample einsum loop comes from (measured at D = 10,000).

Exactness is structural, not numerical: every operation is bitwise, so
the counts — and therefore the reconstructed int64 accumulations — are
identical to the reference einsum for any bipolar operands, any ``D``
(pad bits are sliced off before reconstruction), and any batch split.
"""

from __future__ import annotations

import numpy as np

from repro.hv.ops import ACCUM_DTYPE
from repro.hv.packing import PACKED_WORD_DTYPE


class CarrySaveAccumulator:
    """Carry-save reduction of equal-shaped uint64 bit-planes.

    ``add`` pushes one plane of weight ``2**0``; whenever a weight
    bucket holds three planes they compress to one plane of the same
    weight plus a carry plane of the next weight, so no bucket ever
    holds more than two planes between calls. ``counts`` unpacks the
    surviving planes into per-bit integer totals.
    """

    def __init__(self) -> None:
        self._buckets: list[list[np.ndarray]] = [[]]
        self.planes_added = 0

    def add(self, plane: np.ndarray) -> None:
        """Accumulate one weight-0 bit-plane."""
        self.planes_added += 1
        weight = 0
        carry = plane
        while carry is not None:
            if len(self._buckets) <= weight:
                self._buckets.append([])
            bucket = self._buckets[weight]
            bucket.append(carry)
            carry = None
            if len(bucket) == 3:
                c3, c2, c1 = bucket.pop(), bucket.pop(), bucket.pop()
                partial = c1 ^ c2
                bucket.append(partial ^ c3)
                carry = (c1 & c2) | (c3 & partial)
                weight += 1

    def counts(self, rows: int, dim: int) -> np.ndarray:
        """Reconstruct the ``(rows, dim)`` integer totals of all planes."""
        totals = np.zeros((rows, dim), dtype=np.int32)
        for weight, bucket in enumerate(self._buckets):
            for plane in bucket:
                bits = np.unpackbits(
                    np.ascontiguousarray(plane).view(np.uint8), axis=-1, count=dim
                )
                totals += bits.astype(np.int32) << weight
        return totals


def bitsliced_accumulate(
    level_words: np.ndarray,
    inv_feature_words: np.ndarray,
    samples: np.ndarray,
    dim: int,
) -> np.ndarray:
    """Eq. 2 accumulations of a ``(B, N)`` level batch, bit-sliced.

    ``level_words`` is the ``(M, W)`` word-packed level memory,
    ``inv_feature_words`` the **bit-inverted** ``(N, W)`` word-packed
    feature matrix (inverting once turns the per-feature XNOR into a
    plain XOR). Returns ``(B, D)`` int64 accumulations, bit-identical
    to the integer einsum reference for bipolar operand matrices.
    """
    arr = np.asarray(samples)
    rows, n_features = int(arr.shape[0]), int(arr.shape[1])
    if level_words.dtype != PACKED_WORD_DTYPE:
        raise TypeError(
            f"level_words must be {PACKED_WORD_DTYPE}, got {level_words.dtype}"
        )
    accumulator = CarrySaveAccumulator()
    for feature in range(n_features):
        accumulator.add(level_words[arr[:, feature]] ^ inv_feature_words[feature])
    out = accumulator.counts(rows, dim).astype(ACCUM_DTYPE)
    out *= 2
    out -= n_features
    return out
