"""Bundling-capacity analysis for bipolar hypervectors.

How many hypervectors can a bundle hold before its members become
unrecognizable? This classic HDC question underpins both ends of the
paper's pipeline:

* the record encoder bundles ``N`` bound pairs — the expected Hamming
  distance between the binarized bundle and any constituent determines
  how much signal the attacker's crafted queries carry (the Fig. 3
  wrong-guess band is exactly this quantity);
* the class memory bundles hundreds of encodings — its capacity sets the
  one-shot accuracy the retraining loop starts from.

For a binarized bundle of ``k`` random bipolar HVs, each constituent
agrees with the bundle's sign independently per dimension with
probability ``1/2 + c(k)``, where the advantage ``c(k)`` follows the
majority-vote binomial: ``c(k) ~ 1 / sqrt(2 pi k)`` for large odd ``k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hv.ops import bundle, sign
from repro.hv.random import random_pool
from repro.hv.similarity import hamming
from repro.utils.rng import SeedLike, resolve_rng


def majority_advantage(k: int) -> float:
    """Per-dimension agreement advantage of one constituent, exact.

    For a bundle of ``k`` i.i.d. bipolar HVs (ties broken at random for
    even ``k``), the probability that a constituent matches the
    binarized bundle's sign is ``1/2 + majority_advantage(k)``. Computed
    from the central binomial coefficient.
    """
    if k < 1:
        raise ConfigurationError(f"bundle size must be >= 1, got {k}")
    if k == 1:
        return 0.5
    # Condition on the other k-1 terms: the constituent flips the sign
    # only when their partial sum is "near" zero. For even n = k-1 the
    # decisive event is their sum hitting exactly 0 (probability
    # C(n, n/2) / 2^n); for odd n it is hitting -1 given the constituent
    # is +1 (probability C(n, (n-1)/2) / 2^n). Both contribute half.
    n = k - 1
    m = n // 2 if n % 2 == 0 else (n - 1) // 2
    # log-space central binomial: exact enough at any n and O(1), where
    # math.comb would build million-digit integers for large bundles.
    log_p = (
        math.lgamma(n + 1)
        - math.lgamma(m + 1)
        - math.lgamma(n - m + 1)
        - n * math.log(2.0)
    )
    return math.exp(log_p) / 2.0


def expected_member_distance(k: int) -> float:
    """Expected normalized Hamming distance of a constituent to the
    binarized bundle of ``k`` random HVs: ``0.5 - majority_advantage``."""
    return 0.5 - majority_advantage(k)


def detection_margin(k: int, dim: int, sigmas: float = 4.0) -> float:
    """Distance margin separating members from non-members.

    Non-members sit at 0.5 with standard deviation ``1/(2 sqrt(D))``;
    the margin is the member advantage minus ``sigmas`` standard
    deviations of that noise. Positive margin = members recognizable.
    """
    if dim < 1:
        raise ConfigurationError(f"dim must be >= 1, got {dim}")
    return majority_advantage(k) - sigmas * 0.5 / math.sqrt(dim)


def capacity(dim: int, sigmas: float = 4.0, max_k: int = 1 << 20) -> int:
    """Largest bundle size whose members remain detectable at ``dim``.

    Uses the asymptotic advantage ``~1/sqrt(2 pi k)``: detectability
    requires ``1/sqrt(2 pi k) > sigmas / (2 sqrt(D))``, i.e.
    ``k < 2 D / (pi sigmas^2)``. The exact advantage is used near the
    boundary so the result is sharp.
    """
    if dim < 1:
        raise ConfigurationError(f"dim must be >= 1, got {dim}")
    estimate = int(2 * dim / (math.pi * sigmas**2))
    k = max(min(estimate * 2, max_k), 1)
    while k > 1 and detection_margin(k, dim, sigmas) <= 0:
        k -= max(k // 64, 1)
    return k


def _log2_comb(n: int, k: int) -> float:
    """``log2 C(n, k)`` via lgamma — exact enough at fleet scale, O(1)."""
    if k < 0 or k > n:
        raise ConfigurationError(f"C({n}, {k}) is undefined")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2.0)


def subkey_space_log2(pool_size: int, dim: int, layers: int) -> float:
    """``log2`` of the number of distinct subkeys for one feature.

    A subkey is a size-``L`` subset of the ``P * D`` (index, rotation)
    pair space, so the count is ``C(P * D, L)`` — the per-feature term
    of the paper's Eq. 12 guess-complexity argument.
    """
    if pool_size < 1 or dim < 1:
        raise ConfigurationError(
            f"pool_size and dim must be >= 1, got {pool_size} and {dim}"
        )
    if layers < 1 or layers > pool_size * dim:
        raise ConfigurationError(
            f"layers must be in [1, P * D], got {layers} for "
            f"P={pool_size}, D={dim}"
        )
    return _log2_comb(pool_size * dim, layers)


def key_entropy_bits(
    n_features: int, layers: int, pool_size: int, dim: int
) -> float:
    """``log2`` of the number of distinct whole keys (ordered ``N``-tuples
    of pairwise-distinct subkeys) — the uniform-key entropy in bits.

    The exact count is the falling factorial ``S * (S-1) * ... *
    (S-N+1)`` with ``S = C(P * D, L)``; for fleet-relevant shapes ``S``
    dwarfs ``N`` and the distinctness correction is below float
    resolution, so ``N * log2 S`` is used whenever ``S`` cannot be
    represented exactly, and the exact sum otherwise.
    """
    if n_features < 1:
        raise ConfigurationError(f"n_features must be >= 1, got {n_features}")
    log2_s = subkey_space_log2(pool_size, dim, layers)
    if math.comb(pool_size * dim, layers) < n_features:
        raise ConfigurationError(
            f"only 2**{log2_s:.1f} distinct subkeys exist for P={pool_size}, "
            f"D={dim}, L={layers}; cannot key {n_features} features"
        )
    if log2_s > 53:  # S - i indistinguishable from S in double precision
        return n_features * log2_s
    s = math.comb(pool_size * dim, layers)
    return sum(math.log2(s - i) for i in range(n_features))


def fleet_collision_log2_probability(
    n_devices: int, n_features: int, layers: int, pool_size: int, dim: int
) -> float:
    """``log2`` of the probability that any two fleet devices drew the
    same whole key (birthday bound over uniform independent keys).

    ``p <= C(n, 2) / K`` with ``K = 2**key_entropy_bits``; returned in
    log2 because at fleet scale the probability underflows a float
    (e.g. a million MNIST-shaped devices sit near ``2**-33000``).
    """
    if n_devices < 1:
        raise ConfigurationError(f"n_devices must be >= 1, got {n_devices}")
    if n_devices == 1:
        return -math.inf
    pairs_log2 = math.log2(n_devices) + math.log2(n_devices - 1) - 1.0
    return min(
        pairs_log2 - key_entropy_bits(n_features, layers, pool_size, dim),
        0.0,
    )


@dataclass(frozen=True)
class FleetKeyReport:
    """Population-scale collision / guessability profile of a key shape.

    The fleet-provisioning counterpart of the single-model security
    level (:func:`repro.hdlock.analysis.security_level_bits`): what
    happens when *millions* of keys of one shape coexist.
    """

    n_devices: int
    n_features: int
    layers: int
    pool_size: int
    dim: int
    #: bits of entropy of one uniformly drawn key
    key_entropy_bits: float
    #: log2 P[any two devices share a whole key] (birthday bound)
    collision_log2_probability: float
    #: the same probability as a float — 0.0 once it underflows
    collision_probability: float
    #: log2 of the expected number of blind whole-key guesses to hit one
    #: specific device's key
    expected_guesses_log2: float
    #: log2 P[one blind guess hits *some* unrevoked device of the fleet]
    fleet_guess_log2_probability: float

    def to_dict(self) -> dict:
        """JSON-ready payload (bench artifacts, service introspection)."""
        return {
            "n_devices": self.n_devices,
            "n_features": self.n_features,
            "layers": self.layers,
            "pool_size": self.pool_size,
            "dim": self.dim,
            "key_entropy_bits": self.key_entropy_bits,
            "collision_log2_probability": self.collision_log2_probability,
            "collision_probability": self.collision_probability,
            "expected_guesses_log2": self.expected_guesses_log2,
            "fleet_guess_log2_probability": self.fleet_guess_log2_probability,
        }


def fleet_key_report(
    n_devices: int,
    n_features: int,
    layers: int,
    pool_size: int,
    dim: int,
) -> FleetKeyReport:
    """Collision and guessability analysis for a fleet of uniform keys.

    Three questions a provisioning plan must answer before rollout:
    how much entropy one key carries, how likely two devices are to
    collide (birthday bound — the quantity that grows quadratically
    with fleet size), and how much a blind guesser gains from the fleet
    being large (a guess succeeding against *any* of ``n`` devices is
    ``n`` times easier than against one, Prive-HD-style population
    accounting).
    """
    entropy = key_entropy_bits(n_features, layers, pool_size, dim)
    collision_log2 = fleet_collision_log2_probability(
        n_devices, n_features, layers, pool_size, dim
    )
    collision = 2.0**collision_log2 if collision_log2 > -1074 else 0.0
    return FleetKeyReport(
        n_devices=n_devices,
        n_features=n_features,
        layers=layers,
        pool_size=pool_size,
        dim=dim,
        key_entropy_bits=entropy,
        collision_log2_probability=collision_log2,
        collision_probability=collision,
        expected_guesses_log2=entropy - 1.0,
        fleet_guess_log2_probability=min(
            math.log2(n_devices) - entropy, 0.0
        ),
    )


@dataclass(frozen=True)
class CapacityPoint:
    """One empirical measurement of member/non-member separability."""

    bundle_size: int
    member_distance: float
    non_member_distance: float
    predicted_member_distance: float


def empirical_capacity_curve(
    bundle_sizes: list[int],
    dim: int = 4096,
    rng: SeedLike = None,
) -> list[CapacityPoint]:
    """Measure member recognizability against the analytic prediction.

    For each ``k``: bundle ``k`` random HVs, binarize, and compare the
    distance of a member and of a fresh non-member to the bundle.
    """
    gen = resolve_rng(rng)
    points = []
    for k in bundle_sizes:
        pool = random_pool(k + 1, dim, gen)
        bundled = sign(bundle(pool[:k]), gen)
        points.append(
            CapacityPoint(
                bundle_size=k,
                member_distance=float(hamming(bundled, pool[0])),
                non_member_distance=float(hamming(bundled, pool[k])),
                predicted_member_distance=expected_member_distance(k),
            )
        )
    return points
