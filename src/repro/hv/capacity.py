"""Bundling-capacity analysis for bipolar hypervectors.

How many hypervectors can a bundle hold before its members become
unrecognizable? This classic HDC question underpins both ends of the
paper's pipeline:

* the record encoder bundles ``N`` bound pairs — the expected Hamming
  distance between the binarized bundle and any constituent determines
  how much signal the attacker's crafted queries carry (the Fig. 3
  wrong-guess band is exactly this quantity);
* the class memory bundles hundreds of encodings — its capacity sets the
  one-shot accuracy the retraining loop starts from.

For a binarized bundle of ``k`` random bipolar HVs, each constituent
agrees with the bundle's sign independently per dimension with
probability ``1/2 + c(k)``, where the advantage ``c(k)`` follows the
majority-vote binomial: ``c(k) ~ 1 / sqrt(2 pi k)`` for large odd ``k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hv.ops import bundle, sign
from repro.hv.random import random_pool
from repro.hv.similarity import hamming
from repro.utils.rng import SeedLike, resolve_rng


def majority_advantage(k: int) -> float:
    """Per-dimension agreement advantage of one constituent, exact.

    For a bundle of ``k`` i.i.d. bipolar HVs (ties broken at random for
    even ``k``), the probability that a constituent matches the
    binarized bundle's sign is ``1/2 + majority_advantage(k)``. Computed
    from the central binomial coefficient.
    """
    if k < 1:
        raise ConfigurationError(f"bundle size must be >= 1, got {k}")
    if k == 1:
        return 0.5
    # Condition on the other k-1 terms: the constituent flips the sign
    # only when their partial sum is "near" zero. For even n = k-1 the
    # decisive event is their sum hitting exactly 0 (probability
    # C(n, n/2) / 2^n); for odd n it is hitting -1 given the constituent
    # is +1 (probability C(n, (n-1)/2) / 2^n). Both contribute half.
    n = k - 1
    m = n // 2 if n % 2 == 0 else (n - 1) // 2
    # log-space central binomial: exact enough at any n and O(1), where
    # math.comb would build million-digit integers for large bundles.
    log_p = (
        math.lgamma(n + 1)
        - math.lgamma(m + 1)
        - math.lgamma(n - m + 1)
        - n * math.log(2.0)
    )
    return math.exp(log_p) / 2.0


def expected_member_distance(k: int) -> float:
    """Expected normalized Hamming distance of a constituent to the
    binarized bundle of ``k`` random HVs: ``0.5 - majority_advantage``."""
    return 0.5 - majority_advantage(k)


def detection_margin(k: int, dim: int, sigmas: float = 4.0) -> float:
    """Distance margin separating members from non-members.

    Non-members sit at 0.5 with standard deviation ``1/(2 sqrt(D))``;
    the margin is the member advantage minus ``sigmas`` standard
    deviations of that noise. Positive margin = members recognizable.
    """
    if dim < 1:
        raise ConfigurationError(f"dim must be >= 1, got {dim}")
    return majority_advantage(k) - sigmas * 0.5 / math.sqrt(dim)


def capacity(dim: int, sigmas: float = 4.0, max_k: int = 1 << 20) -> int:
    """Largest bundle size whose members remain detectable at ``dim``.

    Uses the asymptotic advantage ``~1/sqrt(2 pi k)``: detectability
    requires ``1/sqrt(2 pi k) > sigmas / (2 sqrt(D))``, i.e.
    ``k < 2 D / (pi sigmas^2)``. The exact advantage is used near the
    boundary so the result is sharp.
    """
    if dim < 1:
        raise ConfigurationError(f"dim must be >= 1, got {dim}")
    estimate = int(2 * dim / (math.pi * sigmas**2))
    k = max(min(estimate * 2, max_k), 1)
    while k > 1 and detection_margin(k, dim, sigmas) <= 0:
        k -= max(k // 64, 1)
    return k


@dataclass(frozen=True)
class CapacityPoint:
    """One empirical measurement of member/non-member separability."""

    bundle_size: int
    member_distance: float
    non_member_distance: float
    predicted_member_distance: float


def empirical_capacity_curve(
    bundle_sizes: list[int],
    dim: int = 4096,
    rng: SeedLike = None,
) -> list[CapacityPoint]:
    """Measure member recognizability against the analytic prediction.

    For each ``k``: bundle ``k`` random HVs, binarize, and compare the
    distance of a member and of a fresh non-member to the bundle.
    """
    gen = resolve_rng(rng)
    points = []
    for k in bundle_sizes:
        pool = random_pool(k + 1, dim, gen)
        bundled = sign(bundle(pool[:k]), gen)
        points.append(
            CapacityPoint(
                bundle_size=k,
                member_distance=float(hamming(bundled, pool[0])),
                non_member_distance=float(hamming(bundled, pool[k])),
                predicted_member_distance=expected_member_distance(k),
            )
        )
    return points
