"""Level (value) hypervector construction.

Feature *values* are discretized to ``M`` levels and each level gets a
hypervector ``ValHV_v``. Unlike feature hypervectors, the value HVs must
be **linearly correlated** (Eq. 1b)::

    Hamm(ValHV_v1, ValHV_v2) ~= 0.5 * |v1 - v2| / (v_max - v_min)

so that nearby values encode to nearby HVs while the extreme levels
``ValHV_1`` and ``ValHV_M`` are orthogonal. The standard construction
(used by QuantHD [4] and most HDC work) starts from a random HV and flips
a fresh batch of ``D / (2 (M-1))`` coordinates per level step; flips
accumulate, so level ``M`` differs from level 1 in ``D/2`` coordinates.

This consecutive structure is exactly the weakness the paper's value-
extraction attack exploits: the two extremes are identifiable as the pair
at maximum pairwise distance (Sec. 3.2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hv.ops import BIPOLAR_DTYPE, DEFAULT_DIM
from repro.hv.random import random_hv
from repro.utils.rng import SeedLike, resolve_rng


def level_hvs(levels: int, dim: int = DEFAULT_DIM, rng: SeedLike = None) -> np.ndarray:
    """Generate an ``(levels, dim)`` matrix of linearly correlated HVs.

    Row ``v`` is the hypervector for discretized value level ``v``
    (0-based). Rows satisfy Eq. 1b: the normalized Hamming distance
    between rows ``v1`` and ``v2`` is ``|v1 - v2| / (2 (levels - 1))`` up
    to integer rounding of the per-step flip count, and rows 0 and
    ``levels - 1`` are (near-)orthogonal.

    ``levels`` must be at least 2 — a single level cannot span a value
    range.
    """
    if levels < 2:
        raise ConfigurationError(f"need at least 2 value levels, got {levels}")
    if dim < 2 * (levels - 1):
        raise ConfigurationError(
            f"dim={dim} too small to spread {levels} levels over D/2 flip positions"
        )
    gen = resolve_rng(rng)
    base = random_hv(dim, gen)

    # Choose D/2 coordinates (without replacement) and split them into
    # levels-1 nearly equal batches; level v flips the first v batches.
    half = dim // 2
    flip_order = gen.permutation(dim)[:half]
    boundaries = np.linspace(0, half, levels, dtype=np.int64)

    out = np.empty((levels, dim), dtype=BIPOLAR_DTYPE)
    out[0] = base
    current = base.copy()
    for v in range(1, levels):
        batch = flip_order[boundaries[v - 1] : boundaries[v]]
        current[batch] = -current[batch]
        out[v] = current
    return out


def expected_level_distance(v1: int, v2: int, levels: int) -> float:
    """The Eq. 1b prediction for ``Hamm(ValHV_v1, ValHV_v2)``.

    ``0.5 * |v1 - v2| / (levels - 1)`` — used by tests and by the
    attacker's consistency checks.
    """
    if levels < 2:
        raise ConfigurationError(f"need at least 2 value levels, got {levels}")
    return 0.5 * abs(v1 - v2) / (levels - 1)


def level_profile(level_matrix: np.ndarray) -> np.ndarray:
    """Normalized Hamming distance of every level to level 0.

    For a well-formed level memory this is a straight line from 0 to
    ~0.5; the attacker sorts the published (shuffled) value pool along
    this profile to recover the level order.
    """
    mat = np.asarray(level_matrix)
    d = mat.shape[-1]
    mismatch = np.count_nonzero(mat != mat[0], axis=-1)
    return mismatch / d
