"""Core Multiplication-Addition-Permutation (MAP) operations on bipolar
hypervectors.

A hypervector (HV) is a 1-D :class:`numpy.ndarray` with entries in
``{-1, +1}`` (paper Sec. 2, ``HV in {1, -1}^D``). The three MAP operators
are:

* **bind** — element-wise multiplication ``HV1 * HV2``. Binding two
  quasi-orthogonal HVs yields an HV quasi-orthogonal to both; binding is
  its own inverse (``bind(bind(a, b), b) == a``).
* **bundle** — element-wise integer addition. The bundle of a set is
  similar to each member; it is the non-binary encoding accumulator of
  Eq. 2 and the class-HV accumulator of Eq. 4.
* **permute** — coordinate permutation. The paper (and this library) uses
  circular rotation: ``rho_k(HV) = {HV[k : D-1], HV[0 : k-1]}``, i.e. a
  left rotation by ``k`` positions.

Binarization (Eq. 3) uses :func:`sign` where ties at exactly zero are
assigned ``+1``/``-1`` uniformly at random, as the paper specifies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, NotBipolarError
from repro.utils.rng import SeedLike, resolve_rng

#: Hypervector dimensionality used throughout the paper's experiments.
DEFAULT_DIM = 10_000

#: dtype used for bipolar hypervectors. int8 keeps a D=10,000 HV in 10 KB.
BIPOLAR_DTYPE = np.int8

#: dtype used for non-binary accumulations (bundles of up to ~2^31 HVs).
ACCUM_DTYPE = np.int64


def as_bipolar(hv: np.ndarray) -> np.ndarray:
    """Validate that ``hv`` is bipolar and return it as ``int8``.

    Raises :class:`NotBipolarError` when any entry is outside ``{-1, +1}``.
    """
    arr = np.asarray(hv)
    if not np.isin(arr, (-1, 1)).all():
        raise NotBipolarError("hypervector entries must all be -1 or +1")
    return arr.astype(BIPOLAR_DTYPE, copy=False)


def check_same_dim(*hvs: np.ndarray) -> int:
    """Return the shared last-axis dimension of ``hvs`` or raise.

    Raises :class:`DimensionMismatchError` when the hypervectors disagree
    on ``D``.
    """
    dims = {np.asarray(hv).shape[-1] for hv in hvs}
    if len(dims) != 1:
        raise DimensionMismatchError(f"mixed hypervector dimensions: {sorted(dims)}")
    return dims.pop()


def bind(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise multiplication of two (stacks of) bipolar HVs.

    Accepts broadcasting shapes, e.g. a ``(P, D)`` pool against a ``(D,)``
    value hypervector. The result keeps the bipolar dtype.
    """
    check_same_dim(a, b)
    return np.multiply(a, b, dtype=BIPOLAR_DTYPE)


def bind_many(hvs: Sequence[np.ndarray] | np.ndarray) -> np.ndarray:
    """Bind an arbitrary number of bipolar HVs together.

    ``hvs`` may be a sequence of ``(D,)`` vectors or a ``(K, D)`` matrix;
    the result is the element-wise product over the first axis. This is
    the ``prod_{l=1..L}`` operator of the HDLock feature construction
    (Eq. 9).
    """
    mat = np.asarray(hvs)
    if mat.ndim == 1:
        return mat.astype(BIPOLAR_DTYPE, copy=True)
    if mat.shape[0] == 0:
        raise ValueError("bind_many needs at least one hypervector")
    return np.prod(mat, axis=0, dtype=BIPOLAR_DTYPE)


def bundle(hvs: Sequence[np.ndarray] | np.ndarray) -> np.ndarray:
    """Element-wise integer sum of a stack of HVs (non-binary bundle).

    Returns an :data:`ACCUM_DTYPE` vector; use :func:`sign` to binarize.
    """
    mat = np.asarray(hvs)
    if mat.ndim == 1:
        return mat.astype(ACCUM_DTYPE, copy=True)
    return mat.sum(axis=0, dtype=ACCUM_DTYPE)


def permute(hv: np.ndarray, k: int) -> np.ndarray:
    """Circularly rotate ``hv`` left by ``k`` positions (the paper's rho_k).

    ``rho_k(HV) = {HV[k:], HV[:k]}``. ``k`` is reduced modulo ``D`` so any
    integer (including negatives, which rotate right) is accepted. Works
    on a single ``(D,)`` vector or a ``(..., D)`` stack, rotating the last
    axis.
    """
    arr = np.asarray(hv)
    d = arr.shape[-1]
    return np.roll(arr, -(k % d), axis=-1)


def permute_inverse(hv: np.ndarray, k: int) -> np.ndarray:
    """Undo :func:`permute` with the same ``k`` (rotate right by ``k``)."""
    return permute(hv, -k)


def permute_rows(hvs: np.ndarray, shifts: Sequence[int] | np.ndarray) -> np.ndarray:
    """Rotate each row ``i`` of a ``(K, D)`` matrix left by ``shifts[i]``.

    Vectorized with a gather so HDLock key application (one rotation per
    base hypervector per feature) stays fast. Shift values are taken
    modulo ``D``.
    """
    mat = np.asarray(hvs)
    if mat.ndim != 2:
        raise ValueError(f"expected a (K, D) matrix, got shape {mat.shape}")
    shift_arr = np.asarray(shifts, dtype=np.int64)
    if shift_arr.shape != (mat.shape[0],):
        raise DimensionMismatchError(
            f"got {shift_arr.shape[0] if shift_arr.ndim else 'scalar'} shifts "
            f"for {mat.shape[0]} rows"
        )
    d = mat.shape[1]
    cols = (np.arange(d)[None, :] + shift_arr[:, None]) % d
    return np.take_along_axis(mat, cols, axis=1)


def sign(accum: np.ndarray, rng: SeedLike = None) -> np.ndarray:
    """Binarize a non-binary accumulation into a bipolar HV (Eq. 3).

    Entries ``> 0`` map to ``+1``, entries ``< 0`` to ``-1``, and exact
    zeros are assigned ``+1`` or ``-1`` uniformly at random (the paper:
    "sign(0) is randomly assigned to -1 or 1"). Pass a seeded ``rng`` for
    reproducible tie-breaking.
    """
    arr = np.asarray(accum)
    out = np.where(arr > 0, 1, -1).astype(BIPOLAR_DTYPE)
    zeros = arr == 0
    n_zero = int(np.count_nonzero(zeros))
    if n_zero:
        gen = resolve_rng(rng)
        out[zeros] = gen.choice(np.array([-1, 1], dtype=BIPOLAR_DTYPE), size=n_zero)
    return out


def invert(hv: np.ndarray) -> np.ndarray:
    """Element-wise negation. For bipolar HVs this is the bind-inverse of
    ``-1 * hv`` and flips all Hamming relations around 0.5."""
    return np.negative(hv)


def stack(hvs: Iterable[np.ndarray]) -> np.ndarray:
    """Stack an iterable of ``(D,)`` hypervectors into a ``(K, D)`` matrix."""
    mat = np.stack(list(hvs))
    check_same_dim(mat)
    return mat
