"""Bit-packed representation of bipolar hypervectors.

A ``D``-dimensional bipolar HV stores one of two symbols per coordinate,
so it packs into ``ceil(D / 8)`` bytes (``+1 -> bit 1``, ``-1 -> bit 0``).
Packing matters twice in this reproduction:

* **fidelity** — the threat model (Sec. 3.1) is about hypervectors
  living in plain device memory; packed binary storage is how real
  FPGA / in-memory deployments hold them, and the public-memory size
  accounting in :mod:`repro.memory` uses the packed size.
* **speed** — the divide-and-conquer attack is dominated by Hamming
  distance computations over large candidate pools; XOR + popcount over
  packed words is ~8x less memory traffic than byte-per-element
  comparison.

numpy >= 2.0 provides :func:`numpy.bitwise_count`; a portable fallback
based on an 8-bit lookup table is used otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError
from repro.hv.ops import BIPOLAR_DTYPE

_POPCOUNT_LUT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint16)


def _popcount_bytes(arr: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint8 array, summed along the last axis."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(arr).sum(axis=-1, dtype=np.int64)
    return _POPCOUNT_LUT[arr].sum(axis=-1, dtype=np.int64)


def pack(hvs: np.ndarray) -> np.ndarray:
    """Pack bipolar HVs into uint8 bit rows (``+1 -> 1``, ``-1 -> 0``).

    Accepts ``(D,)`` or ``(K, D)``; returns ``(ceil(D/8),)`` or
    ``(K, ceil(D/8))``. The original dimension is needed to unpack (store
    it alongside, as :class:`PackedPool` does).
    """
    bits = (np.asarray(hvs) > 0).astype(np.uint8)
    return np.packbits(bits, axis=-1)


def unpack(packed: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack` for hypervectors of dimension ``dim``."""
    bits = np.unpackbits(np.asarray(packed, dtype=np.uint8), axis=-1, count=dim)
    return (2 * bits.astype(np.int16) - 1).astype(BIPOLAR_DTYPE)


def hamming_packed(a: np.ndarray, b: np.ndarray, dim: int) -> np.ndarray | float:
    """Normalized Hamming distance between packed HVs, broadcasting.

    ``a`` may be a ``(K, W)`` stack and ``b`` a ``(W,)`` row (or vice
    versa, or any mutually broadcastable stack shapes); the XOR
    broadcasts. ``dim`` is the unpacked dimension used for normalization
    (trailing pad bits are identical after packing, so they never
    contribute to the XOR).
    """
    a_arr = np.asarray(a, dtype=np.uint8)
    b_arr = np.asarray(b, dtype=np.uint8)
    if a_arr.shape[-1] != b_arr.shape[-1]:
        raise DimensionMismatchError(
            f"packed widths differ: {a_arr.shape[-1]} vs {b_arr.shape[-1]}"
        )
    diff = np.bitwise_xor(a_arr, b_arr)
    result = _popcount_bytes(diff) / dim
    return float(result) if np.ndim(result) == 0 else result


#: Backward-compatible alias of :func:`hamming_packed` (pre-batch name).
packed_hamming = hamming_packed


def pairwise_hamming_packed(
    a: np.ndarray,
    b: np.ndarray | None = None,
    dim: int | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """All-pairs normalized Hamming distances of packed stacks.

    ``a`` is a ``(Ka, W)`` packed stack, ``b`` a ``(Kb, W)`` one (``a``
    itself when omitted); the result is ``(Ka, Kb)``. Work is tiled in
    row blocks of ``a`` (``chunk_size`` rows, default 256) so the
    ``(chunk, Kb, W)`` XOR tile stays cache-sized however large the
    pools get — this is the kernel behind large candidate-pool scoring
    in the reasoning attack.
    """
    a_arr = np.asarray(a, dtype=np.uint8)
    b_arr = a_arr if b is None else np.asarray(b, dtype=np.uint8)
    if a_arr.ndim != 2 or b_arr.ndim != 2:
        raise DimensionMismatchError(
            f"expected packed (K, W) stacks, got {a_arr.shape} and {b_arr.shape}"
        )
    if a_arr.shape[1] != b_arr.shape[1]:
        raise DimensionMismatchError(
            f"packed widths differ: {a_arr.shape[1]} vs {b_arr.shape[1]}"
        )
    if dim is None:
        raise ValueError("dim (unpacked dimension) is required")
    chunk = max(1, 256 if chunk_size is None else int(chunk_size))
    out = np.empty((a_arr.shape[0], b_arr.shape[0]), dtype=np.float64)
    for start in range(0, a_arr.shape[0], chunk):
        stop = min(start + chunk, a_arr.shape[0])
        diff = np.bitwise_xor(a_arr[start:stop, None, :], b_arr[None, :, :])
        out[start:stop] = _popcount_bytes(diff) / dim
    return out


class PackedPool:
    """A pool of bipolar HVs stored packed, remembering its dimension.

    Thin convenience wrapper used by the memory model: keeps the packed
    rows, answers Hamming queries, and reports its storage footprint.
    """

    def __init__(self, hvs: np.ndarray) -> None:
        arr = np.asarray(hvs)
        if arr.ndim != 2:
            raise ValueError(f"expected a (K, D) pool, got shape {arr.shape}")
        self.dim = int(arr.shape[1])
        self.rows = pack(arr)

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    @property
    def nbytes(self) -> int:
        """Packed storage footprint in bytes."""
        return int(self.rows.nbytes)

    def unpack_row(self, index: int) -> np.ndarray:
        """Return row ``index`` as a bipolar ``(D,)`` vector."""
        return unpack(self.rows[index], self.dim)

    def unpack_all(self) -> np.ndarray:
        """Return the whole pool as a bipolar ``(K, D)`` matrix."""
        return unpack(self.rows, self.dim)

    def hamming_to(self, hv: np.ndarray) -> np.ndarray:
        """Normalized Hamming distance of every row to a bipolar ``hv``."""
        return hamming_packed(self.rows, pack(hv), self.dim)

    def hamming_to_many(self, hvs: np.ndarray, chunk_size: int | None = None) -> np.ndarray:
        """Distances of every row to each of ``(B, D)`` bipolar HVs.

        Returns a ``(K, B)`` matrix via the chunked pairwise kernel.
        """
        return pairwise_hamming_packed(
            self.rows, pack(np.atleast_2d(hvs)), self.dim, chunk_size
        )

    def nearest(self, hv: np.ndarray) -> int:
        """Index of the pool row closest to a bipolar ``hv``."""
        return int(np.argmin(self.hamming_to(hv)))
