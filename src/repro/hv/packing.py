"""Bit-packed representation of bipolar hypervectors.

A ``D``-dimensional bipolar HV stores one of two symbols per coordinate,
so it packs into ``ceil(D / 8)`` bytes (``+1 -> bit 1``, ``-1 -> bit 0``).
Packing matters twice in this reproduction:

* **fidelity** — the threat model (Sec. 3.1) is about hypervectors
  living in plain device memory; packed binary storage is how real
  FPGA / in-memory deployments hold them, and the public-memory size
  accounting in :mod:`repro.memory` uses the packed size.
* **speed** — the divide-and-conquer attack is dominated by Hamming
  distance computations over large candidate pools; XOR + popcount over
  packed words is ~8x less memory traffic than byte-per-element
  comparison.

Two packed layouts coexist:

* **byte rows** (:func:`pack` / :func:`unpack`) — exactly
  ``ceil(D / 8)`` uint8 bytes per HV. This is the storage layout: the
  public-memory footprint accounting depends on its exact size.
* **word bit-planes** (:func:`pack_words` / :func:`unpack_words`) —
  ``ceil(D / 64)`` uint64 words per HV, the byte layout zero-padded up
  to a word boundary. This is the compute layout of the hot path: the
  encoding engine binarizes straight into it (:func:`pack_signs`), the
  classifier and the attack scorers XOR-popcount it word-at-a-time, and
  :mod:`repro.hv.bitslice` runs its carry-save accumulation over it.

The Hamming kernels accept either layout (both operands must agree —
widths and dtypes are checked, never coerced across layouts). Trailing
pad bits are identical on both sides by construction, so they never
contribute to a distance.

numpy >= 2.0 provides :func:`numpy.bitwise_count`; a portable fallback
based on an 8-bit lookup table is used otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError
from repro.hv.ops import BIPOLAR_DTYPE
from repro.utils.rng import SeedLike, resolve_rng

#: dtype of the word bit-plane layout (the engine's native output).
PACKED_WORD_DTYPE = np.uint64

#: Bits per packed word.
WORD_BITS = 64

_POPCOUNT_LUT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint16)

_PM_ONE = np.array([-1, 1], dtype=BIPOLAR_DTYPE)


def packed_word_width(dim: int) -> int:
    """Number of uint64 words in a word-packed HV of dimension ``dim``."""
    return -(-int(dim) // WORD_BITS)


def _popcount_bytes(arr: np.ndarray) -> np.ndarray:
    """Per-element popcount (uint8 or uint64), summed along the last axis."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(arr).sum(axis=-1, dtype=np.int64)
    if arr.dtype != np.uint8:
        arr = np.ascontiguousarray(arr).view(np.uint8)
    return _POPCOUNT_LUT[arr].sum(axis=-1, dtype=np.int64)


def _as_packed(arr: np.ndarray) -> np.ndarray:
    """Normalize a packed operand, preserving the word layout's dtype."""
    a = np.asarray(arr)
    if a.dtype == PACKED_WORD_DTYPE:
        return a
    return np.asarray(a, dtype=np.uint8)


def _check_layouts(a: np.ndarray, b: np.ndarray) -> None:
    if a.dtype != b.dtype:
        raise DimensionMismatchError(
            f"mixed packed layouts: {a.dtype} vs {b.dtype} (pack both "
            f"operands with pack() or both with pack_words())"
        )


def pack(hvs: np.ndarray) -> np.ndarray:
    """Pack bipolar HVs into uint8 bit rows (``+1 -> 1``, ``-1 -> 0``).

    Accepts ``(D,)`` or ``(K, D)``; returns ``(ceil(D/8),)`` or
    ``(K, ceil(D/8))``. The original dimension is needed to unpack (store
    it alongside, as :class:`PackedPool` does).
    """
    bits = (np.asarray(hvs) > 0).astype(np.uint8)
    return np.packbits(bits, axis=-1)


def unpack(packed: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack` for hypervectors of dimension ``dim``."""
    bits = np.unpackbits(np.asarray(packed, dtype=np.uint8), axis=-1, count=dim)
    return (2 * bits.astype(np.int16) - 1).astype(BIPOLAR_DTYPE)


def pack_words(hvs: np.ndarray) -> np.ndarray:
    """Pack bipolar HVs into uint64 bit-plane words (``+1 -> bit 1``).

    Accepts ``(D,)`` or ``(K, D)``; returns ``(ceil(D/64),)`` or
    ``(K, ceil(D/64))`` uint64 rows — the :func:`pack` byte layout
    zero-padded to a word boundary and viewed 64 bits at a time. This is
    the compute layout of the packed hot path: XOR + popcount runs one
    machine word per operation instead of one byte.
    """
    arr = np.asarray(hvs)
    byte_rows = np.packbits(arr > 0, axis=-1)
    width = packed_word_width(arr.shape[-1])
    out_bytes = np.zeros(arr.shape[:-1] + (width * 8,), dtype=np.uint8)
    out_bytes[..., : byte_rows.shape[-1]] = byte_rows
    return out_bytes.view(PACKED_WORD_DTYPE)


def unpack_words(packed: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_words` for hypervectors of dimension ``dim``.

    Accepts only the uint64 word layout: value-casting a :func:`pack`
    byte row would interleave seven zero bytes per real byte and decode
    to garbage, so the mix-up raises instead (same no-coercion rule as
    the Hamming kernels).
    """
    arr = np.asarray(packed)
    if arr.dtype != PACKED_WORD_DTYPE:
        raise DimensionMismatchError(
            f"unpack_words takes the {np.dtype(PACKED_WORD_DTYPE)} word "
            f"layout, got {arr.dtype} (byte rows unpack with unpack())"
        )
    bits = np.unpackbits(np.ascontiguousarray(arr).view(np.uint8), axis=-1, count=dim)
    return (2 * bits.astype(np.int16) - 1).astype(BIPOLAR_DTYPE)


def sign_bits(accums: np.ndarray, rng: SeedLike = None) -> np.ndarray:
    """Eq. 3 sign bits of a ``(B, D)`` accumulator batch (``+1 -> True``).

    The single owner of the randomized sign(0) tie-break contract: rows
    are visited first-to-last and each row with ties draws one
    ``choice`` of that row's tie count, so a seeded generator produces
    the same stream whether the caller materializes dense signs
    (:func:`repro.encoding.engine.binarize_batch`) or packs bits
    directly (:func:`pack_signs`) — which is exactly why both funnel
    through here.
    """
    arr = np.asarray(accums)
    if arr.ndim != 2:
        raise DimensionMismatchError(
            f"sign_bits takes a (B, D) accumulator batch, got {arr.shape}"
        )
    bits = arr > 0
    zeros = arr == 0
    tie_rows = np.flatnonzero(zeros.any(axis=-1))
    if tie_rows.size:
        gen = resolve_rng(rng)
        for row in tie_rows:
            mask = zeros[row]
            draws = gen.choice(_PM_ONE, size=int(np.count_nonzero(mask)))
            bits[row, mask] = draws > 0
    return bits


def pack_signs(
    accums: np.ndarray,
    rng: SeedLike = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Fused Eq. 3 binarize + word-pack of a ``(B, D)`` accumulator batch.

    Bit-exact with ``pack_words(binarize_batch(accums, rng))`` — both
    share :func:`sign_bits`, so the tie stream is identical by
    construction — but the ``(B, D)`` int8 intermediate is never
    materialized: signs go straight into uint64 bit-planes. This is the
    final fused stage of the packed encoding path.

    ``out`` may supply a preallocated ``(B, ceil(D/64))`` uint64 buffer
    (e.g. a chunk slice of the full batch output) to write into.
    """
    arr = np.asarray(accums)
    bits = sign_bits(arr, rng)
    width = packed_word_width(arr.shape[1])
    if out is None:
        out = np.zeros((arr.shape[0], width), dtype=PACKED_WORD_DTYPE)
    else:
        if out.shape != (arr.shape[0], width) or out.dtype != PACKED_WORD_DTYPE:
            raise DimensionMismatchError(
                f"out buffer must be ({arr.shape[0]}, {width}) "
                f"{PACKED_WORD_DTYPE().dtype}, got {out.shape} {out.dtype}"
            )
        out[:] = 0
    byte_rows = np.packbits(bits, axis=-1)
    out.view(np.uint8)[:, : byte_rows.shape[1]] = byte_rows
    return out


def hamming_packed(a: np.ndarray, b: np.ndarray, dim: int) -> np.ndarray | float:
    """Normalized Hamming distance between packed HVs, broadcasting.

    ``a`` may be a ``(K, W)`` stack and ``b`` a ``(W,)`` row (or vice
    versa, or any mutually broadcastable stack shapes); the XOR
    broadcasts. Operands may use either packed layout (uint8 byte rows
    or uint64 bit-planes) but must agree. ``dim`` is the unpacked
    dimension used for normalization (trailing pad bits are identical
    after packing, so they never contribute to the XOR).
    """
    a_arr = _as_packed(a)
    b_arr = _as_packed(b)
    _check_layouts(a_arr, b_arr)
    if a_arr.shape[-1] != b_arr.shape[-1]:
        raise DimensionMismatchError(
            f"packed widths differ: {a_arr.shape[-1]} vs {b_arr.shape[-1]}"
        )
    diff = np.bitwise_xor(a_arr, b_arr)
    result = _popcount_bytes(diff) / dim
    return float(result) if np.ndim(result) == 0 else result


#: Backward-compatible alias of :func:`hamming_packed` (pre-batch name).
packed_hamming = hamming_packed


def pairwise_hamming_packed(
    a: np.ndarray,
    b: np.ndarray | None = None,
    dim: int | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """All-pairs normalized Hamming distances of packed stacks.

    ``a`` is a ``(Ka, W)`` packed stack, ``b`` a ``(Kb, W)`` one (``a``
    itself when omitted); the result is ``(Ka, Kb)``. Both layouts
    (uint8 byte rows, uint64 bit-planes) are accepted as long as the two
    stacks agree. Work is tiled in row blocks of ``a`` (``chunk_size``
    rows, default 256) so the ``(chunk, Kb, W)`` XOR tile stays
    cache-sized however large the pools get — this is the kernel behind
    large candidate-pool scoring in the reasoning attack and behind
    packed classifier inference.
    """
    a_arr = _as_packed(a)
    b_arr = a_arr if b is None else _as_packed(b)
    _check_layouts(a_arr, b_arr)
    if a_arr.ndim != 2 or b_arr.ndim != 2:
        raise DimensionMismatchError(
            f"expected packed (K, W) stacks, got {a_arr.shape} and {b_arr.shape}"
        )
    if a_arr.shape[1] != b_arr.shape[1]:
        raise DimensionMismatchError(
            f"packed widths differ: {a_arr.shape[1]} vs {b_arr.shape[1]}"
        )
    if dim is None:
        # Same contract as every sibling kernel: shape/metadata problems
        # surface as DimensionMismatchError, never a bare ValueError.
        raise DimensionMismatchError("dim (unpacked dimension) is required")
    chunk = max(1, 256 if chunk_size is None else int(chunk_size))
    out = np.empty((a_arr.shape[0], b_arr.shape[0]), dtype=np.float64)
    for start in range(0, a_arr.shape[0], chunk):
        stop = min(start + chunk, a_arr.shape[0])
        diff = np.bitwise_xor(a_arr[start:stop, None, :], b_arr[None, :, :])
        out[start:stop] = _popcount_bytes(diff) / dim
    return out


class PackedPool:
    """A pool of bipolar HVs stored packed, remembering its dimension.

    Thin convenience wrapper used by the memory model: keeps the packed
    rows, answers Hamming queries, and reports its storage footprint.
    """

    def __init__(self, hvs: np.ndarray) -> None:
        arr = np.asarray(hvs)
        if arr.ndim != 2:
            raise ValueError(f"expected a (K, D) pool, got shape {arr.shape}")
        self.dim = int(arr.shape[1])
        self.rows = pack(arr)

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    @property
    def nbytes(self) -> int:
        """Packed storage footprint in bytes."""
        return int(self.rows.nbytes)

    def unpack_row(self, index: int) -> np.ndarray:
        """Return row ``index`` as a bipolar ``(D,)`` vector."""
        return unpack(self.rows[index], self.dim)

    def unpack_all(self) -> np.ndarray:
        """Return the whole pool as a bipolar ``(K, D)`` matrix."""
        return unpack(self.rows, self.dim)

    def hamming_to(self, hv: np.ndarray) -> np.ndarray:
        """Normalized Hamming distance of every row to a bipolar ``hv``."""
        return hamming_packed(self.rows, pack(hv), self.dim)

    def hamming_to_many(
        self, hvs: np.ndarray, chunk_size: int | None = None
    ) -> np.ndarray:
        """Distances of every row to each of ``(B, D)`` bipolar HVs.

        Returns a ``(K, B)`` matrix via the chunked pairwise kernel.
        """
        return pairwise_hamming_packed(
            self.rows, pack(np.atleast_2d(hvs)), self.dim, chunk_size
        )

    def nearest(self, hv: np.ndarray) -> int:
        """Index of the pool row closest to a bipolar ``hv``."""
        return int(np.argmin(self.hamming_to(hv)))
