"""Statistical property checks for hypervector pools.

These helpers back the library's invariants (used heavily by the tests
and by :mod:`repro.experiments`):

* a feature/base pool must be quasi-orthogonal (Eq. 1a);
* a level memory must be linear (Eq. 1b) with orthogonal extremes;
* HDLock-derived feature HVs must remain quasi-orthogonal so accuracy is
  preserved (paper Sec. 5.2 / Fig. 8 argument).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hv.level import level_profile
from repro.hv.similarity import pairwise_hamming


@dataclass(frozen=True)
class OrthogonalityReport:
    """Summary of how close a pool is to pairwise orthogonality.

    ``max_abs_deviation`` is the worst ``|hamming - 0.5|`` over all pairs;
    for i.i.d. random bipolar HVs it concentrates near
    ``~4 / (2 sqrt(D))`` for pools of a few thousand rows.
    """

    pairs: int
    mean_distance: float
    std_distance: float
    max_abs_deviation: float

    def is_quasi_orthogonal(self, tolerance: float) -> bool:
        """True when every pair is within ``tolerance`` of 0.5."""
        return self.max_abs_deviation <= tolerance


def orthogonality_report(pool: np.ndarray) -> OrthogonalityReport:
    """Measure pairwise-orthogonality statistics of a ``(K, D)`` pool."""
    dist = pairwise_hamming(pool)
    iu = np.triu_indices(dist.shape[0], k=1)
    off_diag = dist[iu]
    if off_diag.size == 0:
        return OrthogonalityReport(0, 0.5, 0.0, 0.0)
    return OrthogonalityReport(
        pairs=int(off_diag.size),
        mean_distance=float(off_diag.mean()),
        std_distance=float(off_diag.std()),
        max_abs_deviation=float(np.abs(off_diag - 0.5).max()),
    )


@dataclass(frozen=True)
class LevelLinearityReport:
    """Fit of a level memory against the Eq. 1b straight line."""

    levels: int
    extreme_distance: float
    max_profile_error: float

    def is_linear(self, tolerance: float) -> bool:
        """True when the distance-to-level-0 profile deviates from the
        ideal line by at most ``tolerance`` at every level."""
        return self.max_profile_error <= tolerance


def level_linearity_report(level_matrix: np.ndarray) -> LevelLinearityReport:
    """Compare a level memory's distance profile to the ideal Eq. 1b line."""
    mat = np.asarray(level_matrix)
    m = mat.shape[0]
    profile = level_profile(mat)
    ideal = 0.5 * np.arange(m) / max(m - 1, 1)
    return LevelLinearityReport(
        levels=m,
        extreme_distance=float(profile[-1]),
        max_profile_error=float(np.abs(profile - ideal).max()),
    )


def expected_random_deviation(dim: int) -> float:
    """One standard deviation of the Hamming distance between two random
    bipolar HVs of dimension ``dim`` (binomial: ``1 / (2 sqrt(D))``)."""
    return 0.5 / float(np.sqrt(dim))
