"""Random hypervector generation.

Random bipolar vectors in high dimension are *quasi-orthogonal*: the
normalized Hamming distance between two independent draws concentrates
around 0.5 with standard deviation ``1 / (2 sqrt(D))`` (binomial). The
paper relies on this for feature hypervectors (Eq. 1a) and for the HDLock
base-hypervector pool (Sec. 4.1).
"""

from __future__ import annotations

import numpy as np

from repro.hv.ops import BIPOLAR_DTYPE, DEFAULT_DIM
from repro.utils.rng import SeedLike, resolve_rng


def random_hv(dim: int = DEFAULT_DIM, rng: SeedLike = None) -> np.ndarray:
    """Draw one uniform bipolar hypervector of dimension ``dim``."""
    return random_pool(1, dim, rng)[0]


def random_pool(count: int, dim: int = DEFAULT_DIM, rng: SeedLike = None) -> np.ndarray:
    """Draw ``count`` independent bipolar HVs as a ``(count, dim)`` matrix.

    Rows are i.i.d. uniform over ``{-1, +1}^dim`` and therefore mutually
    quasi-orthogonal; this is how both the feature memory of a plain HDC
    model and the public base pool of HDLock are generated.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    gen = resolve_rng(rng)
    bits = gen.integers(0, 2, size=(count, dim), dtype=np.int8)
    return (2 * bits - 1).astype(BIPOLAR_DTYPE)


def shuffled_copy(
    pool: np.ndarray, rng: SeedLike = None
) -> tuple[np.ndarray, np.ndarray]:
    """Return a row-shuffled copy of ``pool`` plus the permutation used.

    This models publishing the *unindexed* hypervector memory of the
    threat model (Sec. 3.1): the attacker sees the rows of the returned
    matrix but not ``perm``, where ``shuffled[j] == pool[perm[j]]``.
    """
    gen = resolve_rng(rng)
    perm = gen.permutation(pool.shape[0])
    return pool[perm].copy(), perm
