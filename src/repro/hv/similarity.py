"""Similarity metrics between hypervectors.

The paper uses two metrics (Sec. 2):

* **normalized Hamming distance** for binary (bipolar) models —
  fraction of positions where two HVs disagree. For bipolar vectors it
  relates to the dot product by ``hamming = (1 - dot/(D)) / 2``.
* **cosine similarity** for non-binary models — the angle between the
  integer-valued encodings.

All functions broadcast a ``(K, D)`` stack against a ``(D,)`` vector so
attack code can score a whole candidate pool in one call.
"""

from __future__ import annotations

import numpy as np

from repro.hv.ops import ACCUM_DTYPE, check_same_dim


def dot(a: np.ndarray, b: np.ndarray) -> np.ndarray | np.integer:
    """Integer dot product along the last axis (no normalization)."""
    check_same_dim(a, b)
    return np.sum(
        np.asarray(a, dtype=ACCUM_DTYPE) * np.asarray(b, dtype=ACCUM_DTYPE), axis=-1
    )


def hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray | float:
    """Normalized Hamming distance between bipolar HVs, in ``[0, 1]``.

    Orthogonal HVs score ~0.5 (Eq. 1a); identical HVs score 0. For a
    ``(K, D)`` stack vs a ``(D,)`` vector, returns a length-``K`` array.
    """
    d = check_same_dim(a, b)
    mismatches = np.count_nonzero(np.not_equal(a, b), axis=-1)
    result = mismatches / d
    return float(result) if np.ndim(result) == 0 else result


def cosine(a: np.ndarray, b: np.ndarray) -> np.ndarray | float:
    """Cosine similarity along the last axis, in ``[-1, 1]``.

    A zero vector has undefined angle; it scores 0 against everything
    (this situation only arises for degenerate all-tie accumulations).
    """
    check_same_dim(a, b)
    af = np.asarray(a, dtype=np.float64)
    bf = np.asarray(b, dtype=np.float64)
    num = np.sum(af * bf, axis=-1)
    denom = np.linalg.norm(af, axis=-1) * np.linalg.norm(bf, axis=-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(denom == 0, 0.0, num / np.where(denom == 0, 1.0, denom))
    return float(result) if np.ndim(result) == 0 else result


def pairwise_hamming(pool: np.ndarray, chunk_size: int | None = None) -> np.ndarray:
    """All-pairs normalized Hamming distance matrix of a ``(K, D)`` pool.

    Computed through the Gram matrix (``hamming = (1 - gram/D) / 2``)
    which is a BLAS ``K x K`` matmul instead of ``K^2`` vector passes —
    exact for bipolar pools since every dot product is an integer well
    inside the float64 mantissa. Rows are processed in ``chunk_size``
    blocks (default: all at once below 4096 rows, 1024-row tiles above),
    which bounds the per-tile gram temporary; note the pool itself is
    still cast to one full ``(K, D)`` float64 copy and the ``(K, K)``
    output is dense — for pools too large for that, use the bit-packed
    :func:`repro.hv.packing.pairwise_hamming_packed` (8x leaner inputs).
    The attacker uses this on the published value-HV pool to find the
    two extreme levels (Sec. 3.2, "Value Hypervector Extraction").
    """
    mat = np.asarray(pool)
    if mat.ndim != 2:
        raise ValueError(f"expected a (K, D) pool, got shape {mat.shape}")
    k, d = mat.shape
    if chunk_size is None:
        chunk_size = k if k <= 4096 else 1024
    chunk = max(1, int(chunk_size))
    mat_f = mat.astype(np.float64, copy=False)
    out = np.empty((k, k), dtype=np.float64)
    for start in range(0, k, chunk):
        stop = min(start + chunk, k)
        gram = mat_f[start:stop] @ mat_f.T
        out[start:stop] = (1.0 - gram / d) / 2.0
    return out


def nearest(pool: np.ndarray, target: np.ndarray, metric: str = "hamming") -> int:
    """Index of the pool row most similar to ``target``.

    ``metric`` is ``"hamming"`` (smaller is closer, binary models) or
    ``"cosine"`` (larger is closer, non-binary models).
    """
    if metric == "hamming":
        return int(np.argmin(hamming(pool, target)))
    if metric == "cosine":
        return int(np.argmax(cosine(pool, target)))
    raise ValueError(f"unknown metric {metric!r}; expected 'hamming' or 'cosine'")


def is_bipolar(arr: np.ndarray) -> bool:
    """True when every entry of an integer array is -1 or +1.

    The gate for routing Hamming work through the packed XOR-popcount
    kernels: packing collapses 0 and all positive magnitudes onto one
    bit, so only genuinely bipolar data may take the packed path.
    """
    return (
        np.issubdtype(np.asarray(arr).dtype, np.integer)
        and np.asarray(arr).size > 0
        and bool((np.abs(arr) == 1).all())
    )


def cosine_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs cosine similarity of ``(Ka, D)`` against ``(Kb, D)``.

    One BLAS matmul plus two norm passes instead of ``Ka * Kb`` vector
    dots. Rows with zero norm score 0 against everything, matching
    :func:`cosine`'s degenerate-vector convention — classifier
    inference and attack guess scoring both rely on this helper so the
    convention lives in exactly one place.
    """
    a_f = np.asarray(a, dtype=np.float64)
    b_f = np.asarray(b, dtype=np.float64)
    if a_f.ndim != 2 or b_f.ndim != 2:
        raise ValueError(
            f"expected (K, D) stacks, got shapes {a_f.shape} and {b_f.shape}"
        )
    check_same_dim(a_f, b_f)
    num = a_f @ b_f.T
    denom = np.linalg.norm(a_f, axis=1)[:, None] * np.linalg.norm(b_f, axis=1)
    return np.where(denom == 0, 0.0, num / np.where(denom == 0, 1.0, denom))


def nearest_batch(
    pool: np.ndarray,
    targets: np.ndarray,
    metric: str = "hamming",
    chunk_size: int | None = None,
) -> np.ndarray:
    """Index of the most similar pool row for each of ``(B, D)`` targets.

    The batched form of :func:`nearest`: one call scores every target
    against every pool row and returns a length-``B`` index array.
    Bipolar pools under the Hamming metric go through the bit-packed
    XOR-popcount kernel (8x less memory traffic, tiled by
    ``chunk_size``); everything else uses dense broadcasting. Ties
    resolve to the lowest index, exactly like per-target
    :func:`nearest`.
    """
    pool_arr = np.asarray(pool)
    targets_arr = np.atleast_2d(np.asarray(targets))
    if pool_arr.ndim != 2:
        raise ValueError(f"expected a (K, D) pool, got shape {pool_arr.shape}")
    check_same_dim(pool_arr, targets_arr)
    if targets_arr.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    if metric == "hamming":
        if is_bipolar(pool_arr) and is_bipolar(targets_arr):
            from repro.hv.packing import pack_words, pairwise_hamming_packed

            distances = pairwise_hamming_packed(
                pack_words(targets_arr),
                pack_words(pool_arr),
                pool_arr.shape[1],
                chunk_size,
            )
        else:
            distances = np.stack([hamming(pool_arr, t) for t in targets_arr])
        return np.argmin(distances, axis=1)
    if metric == "cosine":
        similarities = np.stack([cosine(pool_arr, t) for t in targets_arr])
        return np.argmax(similarities, axis=1)
    raise ValueError(f"unknown metric {metric!r}; expected 'hamming' or 'cosine'")
