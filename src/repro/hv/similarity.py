"""Similarity metrics between hypervectors.

The paper uses two metrics (Sec. 2):

* **normalized Hamming distance** for binary (bipolar) models —
  fraction of positions where two HVs disagree. For bipolar vectors it
  relates to the dot product by ``hamming = (1 - dot/(D)) / 2``.
* **cosine similarity** for non-binary models — the angle between the
  integer-valued encodings.

All functions broadcast a ``(K, D)`` stack against a ``(D,)`` vector so
attack code can score a whole candidate pool in one call.
"""

from __future__ import annotations

import numpy as np

from repro.hv.ops import ACCUM_DTYPE, check_same_dim


def dot(a: np.ndarray, b: np.ndarray) -> np.ndarray | np.integer:
    """Integer dot product along the last axis (no normalization)."""
    check_same_dim(a, b)
    return np.sum(
        np.asarray(a, dtype=ACCUM_DTYPE) * np.asarray(b, dtype=ACCUM_DTYPE), axis=-1
    )


def hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray | float:
    """Normalized Hamming distance between bipolar HVs, in ``[0, 1]``.

    Orthogonal HVs score ~0.5 (Eq. 1a); identical HVs score 0. For a
    ``(K, D)`` stack vs a ``(D,)`` vector, returns a length-``K`` array.
    """
    d = check_same_dim(a, b)
    mismatches = np.count_nonzero(np.not_equal(a, b), axis=-1)
    result = mismatches / d
    return float(result) if np.ndim(result) == 0 else result


def cosine(a: np.ndarray, b: np.ndarray) -> np.ndarray | float:
    """Cosine similarity along the last axis, in ``[-1, 1]``.

    A zero vector has undefined angle; it scores 0 against everything
    (this situation only arises for degenerate all-tie accumulations).
    """
    check_same_dim(a, b)
    af = np.asarray(a, dtype=np.float64)
    bf = np.asarray(b, dtype=np.float64)
    num = np.sum(af * bf, axis=-1)
    denom = np.linalg.norm(af, axis=-1) * np.linalg.norm(bf, axis=-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(denom == 0, 0.0, num / np.where(denom == 0, 1.0, denom))
    return float(result) if np.ndim(result) == 0 else result


def pairwise_hamming(pool: np.ndarray) -> np.ndarray:
    """All-pairs normalized Hamming distance matrix of a ``(K, D)`` pool.

    Computed through the Gram matrix (``hamming = (1 - gram/D) / 2``)
    which is a single ``K x K`` matmul instead of ``K^2`` vector passes.
    The attacker uses this on the published value-HV pool to find the two
    extreme levels (Sec. 3.2, "Value Hypervector Extraction").
    """
    mat = np.asarray(pool, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError(f"expected a (K, D) pool, got shape {mat.shape}")
    d = mat.shape[1]
    gram = mat @ mat.T
    return (1.0 - gram / d) / 2.0


def nearest(pool: np.ndarray, target: np.ndarray, metric: str = "hamming") -> int:
    """Index of the pool row most similar to ``target``.

    ``metric`` is ``"hamming"`` (smaller is closer, binary models) or
    ``"cosine"`` (larger is closer, non-binary models).
    """
    if metric == "hamming":
        return int(np.argmin(hamming(pool, target)))
    if metric == "cosine":
        return int(np.argmax(cosine(pool, target)))
    raise ValueError(f"unknown metric {metric!r}; expected 'hamming' or 'cosine'")
