"""Memory model: item memories, the public/secure split, HDLock keys."""

from repro.memory.item_memory import FeatureMemory, LevelMemory
from repro.memory.key import LockKey, SubKey
from repro.memory.secure import OWNER, AccessRecord, PublicMemory, SecureMemory

__all__ = [
    "FeatureMemory",
    "LevelMemory",
    "LockKey",
    "SubKey",
    "PublicMemory",
    "SecureMemory",
    "AccessRecord",
    "OWNER",
]
