"""Memory model: item memories, the public/secure split, HDLock keys."""

from repro.memory.item_memory import FeatureMemory, LevelMemory
from repro.memory.key import KeyBatch, LockKey, SubKey, storage_bits_per_key
from repro.memory.secure import OWNER, AccessRecord, PublicMemory, SecureMemory

__all__ = [
    "FeatureMemory",
    "LevelMemory",
    "KeyBatch",
    "LockKey",
    "SubKey",
    "storage_bits_per_key",
    "PublicMemory",
    "SecureMemory",
    "AccessRecord",
    "OWNER",
]
