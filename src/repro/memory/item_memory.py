"""Item memories: the indexed hypervector stores of an HDC model.

A plain HDC classifier owns two item memories (paper Fig. 1):

* :class:`FeatureMemory` — ``N`` quasi-orthogonal feature hypervectors,
  one per input feature index (Eq. 1a);
* :class:`LevelMemory` — ``M`` linearly correlated value hypervectors,
  one per discretized feature value (Eq. 1b).

The *index mapping* (which row belongs to which feature / level) is the
model IP the paper is about: the threat model publishes the rows but
hides the mapping (see :mod:`repro.memory.secure`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hv.level import level_hvs
from repro.hv.random import random_pool
from repro.utils.rng import SeedLike


class FeatureMemory:
    """Indexed store of ``N`` feature hypervectors (``FeaHV_1..FeaHV_N``)."""

    def __init__(self, matrix: np.ndarray) -> None:
        arr = np.asarray(matrix)
        if arr.ndim != 2:
            raise ConfigurationError(
                f"feature memory needs a (N, D) matrix, got shape {arr.shape}"
            )
        self._matrix = arr

    @classmethod
    def random(cls, n_features: int, dim: int, rng: SeedLike = None) -> "FeatureMemory":
        """Generate ``n_features`` fresh quasi-orthogonal feature HVs."""
        return cls(random_pool(n_features, dim, rng))

    @property
    def n_features(self) -> int:
        """Number of feature hypervectors ``N``."""
        return int(self._matrix.shape[0])

    @property
    def dim(self) -> int:
        """Hypervector dimensionality ``D``."""
        return int(self._matrix.shape[1])

    @property
    def matrix(self) -> np.ndarray:
        """The full ``(N, D)`` matrix, row ``i`` = ``FeaHV_{i+1}``."""
        return self._matrix

    def vector(self, feature_index: int) -> np.ndarray:
        """The hypervector of one feature index (0-based)."""
        return self._matrix[feature_index]

    def remapped(self, permutation: np.ndarray) -> "FeatureMemory":
        """A new memory whose row ``i`` is this memory's row
        ``permutation[i]`` — used to build an attacker's reconstructed
        memory from a recovered mapping."""
        perm = np.asarray(permutation)
        if perm.shape != (self.n_features,):
            raise DimensionMismatchError(
                f"permutation length {perm.shape} != n_features {self.n_features}"
            )
        return FeatureMemory(self._matrix[perm].copy())


class LevelMemory:
    """Indexed store of ``M`` value hypervectors (``ValHV_1..ValHV_M``).

    Row ``v`` encodes discretized value level ``v`` (0-based). Rows obey
    the linear-distance law of Eq. 1b.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        arr = np.asarray(matrix)
        if arr.ndim != 2 or arr.shape[0] < 2:
            raise ConfigurationError(
                f"level memory needs a (M>=2, D) matrix, got shape {arr.shape}"
            )
        self._matrix = arr

    @classmethod
    def random(cls, levels: int, dim: int, rng: SeedLike = None) -> "LevelMemory":
        """Generate a fresh ``levels``-step linear level memory."""
        return cls(level_hvs(levels, dim, rng))

    @property
    def levels(self) -> int:
        """Number of discretized value levels ``M``."""
        return int(self._matrix.shape[0])

    @property
    def dim(self) -> int:
        """Hypervector dimensionality ``D``."""
        return int(self._matrix.shape[1])

    @property
    def matrix(self) -> np.ndarray:
        """The full ``(M, D)`` matrix, row ``v`` = ``ValHV_{v+1}``."""
        return self._matrix

    @property
    def minimum(self) -> np.ndarray:
        """``ValHV_1`` — hypervector of the minimum value level."""
        return self._matrix[0]

    @property
    def maximum(self) -> np.ndarray:
        """``ValHV_M`` — hypervector of the maximum value level."""
        return self._matrix[-1]

    def vector(self, level: int) -> np.ndarray:
        """The hypervector of one value level (0-based)."""
        return self._matrix[level]

    def remapped(self, permutation: np.ndarray) -> "LevelMemory":
        """A new memory with rows re-ordered by ``permutation`` (level
        ``v`` of the result is this memory's row ``permutation[v]``)."""
        perm = np.asarray(permutation)
        if perm.shape != (self.levels,):
            raise DimensionMismatchError(
                f"permutation length {perm.shape} != levels {self.levels}"
            )
        return LevelMemory(self._matrix[perm].copy())
