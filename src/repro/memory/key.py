"""HDLock key containers.

An HDLock key (paper Sec. 4.1) regulates how each feature hypervector is
derived from the public base pool::

    FeaHV_i = prod_{l=1..L} rho^{k_{i,l}}(B_{index(i,l)})

so the key stores, for every feature ``i`` and layer ``l``, the base
index ``index(i, l)`` in ``[0, P)`` and the rotation ``k_{i,l}`` in
``[0, D)``. That is ``N * L * (ceil(log2 P) + ceil(log2 D))`` bits —
kilobits for paper-scale models, versus megabytes for the hypervectors
themselves, which is why the key fits in tamper-proof memory.

Two representations coexist:

* :class:`LockKey` is the single-device container. It is array-backed:
  the authoritative state is a pair of ``(N, L)`` integer arrays, and
  the :class:`SubKey` object view is materialized lazily only when a
  caller actually iterates ``key.subkeys`` — bulk flows
  (:func:`repro.hdlock.keygen.generate_keys`, the key store) never pay
  for ``N`` tuple objects per device.
* :class:`KeyBatch` is the fleet container: ``(n_devices, N, L)``
  index/rotation arrays plus the shared pool/dimension metadata. It is
  what vectorized bulk keygen returns and what
  :class:`repro.hdlock.keystore.KeyStore` appends from.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import KeyFormatError


def storage_bits_per_key(
    n_features: int, layers: int, pool_size: int, dim: int
) -> int:
    """Information-theoretic at-rest size of one key, in bits.

    ``N * L * (ceil(log2 P) + ceil(log2 D))`` — the quantity compared
    against the megabyte-scale hypervector memory in Sec. 3.1, and the
    floor the packed key store is measured against.
    """
    index_bits = max(math.ceil(math.log2(pool_size)), 1)
    rotation_bits = max(math.ceil(math.log2(dim)), 1)
    return n_features * layers * (index_bits + rotation_bits)


def _readonly_view(arr: np.ndarray) -> np.ndarray:
    """A non-writeable view of ``arr`` (the base stays untouched)."""
    view = arr.view()
    view.flags.writeable = False
    return view


@dataclass(frozen=True)
class SubKey:
    """The key material of a single feature: ``L`` (index, rotation) pairs.

    ``indices[l]`` selects the base hypervector of layer ``l`` from the
    public pool; ``rotations[l]`` is the circular-rotation amount applied
    to it before binding.
    """

    indices: Tuple[int, ...]
    rotations: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.rotations):
            raise KeyFormatError(
                f"subkey has {len(self.indices)} indices but "
                f"{len(self.rotations)} rotations"
            )
        if len(self.indices) == 0:
            raise KeyFormatError("subkey needs at least one layer")

    @property
    def layers(self) -> int:
        """Number of key layers ``L`` of this subkey."""
        return len(self.indices)

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(index, rotation)`` pairs layer by layer."""
        return zip(self.indices, self.rotations, strict=True)


class LockKey:
    """The full HDLock key: per-feature (index, rotation) layers plus the
    pool/dimension metadata needed to validate and apply it.

    Array-backed: ``(N, L)`` index/rotation arrays are the authoritative
    state; :attr:`subkeys` materializes the object view on first access.
    """

    def __init__(
        self,
        subkeys: Sequence[SubKey],
        pool_size: int,
        dim: int,
    ) -> None:
        if not subkeys:
            raise KeyFormatError("a lock key needs at least one subkey")
        layer_counts = {sk.layers for sk in subkeys}
        if len(layer_counts) != 1:
            raise KeyFormatError(
                f"all subkeys must share one layer count, got {sorted(layer_counts)}"
            )
        indices = np.array([sk.indices for sk in subkeys], dtype=np.int64)
        rotations = np.array([sk.rotations for sk in subkeys], dtype=np.int64)
        self._bind(indices, rotations, pool_size, dim)
        self._subkeys: Tuple[SubKey, ...] | None = tuple(subkeys)

    def _bind(
        self,
        indices: np.ndarray,
        rotations: np.ndarray,
        pool_size: int,
        dim: int,
    ) -> None:
        self._indices = _readonly_view(indices)
        self._rotations = _readonly_view(rotations)
        self.pool_size = int(pool_size)
        self.dim = int(dim)
        self._validate_ranges()

    def _validate_ranges(self) -> None:
        for name, arr, bound in (
            ("base index", self._indices, self.pool_size),
            ("rotation", self._rotations, self.dim),
        ):
            if int(arr.min()) < 0 or int(arr.max()) >= bound:
                feature, layer = (
                    int(v) for v in np.argwhere((arr < 0) | (arr >= bound))[0]
                )
                raise KeyFormatError(
                    f"feature {feature}: {name} {int(arr[feature, layer])} "
                    f"outside [0, {bound})"
                )

    @property
    def subkeys(self) -> Tuple[SubKey, ...]:
        """Object view of the key, one :class:`SubKey` per feature.

        Built lazily — keys created through :meth:`from_arrays` (the
        bulk path) never materialize it unless a caller asks.
        """
        if self._subkeys is None:
            self._subkeys = tuple(
                SubKey(tuple(int(v) for v in idx), tuple(int(v) for v in rot))
                for idx, rot in zip(self._indices, self._rotations, strict=True)
            )
        return self._subkeys

    @property
    def n_features(self) -> int:
        """Number of features ``N`` this key derives hypervectors for."""
        return int(self._indices.shape[0])

    @property
    def layers(self) -> int:
        """Number of key layers ``L``."""
        return int(self._indices.shape[1])

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, rotations)`` as two ``(N, L)`` int arrays,
        the layout the vectorized feature factory consumes.

        Zero-copy: the returned arrays are read-only views of the key's
        own state, not fresh allocations.
        """
        return self._indices, self._rotations

    @classmethod
    def from_arrays(
        cls, indices: np.ndarray, rotations: np.ndarray, pool_size: int, dim: int
    ) -> "LockKey":
        """Build a key from ``(N, L)`` index and rotation arrays.

        Zero-copy fast path for bulk flows: integer input arrays are
        adopted as-is (no per-:class:`SubKey` object materialization,
        no element copies); validation runs vectorized.
        """
        idx = np.asarray(indices)
        rot = np.asarray(rotations)
        if idx.shape != rot.shape or idx.ndim != 2:
            raise KeyFormatError(
                f"index/rotation arrays must share an (N, L) shape, got "
                f"{idx.shape} and {rot.shape}"
            )
        if idx.shape[0] == 0:
            raise KeyFormatError("a lock key needs at least one subkey")
        if idx.shape[1] == 0:
            raise KeyFormatError("subkey needs at least one layer")
        if not np.issubdtype(idx.dtype, np.integer):
            idx = idx.astype(np.int64)
        if not np.issubdtype(rot.dtype, np.integer):
            rot = rot.astype(np.int64)
        key = cls.__new__(cls)
        key._bind(idx, rot, pool_size, dim)
        key._subkeys = None
        return key

    def storage_bits(self) -> int:
        """Secure-memory footprint of the key in bits.

        ``N * L * (ceil(log2 P) + ceil(log2 D))`` — the quantity compared
        against the megabyte-scale hypervector memory in Sec. 3.1.
        """
        return storage_bits_per_key(
            self.n_features, self.layers, self.pool_size, self.dim
        )

    def to_json(self) -> str:
        """Serialize to a JSON string (owner-side key escrow format)."""
        payload = {
            "pool_size": self.pool_size,
            "dim": self.dim,
            "indices": [[int(v) for v in row] for row in self._indices],
            "rotations": [[int(v) for v in row] for row in self._rotations],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "LockKey":
        """Parse a key serialized with :meth:`to_json`."""
        try:
            payload = json.loads(text)
            indices = np.array(payload["indices"], dtype=np.int64)
            rotations = np.array(payload["rotations"], dtype=np.int64)
            return cls.from_arrays(
                indices, rotations, payload["pool_size"], payload["dim"]
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise KeyFormatError(f"malformed lock key JSON: {exc}") from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LockKey):
            return NotImplemented
        return (
            self.pool_size == other.pool_size
            and self.dim == other.dim
            and np.array_equal(self._indices, other._indices)
            and np.array_equal(self._rotations, other._rotations)
        )

    def __repr__(self) -> str:
        return (
            f"LockKey(n_features={self.n_features}, layers={self.layers}, "
            f"pool_size={self.pool_size}, dim={self.dim})"
        )


class KeyBatch:
    """A fleet of HDLock keys sharing one (N, L, P, D) shape.

    Holds ``(n_devices, N, L)`` index and rotation arrays — the output
    of vectorized bulk keygen and the input of the packed key store.
    Individual devices materialize as :class:`LockKey` on demand via the
    zero-copy :meth:`key` path.
    """

    def __init__(
        self,
        indices: np.ndarray,
        rotations: np.ndarray,
        pool_size: int,
        dim: int,
    ) -> None:
        idx = np.asarray(indices)
        rot = np.asarray(rotations)
        if idx.shape != rot.shape or idx.ndim != 3:
            raise KeyFormatError(
                f"batch index/rotation arrays must share an "
                f"(n_devices, N, L) shape, got {idx.shape} and {rot.shape}"
            )
        if 0 in idx.shape:
            raise KeyFormatError(
                f"batch needs n_devices, N and L all >= 1, got shape {idx.shape}"
            )
        self.pool_size = int(pool_size)
        self.dim = int(dim)
        if idx.size and (
            int(idx.min()) < 0
            or int(idx.max()) >= self.pool_size
            or int(rot.min()) < 0
            or int(rot.max()) >= self.dim
        ):
            raise KeyFormatError(
                f"batch entries outside pool [0, {self.pool_size}) x "
                f"rotation [0, {self.dim}) ranges"
            )
        self.indices = _readonly_view(idx)
        self.rotations = _readonly_view(rot)

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    @property
    def n_devices(self) -> int:
        """Number of per-device keys in the batch."""
        return len(self)

    @property
    def n_features(self) -> int:
        """Number of features ``N`` each key covers."""
        return int(self.indices.shape[1])

    @property
    def layers(self) -> int:
        """Key depth ``L``."""
        return int(self.indices.shape[2])

    def key(self, device_id: int) -> LockKey:
        """The :class:`LockKey` of one device (zero-copy array views)."""
        n = len(self)
        if not 0 <= device_id < n:
            raise KeyFormatError(
                f"device id {device_id} outside batch of {n} devices"
            )
        return LockKey.from_arrays(
            self.indices[device_id],
            self.rotations[device_id],
            self.pool_size,
            self.dim,
        )

    def __iter__(self) -> Iterator[LockKey]:
        for device_id in range(len(self)):
            yield self.key(device_id)

    def storage_bits(self) -> int:
        """Information-theoretic at-rest size of the whole fleet, bits."""
        return self.n_devices * storage_bits_per_key(
            self.n_features, self.layers, self.pool_size, self.dim
        )

    def __repr__(self) -> str:
        return (
            f"KeyBatch(n_devices={self.n_devices}, "
            f"n_features={self.n_features}, layers={self.layers}, "
            f"pool_size={self.pool_size}, dim={self.dim})"
        )
