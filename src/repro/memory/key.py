"""HDLock key containers.

An HDLock key (paper Sec. 4.1) regulates how each feature hypervector is
derived from the public base pool::

    FeaHV_i = prod_{l=1..L} rho^{k_{i,l}}(B_{index(i,l)})

so the key stores, for every feature ``i`` and layer ``l``, the base
index ``index(i, l)`` in ``[0, P)`` and the rotation ``k_{i,l}`` in
``[0, D)``. That is ``N * L * (ceil(log2 P) + ceil(log2 D))`` bits —
kilobits for paper-scale models, versus megabytes for the hypervectors
themselves, which is why the key fits in tamper-proof memory.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import KeyFormatError


@dataclass(frozen=True)
class SubKey:
    """The key material of a single feature: ``L`` (index, rotation) pairs.

    ``indices[l]`` selects the base hypervector of layer ``l`` from the
    public pool; ``rotations[l]`` is the circular-rotation amount applied
    to it before binding.
    """

    indices: Tuple[int, ...]
    rotations: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.rotations):
            raise KeyFormatError(
                f"subkey has {len(self.indices)} indices but "
                f"{len(self.rotations)} rotations"
            )
        if len(self.indices) == 0:
            raise KeyFormatError("subkey needs at least one layer")

    @property
    def layers(self) -> int:
        """Number of key layers ``L`` of this subkey."""
        return len(self.indices)

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(index, rotation)`` pairs layer by layer."""
        return zip(self.indices, self.rotations)


class LockKey:
    """The full HDLock key: one :class:`SubKey` per feature, plus the
    pool/dimension metadata needed to validate and apply it."""

    def __init__(
        self,
        subkeys: Sequence[SubKey],
        pool_size: int,
        dim: int,
    ) -> None:
        if not subkeys:
            raise KeyFormatError("a lock key needs at least one subkey")
        layer_counts = {sk.layers for sk in subkeys}
        if len(layer_counts) != 1:
            raise KeyFormatError(
                f"all subkeys must share one layer count, got {sorted(layer_counts)}"
            )
        self.subkeys = tuple(subkeys)
        self.pool_size = int(pool_size)
        self.dim = int(dim)
        self._validate_ranges()

    def _validate_ranges(self) -> None:
        for i, sk in enumerate(self.subkeys):
            for index, rotation in sk.pairs():
                if not 0 <= index < self.pool_size:
                    raise KeyFormatError(
                        f"feature {i}: base index {index} outside pool of "
                        f"size {self.pool_size}"
                    )
                if not 0 <= rotation < self.dim:
                    raise KeyFormatError(
                        f"feature {i}: rotation {rotation} outside [0, {self.dim})"
                    )

    @property
    def n_features(self) -> int:
        """Number of features ``N`` this key derives hypervectors for."""
        return len(self.subkeys)

    @property
    def layers(self) -> int:
        """Number of key layers ``L``."""
        return self.subkeys[0].layers

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, rotations)`` as two ``(N, L)`` int arrays,
        the layout the vectorized feature factory consumes."""
        idx = np.array([sk.indices for sk in self.subkeys], dtype=np.int64)
        rot = np.array([sk.rotations for sk in self.subkeys], dtype=np.int64)
        return idx, rot

    @classmethod
    def from_arrays(
        cls, indices: np.ndarray, rotations: np.ndarray, pool_size: int, dim: int
    ) -> "LockKey":
        """Build a key from ``(N, L)`` index and rotation arrays."""
        idx = np.asarray(indices)
        rot = np.asarray(rotations)
        if idx.shape != rot.shape or idx.ndim != 2:
            raise KeyFormatError(
                f"index/rotation arrays must share an (N, L) shape, got "
                f"{idx.shape} and {rot.shape}"
            )
        subkeys = [
            SubKey(tuple(int(v) for v in idx[i]), tuple(int(v) for v in rot[i]))
            for i in range(idx.shape[0])
        ]
        return cls(subkeys, pool_size=pool_size, dim=dim)

    def storage_bits(self) -> int:
        """Secure-memory footprint of the key in bits.

        ``N * L * (ceil(log2 P) + ceil(log2 D))`` — the quantity compared
        against the megabyte-scale hypervector memory in Sec. 3.1.
        """
        index_bits = max(math.ceil(math.log2(self.pool_size)), 1)
        rotation_bits = max(math.ceil(math.log2(self.dim)), 1)
        return self.n_features * self.layers * (index_bits + rotation_bits)

    def to_json(self) -> str:
        """Serialize to a JSON string (owner-side key escrow format)."""
        payload = {
            "pool_size": self.pool_size,
            "dim": self.dim,
            "indices": [list(sk.indices) for sk in self.subkeys],
            "rotations": [list(sk.rotations) for sk in self.subkeys],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "LockKey":
        """Parse a key serialized with :meth:`to_json`."""
        try:
            payload = json.loads(text)
            indices = np.array(payload["indices"], dtype=np.int64)
            rotations = np.array(payload["rotations"], dtype=np.int64)
            return cls.from_arrays(
                indices, rotations, payload["pool_size"], payload["dim"]
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise KeyFormatError(f"malformed lock key JSON: {exc}") from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LockKey):
            return NotImplemented
        return (
            self.pool_size == other.pool_size
            and self.dim == other.dim
            and self.subkeys == other.subkeys
        )

    def __repr__(self) -> str:
        return (
            f"LockKey(n_features={self.n_features}, layers={self.layers}, "
            f"pool_size={self.pool_size}, dim={self.dim})"
        )
