"""The public / secure memory split of the paper's threat model.

Sec. 3.1: lightweight HDC targets (IoT nodes, FPGAs, in-memory-computing
arrays) have only a tiny tamper-proof region — far too small for the
hypervector memory itself (megabytes) but enough for the *index mapping*
(kilobits). The owner therefore

* publishes the raw hypervector rows **shuffled** (:class:`PublicMemory`
  — the attacker reads these freely), and
* keeps the mapping / HDLock key in :class:`SecureMemory`, which this
  library simulates as a store that only the owner principal may read;
  any other access raises :class:`~repro.errors.SecureMemoryError` and is
  recorded in an audit log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.errors import SecureMemoryError
from repro.hv.packing import pack
from repro.hv.random import shuffled_copy
from repro.utils.rng import SeedLike

#: The principal allowed to read secure memory.
OWNER = "owner"


class PublicMemory:
    """Unindexed hypervector rows in ordinary (attacker-readable) memory.

    ``rows[j]`` is a hypervector, but *which* feature/level/base it
    belongs to is not derivable from the position: rows were shuffled at
    deployment time. The permutation used is owner-side knowledge.
    """

    def __init__(self, rows: np.ndarray, label: str = "pool") -> None:
        arr = np.asarray(rows)
        if arr.ndim != 2:
            raise ValueError(f"public memory needs a (K, D) matrix, got {arr.shape}")
        self.rows = arr
        self.label = label
        self._nbytes_packed: int | None = None

    @classmethod
    def publish(
        cls, indexed_rows: np.ndarray, rng: SeedLike = None, label: str = "pool"
    ) -> Tuple["PublicMemory", np.ndarray]:
        """Shuffle ``indexed_rows`` and publish them.

        Returns ``(public, placement)`` where ``placement[j]`` is the
        true index of published row ``j``. ``placement`` belongs in
        secure memory; the :class:`PublicMemory` is what the attacker
        sees.
        """
        shuffled, placement = shuffled_copy(indexed_rows, rng)
        return cls(shuffled, label=label), placement

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    @property
    def dim(self) -> int:
        """Hypervector dimensionality of the stored rows."""
        return int(self.rows.shape[1])

    @property
    def nbytes_packed(self) -> int:
        """Footprint of this pool in deployed (bit-packed) form.

        Computed once and cached — the rows are fixed at publish time,
        and re-packing a paper-scale pool on every property read made
        this O(K * D) per access.
        """
        if self._nbytes_packed is None:
            self._nbytes_packed = int(pack(self.rows).nbytes)
        return self._nbytes_packed

    def row(self, j: int) -> np.ndarray:
        """Read one published row (attacker-permitted operation)."""
        return self.rows[j]


@dataclass
class AccessRecord:
    """One audited access to secure memory."""

    actor: str
    name: str
    allowed: bool


@dataclass
class SecureMemory:
    """Simulated tamper-proof key store with an access audit log.

    Only reads by the :data:`OWNER` principal succeed; anything else
    raises :class:`SecureMemoryError` (modeling the probing resistance of
    the tamper-proof memory suggested by [15] in the paper) and is still
    recorded, so tests can assert that attack code never touched secrets.
    """

    _store: Dict[str, Any] = field(default_factory=dict)
    audit_log: List[AccessRecord] = field(default_factory=list)

    def store(self, name: str, value: Any) -> None:
        """Write a secret under ``name`` (owner-side provisioning)."""
        self._store[name] = value

    def load(self, name: str, actor: str = OWNER) -> Any:
        """Read a secret; non-owner actors are refused and logged."""
        allowed = actor == OWNER and name in self._store
        self.audit_log.append(AccessRecord(actor=actor, name=name, allowed=allowed))
        if actor != OWNER:
            raise SecureMemoryError(
                f"actor {actor!r} attempted to read secure slot {name!r}"
            )
        if name not in self._store:
            raise SecureMemoryError(f"secure slot {name!r} is empty")
        return self._store[name]

    def __contains__(self, name: str) -> bool:
        return name in self._store

    @property
    def names(self) -> list[str]:
        """Names of provisioned slots (slot *names* are not secret)."""
        return sorted(self._store)

    def storage_bits(self) -> int:
        """Total bits of secret payload currently stored.

        Supports ints (bit length), numpy arrays (packed integer width)
        and objects exposing ``storage_bits()`` such as
        :class:`repro.memory.key.LockKey`. Used to demonstrate the
        paper's memory argument: the key is orders of magnitude smaller
        than the hypervector memory.
        """
        total = 0
        for value in self._store.values():
            if hasattr(value, "storage_bits"):
                total += int(value.storage_bits())
            elif isinstance(value, (int, np.integer)):
                total += max(int(value).bit_length(), 1)
            elif isinstance(value, np.ndarray):
                span = int(value.max()) + 1 if value.size else 1
                total += value.size * max(span - 1, 1).bit_length()
            else:
                raise TypeError(
                    f"cannot account storage for secure value of type {type(value)!r}"
                )
        return total
