"""HDC classification model: training, retraining, inference, metrics."""

from repro.model.classifier import HDClassifier
from repro.model.metrics import accuracy, confusion_matrix, per_class_recall
from repro.model.train import TrainingResult, train_model

__all__ = [
    "HDClassifier",
    "train_model",
    "TrainingResult",
    "accuracy",
    "confusion_matrix",
    "per_class_recall",
]
