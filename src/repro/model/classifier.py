"""HDC classification model (paper Fig. 1).

Training accumulates encoded samples into per-class hypervectors
(Eq. 4); inference encodes a query and returns the most similar class —
cosine similarity for the non-binary model, normalized Hamming distance
for the binary one (Sec. 2, "Inference").

The classifier always keeps the *non-binary* class accumulators as its
trainable state. The binary model binarizes them on read (QuantHD [4]
keeps exactly this split so iterative retraining has integer state to
update while inference stays binary).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.encoding.base import Encoder
from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hv.ops import sign
from repro.hv.packing import pack_words, pairwise_hamming_packed
from repro.hv.similarity import cosine, cosine_matrix, hamming
from repro.utils.rng import SeedLike, resolve_rng


class HDClassifier:
    """HDC classifier over any :class:`~repro.encoding.base.Encoder`.

    ``binary`` selects the paper's binary model (binary encodings, binary
    class HVs, Hamming similarity); otherwise the non-binary model
    (integer encodings, integer class HVs, cosine similarity).
    """

    def __init__(
        self,
        encoder: Encoder,
        n_classes: int,
        binary: bool = True,
        rng: SeedLike = None,
    ) -> None:
        if n_classes < 2:
            raise ConfigurationError(f"need at least 2 classes, got {n_classes}")
        self.encoder = encoder
        self.n_classes = int(n_classes)
        self.binary = binary
        self._rng = resolve_rng(rng)
        self._accums: Optional[np.ndarray] = None
        # Binarized class memory, cached so that sign(0) tie-breaks are
        # drawn once per training state: a deployed binary model's class
        # hypervectors are fixed bits, not re-randomized per query.
        self._binary_classes: Optional[np.ndarray] = None
        # Word-packed (uint64 bit-plane) view of the binary class
        # memory, invalidated with it; inference XOR-popcounts packed
        # queries against this without ever unpacking either side.
        self._packed_classes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------

    def _check_labels(self, labels: np.ndarray, count: int) -> np.ndarray:
        arr = np.asarray(labels)
        if arr.shape != (count,):
            raise DimensionMismatchError(
                f"labels shape {arr.shape} does not match {count} samples"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_classes):
            raise ConfigurationError(
                f"labels must lie in [0, {self.n_classes}), got "
                f"[{arr.min()}, {arr.max()}]"
            )
        return arr.astype(np.int64)

    def encode_training(self, samples: np.ndarray) -> np.ndarray:
        """Encode a training batch once, in the model's native domain.

        Exposed so callers (retraining loops, attack evaluation) can
        reuse the expensive encoding pass across epochs.
        """
        return self.encoder.encode_batch(np.asarray(samples), binary=self.binary)

    def fit(
        self,
        samples: np.ndarray,
        labels: np.ndarray,
        encoded: Optional[np.ndarray] = None,
    ) -> "HDClassifier":
        """One-shot training: sum each class's encodings (Eq. 4).

        Pass ``encoded`` to skip re-encoding when the caller already has
        the encoded batch.
        """
        if encoded is None:
            encoded = self.encode_training(samples)
        labels_arr = self._check_labels(labels, encoded.shape[0])
        # Class sums as a one-hot matmul: BLAS instead of a scatter
        # loop, and exact — encodings are integers, so every float64
        # partial sum is too.
        onehot = np.zeros((encoded.shape[0], self.n_classes), dtype=np.float64)
        onehot[np.arange(encoded.shape[0]), labels_arr] = 1.0
        self._accums = onehot.T @ encoded.astype(np.float64)
        self._binary_classes = None
        self._packed_classes = None
        return self

    def retrain(
        self,
        samples: np.ndarray,
        labels: np.ndarray,
        epochs: int = 5,
        learning_rate: float = 1.0,
        encoded: Optional[np.ndarray] = None,
    ) -> list[float]:
        """QuantHD-style iterative refinement of the class memory.

        For each misclassified sample the encoded HV is added (scaled by
        ``learning_rate``) to the true class accumulator and subtracted
        from the predicted one. Returns the training accuracy after each
        epoch. Requires :meth:`fit` (or a previous retrain) first.
        """
        if self._accums is None:
            raise ConfigurationError("fit the model before retraining")
        if epochs < 0:
            raise ConfigurationError(f"epochs must be >= 0, got {epochs}")
        if encoded is None:
            encoded = self.encode_training(samples)
        labels_arr = self._check_labels(labels, encoded.shape[0])
        history: list[float] = []
        encoded_f = encoded.astype(np.float64)
        # Binary models score every epoch against the same encoded
        # batch: pack it once and reuse the bit-planes — the class
        # memory re-packs per epoch (it changes), the queries never do.
        packed_encoded = pack_words(encoded) if self.binary else None
        for _ in range(epochs):
            if packed_encoded is not None:
                predictions = self._predict_packed(packed_encoded)
            else:
                predictions = self._predict_encoded(encoded)
            wrong = np.flatnonzero(predictions != labels_arr)
            if wrong.size:
                updates = learning_rate * encoded_f[wrong]
                np.add.at(self._accums, labels_arr[wrong], updates)
                np.add.at(self._accums, predictions[wrong], -updates)
                self._binary_classes = None
                self._packed_classes = None
            history.append(1.0 - wrong.size / labels_arr.shape[0])
        return history

    # ------------------------------------------------------------------
    # trained-state export / restore (serving provisioning)
    # ------------------------------------------------------------------

    @property
    def class_accumulators(self) -> np.ndarray:
        """Copy of the trained ``(C, D)`` non-binary class accumulators.

        The full trainable state of the model (binary class HVs are a
        deterministic view of it plus the cached tie-breaks). Raises
        :class:`ConfigurationError` on an untrained model.
        """
        if self._accums is None:
            raise ConfigurationError("model is untrained; call fit first")
        return self._accums.copy()

    def load_accumulators(
        self,
        accumulators: np.ndarray,
        binary_classes: Optional[np.ndarray] = None,
    ) -> "HDClassifier":
        """Restore trained state exported via :attr:`class_accumulators`.

        ``binary_classes`` optionally pins the binarized class memory of
        a binary model. Accumulator rows can hit exact zero, where
        :func:`~repro.hv.ops.sign` draws a random tie-break — passing
        the snapshot taken at training time keeps a restored service
        replica bit-identical to the deployed original instead of
        re-rolling those ties.
        """
        arr = np.asarray(accumulators, dtype=np.float64)
        expected = (self.n_classes, self.encoder.dim)
        if arr.shape != expected:
            raise DimensionMismatchError(
                f"class accumulators shape {arr.shape} does not match "
                f"(C, D) = {expected}"
            )
        self._accums = arr.copy()
        self._binary_classes = None
        self._packed_classes = None
        if binary_classes is not None:
            if not self.binary:
                raise ConfigurationError(
                    "binary_classes only applies to a binary model"
                )
            binary_arr = np.asarray(binary_classes)
            if binary_arr.shape != expected:
                raise DimensionMismatchError(
                    f"binary class matrix shape {binary_arr.shape} does "
                    f"not match (C, D) = {expected}"
                )
            self._binary_classes = binary_arr.astype(np.int8, copy=True)
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    @property
    def class_matrix(self) -> np.ndarray:
        """The ``(C, D)`` class hypervectors used at inference time.

        Binarized view for the binary model, raw accumulators otherwise.
        """
        if self._accums is None:
            raise ConfigurationError("model is untrained; call fit first")
        if self.binary:
            if self._binary_classes is None:
                self._binary_classes = sign(self._accums, self._rng)
            return self._binary_classes
        return self._accums

    def _predict_packed(self, packed_encoded: np.ndarray) -> np.ndarray:
        """Nearest class for word-packed queries — the binary hot path.

        Both operands stay in the uint64 bit-plane domain end to end:
        (B, C) Hamming distances come from one XOR-popcount pass against
        the cached packed class memory. Identical mismatch counts to the
        dense comparison (both sides are bipolar), so nearest-class
        decisions are unchanged.
        """
        classes = self.class_matrix
        if packed_encoded.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        if self._packed_classes is None:
            self._packed_classes = pack_words(classes)
        distances = pairwise_hamming_packed(
            packed_encoded, self._packed_classes, self.encoder.dim
        )
        return np.argmin(distances, axis=1)

    def _predict_encoded(self, encoded: np.ndarray) -> np.ndarray:
        if encoded.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        if self.binary:
            # Dense-encoded entry point (callers holding an int8 batch):
            # one word-pack, then the shared packed path — no unpacking
            # anywhere downstream.
            return self._predict_packed(pack_words(encoded))
        # Non-binary: one (B, C) cosine matrix via BLAS instead of B
        # vector passes.
        return np.argmax(cosine_matrix(encoded, self.class_matrix), axis=1)

    def predict(self, samples: np.ndarray) -> np.ndarray:
        """Predict class labels for a ``(B, N)`` batch of level vectors.

        Binary models run fully packed: the encoder's fused
        ``encode_batch_packed`` emits uint64 bit-planes and nearest-class
        search XOR-popcounts them against the packed class memory —
        zero pack/unpack round-trips between encoding and decision.
        """
        arr = np.asarray(samples)
        if self.binary:
            encode_packed = getattr(self.encoder, "encode_batch_packed", None)
            if encode_packed is not None:
                return self._predict_packed(encode_packed(arr))
        encoded = self.encoder.encode_batch(arr, binary=self.binary)
        return self._predict_encoded(encoded)

    def similarity_profile(self, sample: np.ndarray) -> np.ndarray:
        """Per-class similarity of one sample (cosine or ``1 - hamming``).

        Useful for inspecting decision margins; higher is always more
        similar regardless of model flavor.
        """
        encoded = self.encoder.encode(np.asarray(sample), binary=self.binary)
        if self.binary:
            return 1.0 - np.asarray(hamming(self.class_matrix, encoded))
        return np.asarray(cosine(self.class_matrix, encoded))

    def score(self, samples: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labeled batch."""
        labels_arr = self._check_labels(labels, np.asarray(samples).shape[0])
        return float(np.mean(self.predict(samples) == labels_arr))
