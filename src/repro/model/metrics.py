"""Classification metrics for model evaluation."""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of predictions equal to labels."""
    pred = np.asarray(predictions)
    lab = np.asarray(labels)
    if pred.shape != lab.shape:
        raise DimensionMismatchError(
            f"predictions shape {pred.shape} != labels shape {lab.shape}"
        )
    if pred.size == 0:
        raise ValueError("cannot compute accuracy of zero samples")
    return float(np.mean(pred == lab))


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int
) -> np.ndarray:
    """``(C, C)`` matrix with true classes on rows, predictions on columns."""
    pred = np.asarray(predictions, dtype=np.int64)
    lab = np.asarray(labels, dtype=np.int64)
    if pred.shape != lab.shape:
        raise DimensionMismatchError(
            f"predictions shape {pred.shape} != labels shape {lab.shape}"
        )
    out = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(out, (lab, pred), 1)
    return out


def per_class_recall(conf: np.ndarray) -> np.ndarray:
    """Recall of each class from a confusion matrix (NaN-free: empty
    classes report 0)."""
    mat = np.asarray(conf, dtype=np.float64)
    totals = mat.sum(axis=1)
    diag = np.diag(mat)
    return np.where(totals > 0, diag / np.where(totals > 0, totals, 1.0), 0.0)
