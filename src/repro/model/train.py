"""High-level training entry points used by the experiments.

Building a "well-performing HDC model" (the IP the paper defends)
involves one-shot accumulation plus a few retraining epochs with a
learning rate — the hyperparameter tuning the paper's introduction cites
as part of the model's value. :func:`train_model` packages that recipe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.base import Encoder
from repro.model.classifier import HDClassifier
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class TrainingResult:
    """A fitted classifier plus its training trajectory."""

    model: HDClassifier
    train_accuracy: float
    history: tuple[float, ...]


def train_model(
    encoder: Encoder,
    train_x: np.ndarray,
    train_y: np.ndarray,
    n_classes: int,
    binary: bool = True,
    retrain_epochs: int = 3,
    learning_rate: float = 1.0,
    rng: SeedLike = None,
) -> TrainingResult:
    """One-shot fit followed by ``retrain_epochs`` of refinement.

    The training batch is encoded exactly once and shared between the fit
    and every retraining epoch.
    """
    model = HDClassifier(encoder, n_classes=n_classes, binary=binary, rng=rng)
    encoded = model.encode_training(train_x)
    model.fit(train_x, train_y, encoded=encoded)
    history = model.retrain(
        train_x,
        train_y,
        epochs=retrain_epochs,
        learning_rate=learning_rate,
        encoded=encoded,
    )
    final = history[-1] if history else _train_accuracy(model, encoded, train_y)
    return TrainingResult(model=model, train_accuracy=final, history=tuple(history))


def _train_accuracy(
    model: HDClassifier, encoded: np.ndarray, labels: np.ndarray
) -> float:
    predictions = model._predict_encoded(encoded)
    return float(np.mean(predictions == np.asarray(labels)))
