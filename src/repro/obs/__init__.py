"""repro.obs — stdlib-only observability: metrics, tracing, JSON logs.

Three small modules, one contract:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry`
  (counters / gauges / fixed-bucket histograms) with a Prometheus
  text-exposition renderer and a deterministic JSON snapshot;
  :class:`NullMetrics` is the same surface as no-ops.
* :mod:`repro.obs.trace` — contextvars-propagated request IDs and
  nested monotonic spans recorded as picklable dicts.
* :mod:`repro.obs.logs` — one-line JSON log records carrying the
  current request ID; silent by default, ``configure()`` to opt in.

The serving stack exposes all of it at ``/metrics`` (Prometheus text)
and ``/statusz`` (JSON); the encoding engine and experiment runner hook
in optionally and cost one ``None`` check when observability is off.
"""

from repro.obs.logs import configure, get_logger
from repro.obs.metrics import (
    BATCH_OCCUPANCY_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.trace import (
    SpanRecorder,
    current_request_id,
    new_request_id,
    sanitize_request_id,
    span,
)

__all__ = [
    "BATCH_OCCUPANCY_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "SpanRecorder",
    "configure",
    "current_request_id",
    "get_logger",
    "new_request_id",
    "sanitize_request_id",
    "span",
]
