"""Structured JSON logging: one line per record, trace IDs attached.

Library default is **silence**: importing this module attaches a
``NullHandler`` to the ``"repro"`` logger and turns off propagation, so
embedding the package never spams a host application's root logger.
Operators opt in with :func:`configure`, which attaches a stream
handler emitting one JSON object per line::

    {"ts": 1722945600.123, "level": "INFO", "logger": "repro.serving",
     "message": "lane ready", "request_id": "req-1a2b-00000001",
     "tenant": "alpha"}

``request_id`` is pulled from the tracing contextvar at emit time, so
any log line written while serving a request is joinable against the
``x-request-id`` the client saw — no threading of IDs through call
signatures. Extra structured fields ride the standard ``extra=``
mechanism under a single ``fields`` key::

    get_logger("repro.serving").info("lane ready",
                                     extra={"fields": {"tenant": "alpha"}})
"""

from __future__ import annotations

import json
import logging
from typing import Any, TextIO

from repro.obs.trace import current_request_id

__all__ = ["configure", "get_logger", "reset"]

_ROOT_NAME = "repro"

#: Handler installed by configure(); tracked so reset() can detach it.
_active_handler: logging.Handler | None = None


class JsonLineFormatter(logging.Formatter):
    """Render a LogRecord as one compact JSON line."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = current_request_id()
        if request_id is not None:
            payload["request_id"] = request_id
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def _root() -> logging.Logger:
    return logging.getLogger(_ROOT_NAME)


def get_logger(name: str = _ROOT_NAME) -> logging.Logger:
    """A logger under the ``repro`` hierarchy."""
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(_ROOT_NAME + "." + name)


def configure(
    stream: TextIO | None = None, level: int | str = logging.INFO
) -> logging.Logger:
    """Opt in to JSON log output on ``stream`` (default: stderr).

    Idempotent: a second call replaces the previous handler rather than
    stacking a duplicate.
    """
    global _active_handler
    root = _root()
    if _active_handler is not None:
        root.removeHandler(_active_handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLineFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    _active_handler = handler
    return root


def reset() -> None:
    """Back to the silent library default (tests use this)."""
    global _active_handler
    root = _root()
    if _active_handler is not None:
        root.removeHandler(_active_handler)
        _active_handler = None
    root.setLevel(logging.NOTSET)


# Library-silence default: a NullHandler swallows records unless an
# operator opted in, and propagate=False keeps them off the host
# application's root logger either way.
_root().addHandler(logging.NullHandler())
_root().propagate = False
