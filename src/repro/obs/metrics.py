"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

Zero third-party dependencies — the container this repo targets ships
no ``prometheus_client``, so the subsystem brings the small subset the
stack actually needs:

* a :class:`MetricsRegistry` holding labelled metric *families*
  (counter / gauge / histogram), guarded by one lock so instruments are
  safe to tick from any thread (the serving loop thread, the stdlib
  HTTP bridge's connection threads, bench client threads);
* **deterministic snapshots**: families render sorted by name and label
  values sorted within a family, so the ``/metrics`` exposition and the
  ``/statusz`` JSON are stable byte-for-byte for a given set of
  observations — which is what lets a golden test pin the format;
* a `Prometheus text exposition`_ renderer (``# HELP`` / ``# TYPE``
  headers, cumulative ``_bucket``/``_sum``/``_count`` histogram
  samples, ``+Inf`` overflow bucket).

Histograms use **fixed upper bounds** with Prometheus ``le``
(less-or-equal) semantics: an observation equal to a bucket boundary
counts in that bucket, and anything above the last bound lands in the
implicit ``+Inf`` overflow bucket. The bucket-edge tests pin both.

Hot paths bind label values once (:meth:`_Family.bind`) and tick the
returned child, skipping the per-call label lookup; the encoding engine
uses this so instrumentation stays well under the serving bench's 5 %
overhead gate. :class:`NullMetrics` is the "off" switch: the same
factory surface returning shared no-op instruments, so instrumented
code never branches on whether observability is enabled.

.. _Prometheus text exposition:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "BATCH_OCCUPANCY_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
]

#: Request-latency buckets (seconds): sub-millisecond through seconds,
#: wide enough for the per-request path and the coalesced batch path.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5,
)

#: Batch-occupancy buckets (rows coalesced per kernel call); powers of
#: two up to the default ``max_batch`` window.
BATCH_OCCUPANCY_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
)


def _format_value(value: float) -> str:
    """Render a sample value: integral floats print as integers."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 2**53:
        return str(int(as_float))
    return format(as_float, ".12g")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_pairs(
    names: tuple[str, ...], values: tuple[str, ...]
) -> str:
    return ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values, strict=True)
    )


class _Child:
    """One labelled time series of a counter or gauge family."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    #: Counters grow by row counts as often as by 1; same operation.
    add = inc

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class _HistogramChild:
    """One labelled histogram series: per-bucket counts + sum + count."""

    __slots__ = ("_lock", "_bounds", "bucket_counts", "sum", "count")

    def __init__(self, lock: threading.Lock, bounds: tuple[float, ...]) -> None:
        self._lock = lock
        self._bounds = bounds
        #: Raw (non-cumulative) counts; index len(bounds) is +Inf.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            # le semantics: the first bound >= value owns the
            # observation, so a value sitting exactly on a boundary
            # counts in that boundary's bucket (bucket-edge test-pinned).
            self.bucket_counts[bisect_left(self._bounds, value)] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> list[int]:
        total = 0
        out = []
        for n in self.bucket_counts:
            total += n
            out.append(total)
        return out


class _Family:
    """A named metric family: fixed label names, many children."""

    kind = ""

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.label_names = label_names
        self._lock = lock
        self._children: dict[tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        raise NotImplementedError

    def _child_values(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def bind(self, **labels: Any) -> Any:
        """The child for one label-value assignment (hot-path handle)."""
        values = self._child_values(labels)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child()
                self._children[values] = child
        return child

    def _sorted_children(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())


class Counter(_Family):
    """Monotonically increasing count (requests, rows, denials)."""

    kind = "counter"

    def _make_child(self) -> _Child:
        return _Child(self._lock)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self.bind(**labels).inc(amount)

    def add(self, amount: float, **labels: Any) -> None:
        self.bind(**labels).inc(amount)

    def value(self, **labels: Any) -> float:
        return self.bind(**labels).value


class Gauge(_Family):
    """A value that can go up and down (tenants served, generations)."""

    kind = "gauge"

    def _make_child(self) -> _Child:
        return _Child(self._lock)

    def set(self, value: float, **labels: Any) -> None:
        self.bind(**labels).set(value)

    def value(self, **labels: Any) -> float:
        return self.bind(**labels).value


class Histogram(_Family):
    """Fixed-bucket distribution (latencies, batch occupancy)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
        buckets: Iterable[float],
    ) -> None:
        super().__init__(name, help_text, label_names, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        if len(set(bounds)) != len(bounds):
            raise ConfigurationError(
                f"histogram {name!r} has duplicate bucket bounds: {bounds}"
            )
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float, **labels: Any) -> None:
        self.bind(**labels).observe(value)


class MetricsRegistry:
    """Thread-safe registry of metric families with stable rendering.

    Re-registering a name with identical kind/labels/buckets returns
    the existing family (modules can declare their instruments
    idempotently); any mismatch is a :class:`ConfigurationError` —
    two subsystems fighting over one name is a wiring bug.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    #: Duck-typed "is observability on" probe; NullMetrics says False.
    enabled = True

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is None:
                self._families[family.name] = family
                return family
        if (
            existing.kind != family.kind
            or existing.label_names != family.label_names
            or getattr(existing, "buckets", None)
            != getattr(family, "buckets", None)
        ):
            raise ConfigurationError(
                f"metric {family.name!r} is already registered as a "
                f"{existing.kind} with labels {existing.label_names}"
            )
        return existing

    def counter(
        self, name: str, help_text: str, labels: tuple[str, ...] = ()
    ) -> Counter:
        return self._register(Counter(name, help_text, labels, self._lock))

    def gauge(
        self, name: str, help_text: str, labels: tuple[str, ...] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labels, self._lock))

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._register(
            Histogram(name, help_text, labels, self._lock, buckets)
        )

    def _sorted_families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- output --------------------------------------------------------

    def render_prometheus(self) -> str:
        """The ``/metrics`` body: text exposition format 0.0.4."""
        lines: list[str] = []
        for family in self._sorted_families():
            lines.append(f"# HELP {family.name} {_escape_help(family.help_text)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family._sorted_children():
                pairs = _label_pairs(family.label_names, values)
                if isinstance(child, _HistogramChild):
                    cumulative = child.cumulative()
                    bounds = [
                        format(b, ".12g") for b in family.buckets
                    ] + ["+Inf"]
                    for bound, count in zip(bounds, cumulative, strict=True):
                        le = pairs + ("," if pairs else "") + f'le="{bound}"'
                        lines.append(
                            f"{family.name}_bucket{{{le}}} {count}"
                        )
                    suffix = f"{{{pairs}}}" if pairs else ""
                    lines.append(
                        f"{family.name}_sum{suffix} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{suffix} {child.count}")
                else:
                    suffix = f"{{{pairs}}}" if pairs else ""
                    lines.append(
                        f"{family.name}{suffix} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, Any]:
        """Deterministic JSON-ready dump (the ``/statusz`` section)."""
        out: dict[str, Any] = {}
        for family in self._sorted_families():
            samples = []
            for values, child in family._sorted_children():
                labels = dict(
                    zip(family.label_names, values, strict=True)
                )
                if isinstance(child, _HistogramChild):
                    buckets = dict(
                        zip(
                            [format(b, ".12g") for b in family.buckets]
                            + ["+Inf"],
                            child.cumulative(),
                            strict=True,
                        )
                    )
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": buckets,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {"type": family.kind, "samples": samples}
        return out


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def add(self, amount: float, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def bind(self, **labels: Any) -> "_NullInstrument":
        return self


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The observability "off" switch with the registry's surface.

    Instrumented code holds instruments and ticks them unconditionally;
    swapping this in turns every tick into an attribute-free no-op —
    which is exactly what the serving bench's overhead cell compares
    against the real registry.
    """

    enabled = False

    def counter(self, *args: Any, **kwargs: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, *args: Any, **kwargs: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, *args: Any, **kwargs: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def render_prometheus(self) -> str:
        return ""

    def snapshot(self) -> dict[str, Any]:
        return {}
