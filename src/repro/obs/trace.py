"""Span-based tracing with contextvars-propagated request IDs.

The serving stack coalesces concurrent requests into shared batch
calls, so "which request is this work for?" is not answerable from the
call stack — it has to ride task-local context. This module keeps that
context in two :class:`contextvars.ContextVar` slots:

* the **request ID** assigned by the ASGI middleware (echoed back as
  ``x-request-id``), readable from anywhere downstream via
  :func:`current_request_id`;
* the **span stack**, so nested :func:`span` blocks record their
  parent and a trace reads as a tree.

Spans measure with ``time.perf_counter`` (monotonic) and record into a
plain :class:`SpanRecorder` — a list of picklable dicts, deliberately
shaped so the experiment runner can ship a shard's spans back through
the spawn-based process pool and file them under the manifest's
*volatile* ``timing`` section. Artifacts never see them, which is what
keeps outputs byte-identical whether tracing is on or off.

Everything is a no-op when no recorder is passed: library code calls
``span(name, recorder)`` unconditionally and pays one ``is None`` check
when observability is off.
"""

from __future__ import annotations

import itertools
import os
import re
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

__all__ = [
    "SpanRecorder",
    "current_request_id",
    "new_request_id",
    "reset_request_id",
    "sanitize_request_id",
    "set_request_id",
    "span",
]

#: Request ID for the current asyncio task / thread, or None.
_request_id: ContextVar[str | None] = ContextVar("repro_request_id", default=None)

#: Names of the spans currently open in this context (innermost last).
_span_stack: ContextVar[tuple[str, ...]] = ContextVar(
    "repro_span_stack", default=()
)

#: Monotonic per-process sequence — no wall clock, no randomness, so
#: ID generation stays off reprolint RL001's radar and is cheap.
_sequence = itertools.count(1)

#: Clients may supply their own x-request-id; accept only a safe shape
#: so a hostile header can't smuggle newlines into logs or metrics.
_SAFE_REQUEST_ID = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def new_request_id() -> str:
    """A process-unique request ID: ``req-<pid hex>-<seq hex>``."""
    return f"req-{os.getpid():x}-{next(_sequence):08x}"


def sanitize_request_id(candidate: str | None) -> str:
    """A client-supplied ID if it is shaped safely, else a fresh one."""
    if candidate is not None and _SAFE_REQUEST_ID.match(candidate):
        return candidate
    return new_request_id()


def set_request_id(request_id: str) -> object:
    """Bind the request ID for this context; returns a reset token."""
    return _request_id.set(request_id)


def reset_request_id(token: object) -> None:
    _request_id.reset(token)  # type: ignore[arg-type]


def current_request_id() -> str | None:
    """The request ID bound to the calling context, if any."""
    return _request_id.get()


class SpanRecorder:
    """Collects finished spans as picklable dicts.

    The record shape is deliberately JSON/pickle-plain so shards can
    return their spans through a spawn process pool and the runner can
    file them into the manifest's volatile timing section.
    """

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: list[dict[str, Any]] = []

    def record(
        self,
        name: str,
        parent: str | None,
        elapsed_s: float,
        request_id: str | None,
    ) -> None:
        self.spans.append(
            {
                "name": name,
                "parent": parent,
                "elapsed_s": elapsed_s,
                "request_id": request_id,
            }
        )

    def drain(self) -> list[dict[str, Any]]:
        """Hand off the recorded spans and start empty."""
        spans, self.spans = self.spans, []
        return spans


@contextmanager
def span(name: str, recorder: SpanRecorder | None) -> Iterator[None]:
    """Time a block; no-op (and near-free) when recorder is None."""
    if recorder is None:
        yield
        return
    stack = _span_stack.get()
    parent = stack[-1] if stack else None
    token = _span_stack.set(stack + (name,))
    request_id = _request_id.get()
    started = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - started
        _span_stack.reset(token)
        recorder.record(name, parent, elapsed, request_id)
