"""Multi-tenant locked-inference service (ROADMAP item 1).

HDLock's deployment story is that the *locked* encoder is the artifact
safe to expose while keys stay privileged. This package is that
exposure surface: an ASGI application serving many locked systems at
once, with the packed batch kernels of PRs 1–2 on the hot path.

Layering (thin adapter over a use-case core):

* :mod:`repro.serving.app` — the ASGI adapter: routes ``/healthz``,
  ``/v1/models``, ``/v1/{tenant}/classify`` and ``/v1/{tenant}/encode``
  onto the service core, maps library errors to HTTP statuses.
* :mod:`repro.serving.service` — the use-case core
  (:class:`~repro.serving.service.InferenceService`): validation,
  per-tenant key access checks, micro-batch submission, response
  shaping. No HTTP types anywhere.
* :mod:`repro.serving.registry` — tenancy: provision a
  :class:`~repro.hdlock.lock.LockedSystem` + trained classifier to a
  directory (public bundle, packed :class:`~repro.hdlock.keystore.KeyStore`,
  class-memory state) and load tenants back. Key resolution honors the
  store's header-persisted revocation and detects rotation, so a
  revoked or rotated device answers ``403`` — never a crash, never a
  stale-key inference.
* :mod:`repro.serving.batcher` — the micro-batching queue: concurrent
  requests inside a small time/size window coalesce into one
  ``encode_batch_packed`` / packed-predict call, so service throughput
  rides the batch kernels instead of the per-sample path. Results are
  bit-identical to per-request execution (test-pinned).
* :mod:`repro.serving.asgi` — a dependency-free ASGI toolkit (routing,
  JSON bodies, lifespan). Any ASGI server (``uvicorn`` via the
  ``[serving]`` extra) can host the app; :mod:`repro.serving.http`
  bundles a stdlib fallback server, and
  :mod:`repro.serving.testclient` drives the app in-process for tests,
  CI smoke, and the load bench.

Quickstart::

    python -m repro.serving --demo --port 8100

provisions demo tenants (synthetic data, locked + trained) into a
temporary directory and serves them. See README.md for the full
provisioning flow and ``benchmarks/bench_serving.py`` for the load
harness behind ``BENCH_serving.json``.
"""

from repro.serving.app import create_app
from repro.serving.batcher import BatcherClosed, MicroBatcher
from repro.serving.registry import (
    ModelRegistry,
    Tenant,
    load_tenant,
    provision_tenant,
)
from repro.serving.service import InferenceService

__all__ = [
    "BatcherClosed",
    "InferenceService",
    "MicroBatcher",
    "ModelRegistry",
    "Tenant",
    "create_app",
    "load_tenant",
    "provision_tenant",
]
