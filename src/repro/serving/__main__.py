"""CLI launcher: ``python -m repro.serving``.

Three modes:

* ``--demo`` (default when no tenant dirs are given) — provision
  ``--tenants`` demo tenants (synthetic data, locked + trained) into
  ``--data-dir`` (a temp dir by default) and serve them.
* ``--tenant NAME=DIR`` (repeatable) — serve tenants previously written
  by :func:`repro.serving.registry.provision_tenant`.
* ``--self-check`` — boot the app in-process (no socket), run the
  health, round-trip, and revoked-403 assertions, print a JSON verdict
  and exit non-zero on failure. This is the CI ``serving-smoke`` body.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.data.synthetic import SyntheticSpec, make_dataset
from repro.hdlock.lock import create_locked_encoder
from repro.model.train import train_model
from repro.serving.app import create_app
from repro.serving.registry import (
    ModelRegistry,
    Tenant,
    provision_tenant,
)

#: Demo tenant shape: small enough to provision in seconds, big enough
#: that batching visibly beats the per-sample path.
DEMO_FEATURES = 196
DEMO_LEVELS = 8
DEMO_CLASSES = 10
DEMO_DIM = 2048
DEMO_LAYERS = 2
DEMO_TRAIN = 400


def build_demo_tenant(
    directory: Path,
    name: str,
    seed: int,
    dim: int = DEMO_DIM,
    n_features: int = DEMO_FEATURES,
    levels: int = DEMO_LEVELS,
    layers: int = DEMO_LAYERS,
) -> Tenant:
    """Create, train, and provision one synthetic locked tenant."""
    spec = SyntheticSpec(
        name=name,
        n_features=n_features,
        n_classes=DEMO_CLASSES,
        levels=levels,
        train_samples=DEMO_TRAIN,
        test_samples=DEMO_CLASSES,
        noise_sigma=0.25,
    )
    dataset = make_dataset(spec, rng=seed)
    system = create_locked_encoder(
        n_features=n_features,
        levels=levels,
        dim=dim,
        layers=layers,
        rng=seed + 1,
    )
    training = train_model(
        system.encoder,
        dataset.train_x,
        dataset.train_y,
        n_classes=DEMO_CLASSES,
        binary=True,
        retrain_epochs=1,
        rng=seed + 2,
    )
    return provision_tenant(directory, name, system, training.model)


def build_demo_registry(
    data_dir: Path, n_tenants: int, dim: int = DEMO_DIM
) -> ModelRegistry:
    registry = ModelRegistry()
    for index in range(n_tenants):
        name = f"tenant{index}"
        registry.add(
            build_demo_tenant(data_dir / name, name, seed=1000 + index, dim=dim)
        )
    return registry


def self_check() -> int:
    """In-process smoke: health, encode→classify round trip, revoked 403."""
    from repro.serving.testclient import TestClient

    with tempfile.TemporaryDirectory() as tmp:
        registry = build_demo_registry(Path(tmp), n_tenants=2)
        tenant = registry.get("tenant0")
        probe = [1] * tenant.encoder.n_features
        verdict: dict = {}
        app = create_app(registry)
        with TestClient(app) as client:
            health = client.get("/healthz")
            verdict["healthz"] = health.json()
            assert health.status == 200, health
            assert health.json()["status"] == "ok"
            assert health.json()["tenants"] == 2

            models = client.get("/v1/models")
            assert models.status == 200
            names = [m["name"] for m in models.json()["models"]]
            assert names == ["tenant0", "tenant1"], names

            encoded = client.post("/v1/tenant0/encode", json={"sample": probe})
            assert encoded.status == 200, encoded
            assert len(encoded.json()["packed_hex"]) == 1

            classified = client.post(
                "/v1/tenant0/classify", json={"sample": probe}
            )
            assert classified.status == 200, classified
            label = classified.json()["labels"][0]
            assert 0 <= label < tenant.classifier.n_classes
            verdict["round_trip_label"] = label

            # Revoke tenant1's device: its endpoint must 403, tenant0
            # must keep serving.
            other = registry.get("tenant1")
            other.store.revoke(other.device_id)
            denied = client.post(
                "/v1/tenant1/classify", json={"sample": probe}
            )
            assert denied.status == 403, denied
            assert denied.json()["reason"] == "revoked"
            verdict["revoked_status"] = denied.status

            still_ok = client.post(
                "/v1/tenant0/classify", json={"sample": probe}
            )
            assert still_ok.status == 200, still_ok
            assert still_ok.headers.get("x-request-id"), still_ok.headers

            # Observability surface: the traffic above must show up in
            # the Prometheus exposition and the status page.
            metrics = client.get("/metrics")
            assert metrics.status == 200, metrics
            exposition = metrics.content.decode()
            assert "# TYPE repro_requests_total counter" in exposition
            assert 'repro_requests_total{tenant="tenant0"' in exposition
            assert (
                'repro_key_gate_denials_total{tenant="tenant1",'
                'reason="revoked"} 1' in exposition
            )
            verdict["metrics_lines"] = len(exposition.splitlines())

            statusz = client.get("/statusz")
            assert statusz.status == 200, statusz
            status_body = statusz.json()
            assert status_body["status"] == "ok"
            assert status_body["uptime_s"] >= 0
            assert status_body["batchers"]["tenant0"]["classify"]["requests"] >= 2
            assert status_body["tenants"]["tenant1"]["revoked"] is True
            verdict["statusz_tenants"] = sorted(status_body["tenants"])
        verdict["ok"] = True
        print(json.dumps(verdict, indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve locked HDLock models over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8100)
    parser.add_argument(
        "--demo",
        action="store_true",
        help="provision demo tenants before serving (default when no "
        "--tenant is given)",
    )
    parser.add_argument(
        "--tenants", type=int, default=2, help="demo tenant count"
    )
    parser.add_argument(
        "--dim", type=int, default=DEMO_DIM, help="demo hypervector dim"
    )
    parser.add_argument(
        "--data-dir",
        type=Path,
        default=None,
        help="directory for demo tenant artifacts (default: temp dir)",
    )
    parser.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME=DIR",
        help="serve a provisioned tenant directory (repeatable)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64, help="micro-batch row cap"
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batch window in milliseconds",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="run the in-process smoke assertions and exit",
    )
    args = parser.parse_args(argv)

    if args.self_check:
        return self_check()

    registry = ModelRegistry()
    for spec in args.tenant:
        name, _, directory = spec.partition("=")
        if not name or not directory:
            parser.error(f"--tenant expects NAME=DIR, got {spec!r}")
        registry.load(directory, name)
    if args.demo or not args.tenant:
        data_dir = args.data_dir or Path(
            tempfile.mkdtemp(prefix="repro-serving-demo-")
        )
        print(f"provisioning {args.tenants} demo tenants under {data_dir}")
        for index in range(args.tenants):
            name = f"tenant{index}"
            registry.add(
                build_demo_tenant(
                    data_dir / name, name, seed=1000 + index, dim=args.dim
                )
            )

    app = create_app(
        registry,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1000.0,
    )

    from repro.serving.http import serve

    def ready(host: str, port: int) -> None:
        print(f"serving {len(registry)} tenants on http://{host}:{port}")
        print(
            "  GET  /healthz | GET /v1/models | GET /metrics | "
            "GET /statusz | POST /v1/{tenant}/classify | "
            "POST /v1/{tenant}/encode"
        )

    try:
        asyncio.run(serve(app, args.host, args.port, ready=ready))
    except KeyboardInterrupt:
        print("shutting down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
