"""The ASGI adapter: HTTP routes onto :class:`InferenceService`.

Error mapping (the whole adapter policy, in one place):

====================================  ======
exception                              status
====================================  ======
``ServingError`` subclasses           their own ``status`` (404/422/403/503)
``DimensionMismatchError``            422 — feature count mismatch
``ConfigurationError``                422 — levels out of range etc.
``KeyFormatError``                    403 — key material refused to load
any other exception                   500 — sanitized, never a traceback
====================================  ======
"""

from __future__ import annotations

from repro.errors import (
    ConfigurationError,
    DimensionMismatchError,
    KeyFormatError,
)
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.serving.asgi import App, JSONResponse, PlainTextResponse, Request
from repro.serving.errors import ServingError
from repro.serving.registry import ModelRegistry
from repro.serving.service import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_S,
    InferenceService,
)


def map_error(exc: Exception) -> JSONResponse:
    """Fold any handler exception into the stable error body."""
    if isinstance(exc, ServingError):
        return JSONResponse(exc.to_payload(), exc.status)
    if isinstance(exc, DimensionMismatchError):
        return JSONResponse(
            {"error": "dimension_mismatch", "detail": str(exc)}, 422
        )
    if isinstance(exc, ConfigurationError):
        return JSONResponse(
            {"error": "invalid_request", "detail": str(exc)}, 422
        )
    if isinstance(exc, KeyFormatError):
        return JSONResponse(
            {"error": "key_access_denied", "detail": str(exc)}, 403
        )
    return JSONResponse(
        {"error": "internal_error", "detail": type(exc).__name__}, 500
    )


def create_app(
    registry: ModelRegistry,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_wait_s: float = DEFAULT_MAX_WAIT_S,
    instrument: bool = True,
) -> App:
    """Build the serving application over a populated registry.

    The returned object is a standard ASGI 3.0 callable; its lifespan
    startup/shutdown drive the service's batcher lanes, so hosting it
    under any spec-compliant server (or the bundled test client /
    stdlib server) gets deterministic drain-on-shutdown for free.

    ``instrument=False`` swaps the metrics registry for no-ops —
    ``/metrics`` serves an empty body and the request path pays nothing;
    the serving bench uses it to measure instrumentation overhead.
    """
    metrics = MetricsRegistry() if instrument else NullMetrics()
    service = InferenceService(
        registry, max_batch=max_batch, max_wait_s=max_wait_s, metrics=metrics
    )
    app = App(
        on_startup=service.startup,
        on_shutdown=service.shutdown,
        on_error=map_error,
    )
    # The service object is reachable for in-process callers (tests,
    # bench) that want batching stats without an HTTP round-trip.
    app.service = service

    @app.get("/healthz")
    async def healthz(request: Request) -> JSONResponse:
        return JSONResponse(service.healthz().to_dict())

    @app.get("/metrics")
    async def metrics_endpoint(request: Request) -> PlainTextResponse:
        return PlainTextResponse(service.metrics.render_prometheus())

    @app.get("/statusz")
    async def statusz(request: Request) -> JSONResponse:
        reset = request.query.get("reset", "0") in {"1", "true"}
        return JSONResponse(service.statusz(reset=reset))

    @app.get("/v1/models")
    async def models(request: Request) -> JSONResponse:
        return JSONResponse(service.models())

    @app.post("/v1/{tenant}/classify")
    async def classify(request: Request) -> JSONResponse:
        payload = await request.json()
        result = await service.classify(request.params["tenant"], payload)
        return JSONResponse(result.to_dict())

    @app.post("/v1/{tenant}/encode")
    async def encode(request: Request) -> JSONResponse:
        payload = await request.json()
        result = await service.encode(request.params["tenant"], payload)
        return JSONResponse(result.to_dict())

    return app
