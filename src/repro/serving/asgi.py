"""A dependency-free ASGI toolkit: routing, JSON bodies, lifespan.

The container this repo targets ships no web framework, so the serving
adapter brings its own — a deliberately small subset of the
FastAPI/starlette surface the app actually uses. The application object
speaks the standard `ASGI 3.0`_ protocol (``http`` and ``lifespan``
scopes), so it runs unchanged under any ASGI server: ``uvicorn`` via
the package's ``[serving]`` extra, the stdlib fallback server in
:mod:`repro.serving.http`, or the in-process
:class:`~repro.serving.testclient.TestClient`.

.. _ASGI 3.0: https://asgi.readthedocs.io/en/latest/specs/main.html
"""

from __future__ import annotations

import json
import re
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qsl

from repro.obs.trace import reset_request_id, sanitize_request_id, set_request_id

#: Request body cap (1 MiB of JSON ≈ far above MAX_ROWS_PER_REQUEST).
MAX_BODY_BYTES = 1 << 20


class Request:
    """One HTTP request: scope plus lazily-read JSON body."""

    def __init__(self, scope: dict, receive: Callable) -> None:
        self.scope = scope
        self._receive = receive
        self.method: str = scope["method"]
        self.path: str = scope["path"]
        #: Path template parameters filled in by the router.
        self.params: dict[str, str] = {}
        self._headers: dict[str, str] | None = None
        self._query: dict[str, str] | None = None

    @property
    def headers(self) -> dict[str, str]:
        """Request headers, names lower-cased (last value wins)."""
        if self._headers is None:
            self._headers = {
                key.decode("latin-1").lower(): value.decode("latin-1")
                for key, value in self.scope.get("headers", [])
            }
        return self._headers

    @property
    def query(self) -> dict[str, str]:
        """Query-string parameters (last value wins)."""
        if self._query is None:
            raw = self.scope.get("query_string", b"").decode("latin-1")
            self._query = dict(parse_qsl(raw))
        return self._query

    async def body(self) -> bytes:
        chunks: list[bytes] = []
        total = 0
        while True:
            message = await self._receive()
            if message["type"] != "http.request":
                break
            chunk = message.get("body", b"")
            total += len(chunk)
            if total > MAX_BODY_BYTES:
                raise BodyTooLarge(total)
            chunks.append(chunk)
            if not message.get("more_body", False):
                break
        return b"".join(chunks)

    async def json(self) -> Any:
        raw = await self.body()
        if not raw:
            raise MalformedBody("request body is empty, expected JSON")
        try:
            return json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise MalformedBody(f"request body is not valid JSON: {exc}") from exc


class MalformedBody(Exception):
    """Unparseable request body (the adapter maps this to 422)."""


class BodyTooLarge(Exception):
    """Request body over :data:`MAX_BODY_BYTES` (mapped to 413)."""

    def __init__(self, size: int) -> None:
        super().__init__(f"request body exceeds {MAX_BODY_BYTES} bytes")
        self.size = size


class Response:
    """Base response: a byte body, a status code, mutable headers."""

    def __init__(self, body: bytes, status: int, content_type: bytes) -> None:
        self.status = int(status)
        self.body = body
        self.headers = [
            (b"content-type", content_type),
            (b"content-length", str(len(self.body)).encode()),
        ]

    async def send(self, send: Callable) -> None:
        await send(
            {
                "type": "http.response.start",
                "status": self.status,
                "headers": self.headers,
            }
        )
        await send({"type": "http.response.body", "body": self.body})


class JSONResponse(Response):
    """A JSON response with a fixed status code."""

    def __init__(self, payload: Any, status: int = 200) -> None:
        super().__init__(
            json.dumps(payload).encode(), status, b"application/json"
        )


class PlainTextResponse(Response):
    """A text response — the ``/metrics`` exposition body.

    The default content type is the Prometheus text format 0.0.4 type,
    which scrapers use to pick a parser.
    """

    def __init__(
        self,
        text: str,
        status: int = 200,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        super().__init__(text.encode(), status, content_type.encode())


Handler = Callable[[Request], Awaitable[Response]]

#: ``{name}`` path-template segment, starlette-style.
_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile(template: str) -> re.Pattern:
    parts: list[str] = []
    last = 0
    for match in _PARAM_RE.finditer(template):
        parts.append(re.escape(template[last : match.start()]))
        parts.append(f"(?P<{match.group(1)}>[^/]+)")
        last = match.end()
    parts.append(re.escape(template[last:]))
    return re.compile("^" + "".join(parts) + "$")


class Route:
    def __init__(self, method: str, template: str, handler: Handler) -> None:
        self.method = method.upper()
        self.template = template
        self.pattern = _compile(template)
        self.handler = handler


class App:
    """Minimal ASGI application: routes + lifespan hooks + error hook.

    ``on_error`` receives any exception a handler raised and returns the
    :class:`JSONResponse` to send — the single place the serving adapter
    maps library errors onto HTTP statuses.
    """

    def __init__(
        self,
        on_startup: Callable[[], Awaitable[None]] | None = None,
        on_shutdown: Callable[[], Awaitable[None]] | None = None,
        on_error: Callable[[Exception], JSONResponse] | None = None,
    ) -> None:
        self.routes: list[Route] = []
        self._on_startup = on_startup
        self._on_shutdown = on_shutdown
        self._on_error = on_error

    def add_route(self, method: str, template: str, handler: Handler) -> None:
        self.routes.append(Route(method, template, handler))  # reprolint: disable=RL006 -- route table grows only during app wiring (module import / factory), bounded by program text, never per request

    def get(self, template: str) -> Callable[[Handler], Handler]:
        def register(handler: Handler) -> Handler:
            self.add_route("GET", template, handler)
            return handler

        return register

    def post(self, template: str) -> Callable[[Handler], Handler]:
        def register(handler: Handler) -> Handler:
            self.add_route("POST", template, handler)
            return handler

        return register

    # -- ASGI entry point ----------------------------------------------

    async def __call__(self, scope: dict, receive: Callable, send: Callable):
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")
        request = Request(scope, receive)
        # Request-ID middleware: honor a safely-shaped client
        # x-request-id, otherwise mint one; bind it to the task context
        # for the duration of the dispatch (so spans and log lines pick
        # it up) and echo it on the response.
        request_id = sanitize_request_id(request.headers.get("x-request-id"))
        token = set_request_id(request_id)
        try:
            response = await self._dispatch(request)
        finally:
            reset_request_id(token)
        response.headers.append(
            (b"x-request-id", request_id.encode("latin-1"))
        )
        await response.send(send)

    async def _lifespan(self, receive: Callable, send: Callable) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                try:
                    if self._on_startup is not None:
                        await self._on_startup()
                except Exception as exc:
                    await send(
                        {
                            "type": "lifespan.startup.failed",
                            "message": str(exc),
                        }
                    )
                    return
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                try:
                    if self._on_shutdown is not None:
                        await self._on_shutdown()
                except Exception as exc:
                    await send(
                        {
                            "type": "lifespan.shutdown.failed",
                            "message": str(exc),
                        }
                    )
                    return
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _dispatch(self, request: Request) -> Response:
        path_matched = False
        for route in self.routes:
            match = route.pattern.match(request.path)
            if match is None:
                continue
            path_matched = True
            if route.method != request.method:
                continue
            request.params = match.groupdict()
            try:
                return await route.handler(request)
            except BodyTooLarge as exc:
                return JSONResponse(
                    {"error": "body_too_large", "detail": str(exc)}, 413
                )
            except MalformedBody as exc:
                return JSONResponse(
                    {"error": "invalid_request", "detail": str(exc)}, 422
                )
            except Exception as exc:
                if self._on_error is not None:
                    return self._on_error(exc)
                raise
        if path_matched:
            return JSONResponse(
                {
                    "error": "method_not_allowed",
                    "detail": f"{request.method} not allowed on {request.path}",
                },
                405,
            )
        return JSONResponse(
            {"error": "not_found", "detail": f"no route for {request.path}"},
            404,
        )
