"""Micro-batching queue: coalesce concurrent requests into batch kernels.

The per-sample encode path costs a full plan traversal per row; the
batch kernels of PRs 1–2 amortize that across rows (~order of magnitude
per-row at paper shapes). A served workload arrives as many small
concurrent requests, so the service needs the translation layer this
module provides: requests that land inside a small time/size window are
stacked into one matrix, run through a single batch call
(``encode_batch_packed`` or the packed classifier predict), and the
rows are scattered back to the awaiting requests.

Correctness contract (test-pinned): results are **bit-identical** to
running every request alone in arrival order. That holds because the
underlying kernels are themselves bit-exact against the per-sample
path, including the order of sign(0) tie-break draws.

Determinism contract: no request can hang once submitted.

* A lone request flushes after ``max_wait_s`` via an event-loop timer —
  no follow-up traffic is needed to push it out.
* A full window (``max_batch`` rows) flushes immediately.
* :meth:`MicroBatcher.aclose` flushes whatever is pending *before*
  refusing new work, so shutdown mid-window resolves every waiter
  (the regression a fire-and-forget drain would reintroduce).
* A failing batch call rejects every waiter in the batch with the
  exception instead of leaving futures unresolved.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.serving.errors import ServiceUnavailableError


class BatcherClosed(ServiceUnavailableError):
    """Submission after shutdown began."""


class BatchStats:
    """Counters describing how well the window coalesces traffic."""

    __slots__ = ("requests", "rows", "batches", "largest_batch")

    def __init__(self) -> None:
        self.requests = 0
        self.rows = 0
        self.batches = 0
        self.largest_batch = 0

    @property
    def mean_rows_per_batch(self) -> float:
        return self.rows / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "rows": self.rows,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_rows_per_batch": self.mean_rows_per_batch,
        }

    def reset(self) -> None:
        self.requests = 0
        self.rows = 0
        self.batches = 0
        self.largest_batch = 0

    def snapshot(self, reset: bool = False) -> dict:
        """The counters as a dict; optionally zero them afterwards.

        Reset-on-read is what ``/statusz?reset=1`` uses so periodic
        scrapers see per-interval coalescing behaviour instead of
        since-boot aggregates.
        """
        out = self.to_dict()
        if reset:
            self.reset()
        return out


class MicroBatcher:
    """Coalesce concurrent ``(k, N)`` row chunks into one batch call.

    ``run_batch`` is a synchronous callable mapping a stacked ``(B, N)``
    matrix to a length-``B`` sequence (or array) of per-row results; it
    runs on the event loop thread, which is what makes arrival-order
    execution — and therefore bit-parity with the per-request path —
    deterministic. One batcher serves one (tenant, operation) pair:
    rows from different tenants run under different keys and must never
    share a matrix.
    """

    def __init__(
        self,
        run_batch: Callable[[np.ndarray], Sequence],
        max_batch: int = 64,
        max_wait_s: float = 0.002,
        name: str = "",
        on_flush: Callable[[int], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        if max_wait_s < 0:
            raise ConfigurationError(
                f"max_wait_s must be >= 0, got {max_wait_s}"
            )
        self._run_batch = run_batch
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.name = name
        #: Occupancy observer: called with the stacked row count once
        #: per flush (the service wires a histogram child's observe).
        self._on_flush = on_flush
        self.stats = BatchStats()
        self._pending: list[tuple[np.ndarray, asyncio.Future]] = []
        self._pending_rows = 0
        self._timer: asyncio.TimerHandle | None = None
        self._closed = False

    async def submit(self, rows: np.ndarray) -> Sequence:
        """Queue a ``(k, N)`` chunk; resolves to its ``k`` row results.

        Single-sample requests submit ``(1, N)``; a client-side batch
        stays one chunk so its rows come back together and in order.
        """
        if self._closed:
            raise BatcherClosed(
                f"batcher {self.name or id(self)} is closed; the service "
                f"is shutting down"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((rows, future))
        self._pending_rows += int(rows.shape[0])
        self.stats.requests += 1
        if self._pending_rows >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_wait_s, self._flush)
        return await future

    def _flush(self) -> None:
        """Run everything pending as one batch call, scatter results.

        Runs synchronously on the loop (timer callback, size trigger, or
        shutdown), so no new submission can interleave mid-flush.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        window, self._pending = self._pending, []
        self._pending_rows = 0
        chunks = [rows for rows, _ in window]
        stacked = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        self.stats.batches += 1
        self.stats.rows += int(stacked.shape[0])
        self.stats.largest_batch = max(
            self.stats.largest_batch, int(stacked.shape[0])
        )
        if self._on_flush is not None:
            self._on_flush(int(stacked.shape[0]))
        try:
            results = self._run_batch(stacked)
        except Exception as exc:
            for _, future in window:
                if not future.done():
                    future.set_exception(exc)
            return
        offset = 0
        for rows, future in window:
            k = int(rows.shape[0])
            if not future.done():
                future.set_result(results[offset : offset + k])
            offset += k

    async def aclose(self) -> None:
        """Stop accepting work, then flush the in-flight window.

        Idempotent. After this returns, every previously submitted
        request has a result or an exception — traffic stopping
        mid-window cannot strand a waiter.
        """
        self._closed = True
        self._flush()
