"""Service-level errors with a stable HTTP mapping.

The use-case core raises these (and only these) toward the adapter;
:mod:`repro.serving.app` additionally folds the library's own
:class:`~repro.errors.ReproError` subclasses into the same shape, so
every error response is ``{"error": <code>, "detail": <message>, ...}``
with a status the satellite tests can pin.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError


class ServingError(ReproError):
    """Base class for request-rejecting service errors."""

    status = 500
    code = "internal_error"

    def __init__(self, detail: str, **extra: Any) -> None:
        super().__init__(detail)
        self.detail = detail
        self.extra = extra

    def to_payload(self) -> dict:
        """The JSON body of the error response."""
        payload = {"error": self.code, "detail": self.detail}
        payload.update(self.extra)
        return payload


class UnknownTenantError(ServingError):
    """The path names a tenant the registry does not hold."""

    status = 404
    code = "unknown_tenant"


class RequestValidationError(ServingError):
    """The request body is malformed or out of contract."""

    status = 422
    code = "invalid_request"


class KeyAccessError(ServingError):
    """The tenant's key no longer authorizes inference (revoked/rotated).

    Carries the store's rotation ``generation`` so operators can tell a
    plain revocation from a rotation that outdated the tenant's
    provisioned key.
    """

    status = 403
    code = "key_access_denied"


class ServiceUnavailableError(ServingError):
    """The service is shutting down; the batcher no longer accepts work."""

    status = 503
    code = "service_unavailable"
