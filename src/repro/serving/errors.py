"""Service-level errors with a stable HTTP mapping.

The use-case core raises these (and only these) toward the adapter;
:mod:`repro.serving.app` additionally folds the library's own
:class:`~repro.errors.ReproError` subclasses into the same shape, so
every error response is ``{"error": <code>, "detail": <message>, ...}``
with a status the satellite tests can pin.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.errors import ReproError

__all__ = [
    "KeyAccessError",
    "RequestValidationError",
    "ServiceUnavailableError",
    "ServingError",
    "UnknownTenantError",
]


class ServingError(ReproError):
    """Base class for request-rejecting service errors."""

    #: HTTP status the adapter answers with — class-level contract, not
    #: per-instance state (hence ``ClassVar``: a subclass *is* a status).
    status: ClassVar[int] = 500
    #: Stable machine-readable error code in the response body.
    code: ClassVar[str] = "internal_error"

    def __init__(self, detail: str, **extra: Any) -> None:
        super().__init__(detail)
        self.detail: str = detail
        self.extra: dict[str, Any] = extra

    def to_payload(self) -> dict[str, Any]:
        """The JSON body of the error response."""
        payload: dict[str, Any] = {"error": self.code, "detail": self.detail}
        payload.update(self.extra)
        return payload


class UnknownTenantError(ServingError):
    """The path names a tenant the registry does not hold."""

    status: ClassVar[int] = 404
    code: ClassVar[str] = "unknown_tenant"


class RequestValidationError(ServingError):
    """The request body is malformed or out of contract."""

    status: ClassVar[int] = 422
    code: ClassVar[str] = "invalid_request"


class KeyAccessError(ServingError):
    """The tenant's key no longer authorizes inference (revoked/rotated).

    Carries the store's rotation ``generation`` so operators can tell a
    plain revocation from a rotation that outdated the tenant's
    provisioned key.
    """

    status: ClassVar[int] = 403
    code: ClassVar[str] = "key_access_denied"


class ServiceUnavailableError(ServingError):
    """The service is shutting down; the batcher no longer accepts work."""

    status: ClassVar[int] = 503
    code: ClassVar[str] = "service_unavailable"
