"""Stdlib HTTP/1.1 → ASGI bridge: serve the app without extra deps.

Production deployments should host the app under a real ASGI server
(``pip install 'repro-hdlock[serving]'`` pulls ``uvicorn``); this
module is the zero-dependency fallback that makes
``python -m repro.serving`` work everywhere the library itself does. It
implements the slice of HTTP/1.1 the serving surface needs — request
line, headers, ``Content-Length`` bodies, keep-alive — on
``asyncio.start_server``, and drives the app's lifespan around the
socket server's own lifetime so batcher lanes drain on shutdown.
"""

from __future__ import annotations

import asyncio
from typing import Callable

from repro.serving.asgi import MAX_BODY_BYTES, App

#: Hard cap on the request head (request line + headers).
MAX_HEAD_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    404: "Not Found",
    405: "Method Not Allowed",
    403: "Forbidden",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Lifespan:
    """Drive the app's lifespan protocol around the server lifetime."""

    def __init__(self, app: App) -> None:
        self.app = app
        self._to_app: asyncio.Queue = asyncio.Queue()
        self._from_app: asyncio.Queue = asyncio.Queue()
        self._task: asyncio.Task | None = None

    async def startup(self) -> None:
        self._task = asyncio.ensure_future(
            self.app(
                {"type": "lifespan"}, self._to_app.get, self._from_app.put
            )
        )
        await self._to_app.put({"type": "lifespan.startup"})
        ack = await self._from_app.get()
        if ack["type"] != "lifespan.startup.complete":
            raise RuntimeError(f"app startup failed: {ack}")

    async def shutdown(self) -> None:
        await self._to_app.put({"type": "lifespan.shutdown"})
        ack = await self._from_app.get()
        if ack["type"] != "lifespan.shutdown.complete":
            raise RuntimeError(f"app shutdown failed: {ack}")
        if self._task is not None:
            await self._task


async def _read_head(reader: asyncio.StreamReader) -> bytes | None:
    """Read up to the blank line ending the head; None on EOF/overflow."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError:
        return None
    if len(head) > MAX_HEAD_BYTES:
        return None
    return head


def _plain_response(status: int, text: str) -> bytes:
    body = text.encode()
    return (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
        f"content-type: text/plain\r\ncontent-length: {len(body)}\r\n"
        f"connection: close\r\n\r\n"
    ).encode() + body


async def _handle_connection(
    app: App, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        while True:
            head = await _read_head(reader)
            if head is None:
                return
            try:
                request_line, *header_lines = head.decode(
                    "latin-1"
                ).split("\r\n")
                method, target, _version = request_line.split(" ", 2)
                headers: list[tuple[bytes, bytes]] = []
                content_length = 0
                keep_alive = True
                for line in header_lines:
                    if not line:
                        continue
                    key, _, value = line.partition(":")
                    key, value = key.strip().lower(), value.strip()
                    headers.append((key.encode(), value.encode()))
                    if key == "content-length":
                        content_length = int(value)
                    elif key == "connection" and value.lower() == "close":
                        keep_alive = False
            except ValueError:
                writer.write(_plain_response(400, "malformed request"))
                await writer.drain()
                return
            if content_length > MAX_BODY_BYTES:
                writer.write(_plain_response(413, "body too large"))
                await writer.drain()
                return
            body = (
                await reader.readexactly(content_length)
                if content_length
                else b""
            )
            path, _, query = target.partition("?")
            scope = {
                "type": "http",
                "asgi": {"version": "3.0"},
                "http_version": "1.1",
                "method": method.upper(),
                "path": path,
                "raw_path": path.encode(),
                "query_string": query.encode(),
                "headers": headers,
            }
            sent_request = False

            # receive/send close over this keep-alive iteration's request
            # state on purpose: the ASGI app awaits them only inside the
            # `await app(...)` below, before the next request is parsed,
            # so the captures can never observe a later iteration (B023
            # is a false positive here).
            async def receive() -> dict:
                nonlocal sent_request
                if sent_request:  # noqa: B023
                    return {"type": "http.disconnect"}
                sent_request = True
                return {
                    "type": "http.request",
                    "body": body,  # noqa: B023
                    "more_body": False,
                }

            response_head: dict = {}
            chunks: list[bytes] = []

            async def send(message: dict) -> None:
                if message["type"] == "http.response.start":
                    response_head.update(message)  # noqa: B023
                elif message["type"] == "http.response.body":
                    chunks.append(message.get("body", b""))  # noqa: B023

            try:
                await app(scope, receive, send)
            except Exception:
                writer.write(_plain_response(500, "internal error"))
                await writer.drain()
                return
            status = int(response_head.get("status", 500))
            payload = b"".join(chunks)
            lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}"]
            for key, value in response_head.get("headers", []):
                if key.lower() != b"content-length":
                    lines.append(
                        f"{key.decode('latin-1')}: {value.decode('latin-1')}"
                    )
            lines.append(f"content-length: {len(payload)}")
            lines.append(
                "connection: keep-alive" if keep_alive else "connection: close"
            )
            writer.write(
                ("\r\n".join(lines) + "\r\n\r\n").encode() + payload
            )
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.IncompleteReadError):
        return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def serve(
    app: App,
    host: str = "127.0.0.1",
    port: int = 8100,
    ready: Callable[[str, int], None] | None = None,
    shutdown_trigger: asyncio.Event | None = None,
) -> None:
    """Run the app on a TCP socket until cancelled (or ``shutdown_trigger``).

    ``ready`` is called with the bound (host, port) once accepting —
    pass ``port=0`` and read the real port there (the socket test does).
    """
    lifespan = _Lifespan(app)
    await lifespan.startup()
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host, port
    )
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound_host, bound_port)
    try:
        async with server:
            if shutdown_trigger is None:
                await server.serve_forever()
            else:
                await shutdown_trigger.wait()
    except asyncio.CancelledError:
        pass
    finally:
        await lifespan.shutdown()
