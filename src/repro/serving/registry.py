"""Tenancy: provision locked systems to disk and serve many at once.

One tenant = one directory holding the three artifacts a served locked
model needs, each with its PR 6 trust level:

* the **public bundle** (``base_pool.npy`` / ``value_memory.npy`` /
  ``manifest.json``) — :func:`repro.hdlock.provisioning.save_public_bundle`,
  integrity-checked on load;
* the **packed key store** (``keystore/``) — the mmap
  :class:`~repro.hdlock.keystore.KeyStore`; the tenant's device key
  lives here, and the store's header carries the revocation list and
  rotation generation that gate every request;
* the **class-memory state** (``class_state.npz`` + ``serving_model.json``)
  — trained accumulators plus the binarized snapshot, so a restored
  replica predicts bit-identically to the system that was provisioned.

Key resolution is re-checked per request via :meth:`Tenant.check_access`:
a revoked device answers 403, and a device whose stored key bytes no
longer match the provisioned fingerprint (i.e. the key was rotated
under the serving replica) also answers 403 with both generations in
the payload — a stale encoder must refuse rather than silently infer
under a retired key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.encoding.locked import LockedEncoder
from repro.errors import ConfigurationError
from repro.hdlock.keystore import HEADER_FILE, KeyStore
from repro.hdlock.lock import LockedSystem
from repro.hdlock.provisioning import (
    KEYSTORE_DIR,
    restore_encoder,
    save_public_bundle,
)
from repro.model.classifier import HDClassifier
from repro.serving.errors import KeyAccessError, UnknownTenantError
from repro.serving.schemas import TenantDescriptor
from repro.utils.rng import SeedLike

#: Serving-owned artifact names inside a tenant directory.
MODEL_FILE = "serving_model.json"
CLASS_STATE_FILE = "class_state.npz"

#: Tenant serving-metadata schema version.
SERVING_FORMAT_VERSION = 1


def _record_digest(store: KeyStore, device_id: int) -> str:
    """Fingerprint of one device's key material as stored right now."""
    indices, rotations = store.arrays(device_id)
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(indices).tobytes())
    digest.update(np.ascontiguousarray(rotations).tobytes())
    return digest.hexdigest()


@dataclass
class Tenant:
    """One served locked system plus the state guarding its key."""

    name: str
    directory: Path
    device_id: int
    encoder: LockedEncoder
    classifier: HDClassifier
    store: KeyStore
    #: Fingerprint of the key this tenant's encoder was derived from.
    key_digest: str
    #: Store rotation generation when the tenant was provisioned/loaded.
    generation: int
    #: Store generation at which :attr:`key_digest` last verified clean.
    #: Key bytes can only change through a rotation, and every rotation
    #: bumps the store-wide generation — so the (expensive) sha256 over
    #: the mmap record reruns exactly when the store state changed, not
    #: on every request.
    _verified_generation: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def check_access(self) -> None:
        """Gate one request on the key's current lifecycle state.

        Steady-state O(1): a header-set lookup plus a generation
        compare; the key-record fingerprint is re-verified whenever the
        store's rotation generation moves. Raises
        :class:`KeyAccessError` (→ 403) for a revoked device or for one
        whose key bytes were rotated after this tenant loaded.
        """
        if self.store.is_revoked(self.device_id):
            raise KeyAccessError(
                f"tenant {self.name!r}: device {self.device_id} is revoked",
                reason="revoked",
                device_id=self.device_id,
                generation=self.store.generation,
            )
        if self._verified_generation == self.store.generation:
            return
        if _record_digest(self.store, self.device_id) != self.key_digest:
            raise KeyAccessError(
                f"tenant {self.name!r}: device {self.device_id} key was "
                f"rotated (store generation {self.store.generation}, "
                f"tenant provisioned at generation {self.generation}); "
                f"re-provision the tenant",
                reason="rotated",
                device_id=self.device_id,
                generation=self.store.generation,
                provisioned_generation=self.generation,
            )
        self._verified_generation = self.store.generation

    def descriptor(self, batch_stats: dict | None = None) -> TenantDescriptor:
        """The ``/v1/models`` entry for this tenant."""
        return TenantDescriptor(
            name=self.name,
            dim=self.encoder.dim,
            n_features=self.encoder.n_features,
            levels=self.encoder.levels,
            n_classes=self.classifier.n_classes,
            layers=self.encoder.layers,
            pool_size=self.encoder.pool_size,
            device_id=self.device_id,
            generation=self.store.generation,
            revoked=self.store.is_revoked(self.device_id),
            batch_stats=batch_stats or {},
        )


def provision_tenant(
    directory: str | Path,
    name: str,
    system: LockedSystem,
    classifier: HDClassifier,
) -> Tenant:
    """Persist a locked system + trained model as a servable tenant.

    Writes the public bundle, appends the system's key to the tenant's
    packed key store (creating it on first use), and snapshots the
    classifier's trained state. Returns the live :class:`Tenant` so the
    provisioning process can start serving without a reload.
    """
    if classifier.encoder is not system.encoder:
        raise ConfigurationError(
            "classifier was trained under a different encoder than the "
            "system being provisioned"
        )
    path = Path(directory)
    save_public_bundle(path, system.encoder)
    store_dir = path / KEYSTORE_DIR
    if (store_dir / HEADER_FILE).exists():
        store = KeyStore.open(store_dir)
    else:
        store = KeyStore.create(
            store_dir,
            n_features=system.key.n_features,
            layers=system.key.layers,
            pool_size=system.pool_size,
            dim=system.key.dim,
        )
    device_id = store.append_key(system.key)
    state: dict[str, np.ndarray] = {
        "accumulators": classifier.class_accumulators
    }
    if classifier.binary:
        state["binary_classes"] = classifier.class_matrix.astype(np.int8)
    np.savez(path / CLASS_STATE_FILE, **state)
    meta = {
        "version": SERVING_FORMAT_VERSION,
        "name": name,
        "device_id": device_id,
        "n_classes": classifier.n_classes,
        "binary": classifier.binary,
        "generation": store.generation,
        "key_digest": _record_digest(store, device_id),
    }
    (path / MODEL_FILE).write_text(json.dumps(meta, indent=2) + "\n")
    return Tenant(
        name=name,
        directory=path,
        device_id=device_id,
        encoder=system.encoder,
        classifier=classifier,
        store=store,
        key_digest=meta["key_digest"],
        generation=store.generation,
    )


def load_tenant(
    directory: str | Path, name: str | None = None, rng: SeedLike = 0
) -> Tenant:
    """Rebuild a servable tenant from :func:`provision_tenant` output.

    A revoked device still *loads* — requests against it must answer
    403, not crash the registry — so the key is read with
    ``allow_revoked`` and the gate lives in :meth:`Tenant.check_access`.
    ``rng`` seeds the encoder's sign(0) tie stream; the deterministic
    default keeps independently loaded replicas bit-identical.
    """
    path = Path(directory)
    try:
        meta = json.loads((path / MODEL_FILE).read_text())
        version = int(meta["version"])
        device_id = int(meta["device_id"])
        n_classes = int(meta["n_classes"])
        binary = bool(meta["binary"])
        generation = int(meta["generation"])
        key_digest = str(meta["key_digest"])
        tenant_name = str(meta["name"]) if name is None else name
    except OSError as exc:
        raise ConfigurationError(
            f"no serving metadata at {path / MODEL_FILE}: {exc}"
        ) from exc
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"malformed serving metadata {path / MODEL_FILE}: {exc}"
        ) from exc
    if version != SERVING_FORMAT_VERSION:
        raise ConfigurationError(
            f"serving metadata version {version} unsupported (this build "
            f"reads version {SERVING_FORMAT_VERSION})"
        )
    store = KeyStore.open(path / KEYSTORE_DIR)
    key = store.key(device_id, allow_revoked=True)
    encoder = restore_encoder(path, key, rng=rng)
    try:
        with np.load(path / CLASS_STATE_FILE) as state:
            accumulators = np.asarray(state["accumulators"])
            binary_classes = (
                np.asarray(state["binary_classes"])
                if "binary_classes" in state.files
                else None
            )
    except OSError as exc:
        raise ConfigurationError(
            f"class-memory state unreadable at {path / CLASS_STATE_FILE}: "
            f"{exc}"
        ) from exc
    except (KeyError, ValueError) as exc:
        raise ConfigurationError(
            f"class-memory state at {path / CLASS_STATE_FILE} is corrupt: "
            f"{exc}"
        ) from exc
    classifier = HDClassifier(encoder, n_classes=n_classes, binary=binary)
    classifier.load_accumulators(accumulators, binary_classes=binary_classes)
    return Tenant(
        name=tenant_name,
        directory=path,
        device_id=device_id,
        encoder=encoder,
        classifier=classifier,
        store=store,
        key_digest=key_digest,
        generation=generation,
    )


class ModelRegistry:
    """Name → :class:`Tenant` mapping behind the service core."""

    def __init__(self) -> None:
        self._tenants: dict[str, Tenant] = {}

    def add(self, tenant: Tenant) -> Tenant:
        """Register a tenant; duplicate names are a configuration bug."""
        if tenant.name in self._tenants:
            raise ConfigurationError(
                f"tenant {tenant.name!r} is already registered"
            )
        self._tenants[tenant.name] = tenant
        return tenant

    def load(
        self, directory: str | Path, name: str | None = None
    ) -> Tenant:
        """Load a provisioned tenant directory and register it."""
        return self.add(load_tenant(directory, name))

    def get(self, name: str) -> Tenant:
        """Resolve a tenant or raise :class:`UnknownTenantError` (→ 404)."""
        try:
            return self._tenants[name]
        except KeyError:
            raise UnknownTenantError(
                f"unknown tenant {name!r}",
                tenants=sorted(self._tenants),
            ) from None

    def names(self) -> list[str]:
        return sorted(self._tenants)

    def status(self) -> dict:
        """Key-lifecycle snapshot per tenant (the ``/statusz`` section).

        Surfaces exactly the state :meth:`Tenant.check_access` gates on:
        the store's *live* rotation generation next to the generation the
        tenant was provisioned at (they diverge when a rotation ran under
        the serving replica) and the device's revocation flag.
        """
        return {
            name: {
                "device_id": tenant.device_id,
                "generation": tenant.store.generation,
                "provisioned_generation": tenant.generation,
                "revoked": tenant.store.is_revoked(tenant.device_id),
            }
            for name, tenant in sorted(self._tenants.items())
        }

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        return iter(self._tenants.values())


__all__ = [
    "CLASS_STATE_FILE",
    "MODEL_FILE",
    "ModelRegistry",
    "Tenant",
    "load_tenant",
    "provision_tenant",
]
