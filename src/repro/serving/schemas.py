"""Request parsing and response shaping for the serving surface.

Requests are plain JSON; responses are dataclasses with ``to_dict()``
(the same schema-stability discipline as
:mod:`repro.experiments.records`). Parsing raises
:class:`~repro.serving.errors.RequestValidationError` (→ 422) on any
contract violation it can see without an encoder; shape mismatches
against a *specific* tenant surface later as
:class:`~repro.errors.DimensionMismatchError` from the encoder itself,
which the adapter also maps to 422.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Final

import numpy as np

from repro.serving.errors import RequestValidationError

__all__ = [
    "MAX_ROWS_PER_REQUEST",
    "ClassifyResponse",
    "EncodeResponse",
    "HealthResponse",
    "TenantDescriptor",
    "hex_to_packed_row",
    "packed_rows_to_hex",
    "parse_samples",
]

#: Upper bound on rows per request — one request must not monopolize the
#: batcher window (heavy traffic is many small requests, not one giant).
MAX_ROWS_PER_REQUEST: Final[int] = 4096


def parse_samples(payload: Any) -> np.ndarray:
    """Extract a ``(B, N)`` int64 level matrix from a request body.

    Accepts ``{"sample": [..]}`` (one row) or ``{"samples": [[..], ..]}``
    and rejects everything else loudly: ragged rows, non-integer
    entries, empty batches, oversize batches. Negative / out-of-range
    levels are left to the encoder's own validation so the error message
    can name the tenant's actual level count.
    """
    if not isinstance(payload, dict):
        raise RequestValidationError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    if ("sample" in payload) == ("samples" in payload):
        raise RequestValidationError(
            "request must carry exactly one of 'sample' (one row) or "
            "'samples' (a batch)"
        )
    rows = [payload["sample"]] if "sample" in payload else payload["samples"]
    if not isinstance(rows, list) or not rows:
        raise RequestValidationError("'samples' must be a non-empty JSON array")
    if len(rows) > MAX_ROWS_PER_REQUEST:
        raise RequestValidationError(
            f"request carries {len(rows)} rows, limit is "
            f"{MAX_ROWS_PER_REQUEST}; split the batch"
        )
    widths = set()
    for row in rows:
        if not isinstance(row, list) or not row:
            raise RequestValidationError(
                "each sample must be a non-empty JSON array of integer levels"
            )
        widths.add(len(row))
        for value in row:
            # bool is an int subclass; a JSON true/false row is a bug.
            if not isinstance(value, int) or isinstance(value, bool):
                raise RequestValidationError(
                    f"sample entries must be integer level indices, got "
                    f"{value!r}"
                )
    if len(widths) != 1:
        raise RequestValidationError(
            f"samples are ragged: row lengths {sorted(widths)}"
        )
    return np.asarray(rows, dtype=np.int64)


@dataclass(frozen=True)
class HealthResponse:
    """``/healthz`` body."""

    status: str
    version: str
    tenants: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "version": self.version,
            "tenants": self.tenants,
        }


@dataclass(frozen=True)
class TenantDescriptor:
    """One entry of the ``/v1/models`` listing."""

    name: str
    dim: int
    n_features: int
    levels: int
    n_classes: int
    layers: int
    pool_size: int
    device_id: int
    generation: int
    revoked: bool
    batch_stats: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "dim": self.dim,
            "n_features": self.n_features,
            "levels": self.levels,
            "n_classes": self.n_classes,
            "layers": self.layers,
            "pool_size": self.pool_size,
            "device_id": self.device_id,
            "generation": self.generation,
            "revoked": self.revoked,
            "batch_stats": dict(self.batch_stats),
        }


@dataclass(frozen=True)
class ClassifyResponse:
    """``/v1/{tenant}/classify`` body."""

    tenant: str
    labels: tuple[int, ...]

    def to_dict(self) -> dict[str, Any]:
        return {"tenant": self.tenant, "labels": list(self.labels)}


@dataclass(frozen=True)
class EncodeResponse:
    """``/v1/{tenant}/encode`` body.

    Hypervectors travel in the packed bit domain end to end: each row is
    the hex encoding of the big-endian bytes of its ``ceil(D/64)``
    uint64 words — exactly what ``encode_batch_packed`` produced, no
    unpacking server-side. ``dim`` tells the client how many of the
    trailing bits are padding.
    """

    tenant: str
    dim: int
    packed_hex: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "dim": self.dim,
            "packed_hex": list(self.packed_hex),
        }


def packed_rows_to_hex(packed: np.ndarray) -> tuple[str, ...]:
    """Hex-encode ``(B, W)`` uint64 packed rows (big-endian words)."""
    rows = np.ascontiguousarray(packed.astype(">u8", copy=False))
    return tuple(bytes(row.tobytes()).hex() for row in rows)


def hex_to_packed_row(text: str) -> np.ndarray:
    """Inverse of :func:`packed_rows_to_hex` for one row (client helper)."""
    raw = bytes.fromhex(text)
    if len(raw) % 8:
        raise RequestValidationError(
            f"packed hex length {len(text)} is not a whole number of words"
        )
    return np.frombuffer(raw, dtype=">u8").astype(np.uint64)
