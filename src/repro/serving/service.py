"""The use-case core behind the HTTP adapter.

:class:`InferenceService` owns the registry, one pair of micro-batchers
per tenant (encode / classify — rows from different tenants run under
different keys and must never share a batch matrix), and the request
lifecycle: resolve tenant → key access gate → validate → batch →
response dataclass. No HTTP types appear here; the ASGI adapter in
:mod:`repro.serving.app` is a thin translation layer, which is what
keeps the core drivable from tests and the load bench without a socket.
"""

from __future__ import annotations

from typing import Any

import numpy as np

import repro
from repro.errors import ConfigurationError, DimensionMismatchError
from repro.serving.batcher import MicroBatcher
from repro.serving.registry import ModelRegistry, Tenant
from repro.serving.schemas import (
    ClassifyResponse,
    EncodeResponse,
    HealthResponse,
    packed_rows_to_hex,
    parse_samples,
)

#: Default micro-batch window: wide enough to coalesce a concurrency-16
#: burst, short enough to be invisible next to an encode call.
DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_WAIT_S = 0.002


class _TenantLane:
    """The two per-tenant batchers (one per operation)."""

    def __init__(
        self, tenant: Tenant, max_batch: int, max_wait_s: float
    ) -> None:
        self.encode = MicroBatcher(
            tenant.encoder.encode_batch_packed,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            name=f"{tenant.name}/encode",
        )
        self.classify = MicroBatcher(
            tenant.classifier.predict,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            name=f"{tenant.name}/classify",
        )

    def stats(self) -> dict:
        return {
            "encode": self.encode.stats.to_dict(),
            "classify": self.classify.stats.to_dict(),
        }


class InferenceService:
    """Multi-tenant locked-inference core over a :class:`ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_s: float = DEFAULT_MAX_WAIT_S,
    ) -> None:
        self.registry = registry
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self._lanes: dict[str, _TenantLane] = {}

    # -- lifecycle (wired to ASGI lifespan) ----------------------------

    async def startup(self) -> None:
        """Build batcher lanes for every registered tenant."""
        for tenant in self.registry:
            self._lane(tenant)

    async def shutdown(self) -> None:
        """Deterministically drain: flush every lane's in-flight window."""
        for lane in self._lanes.values():
            await lane.encode.aclose()
            await lane.classify.aclose()

    def _lane(self, tenant: Tenant) -> _TenantLane:
        lane = self._lanes.get(tenant.name)
        if lane is None:
            lane = _TenantLane(tenant, self.max_batch, self.max_wait_s)
            self._lanes[tenant.name] = lane
        return lane

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> HealthResponse:
        return HealthResponse(
            status="ok",
            version=repro.__version__,
            tenants=len(self.registry),
        )

    def models(self) -> dict:
        """The ``/v1/models`` listing with live batching stats."""
        entries = []
        for tenant in self.registry:
            lane = self._lanes.get(tenant.name)
            entries.append(
                tenant.descriptor(lane.stats() if lane else {}).to_dict()
            )
        return {"models": sorted(entries, key=lambda e: e["name"])}

    def _admit(self, tenant_name: str) -> tuple[Tenant, _TenantLane]:
        """Resolve the tenant and run the per-request key gate."""
        tenant = self.registry.get(tenant_name)
        tenant.check_access()
        return tenant, self._lane(tenant)

    @staticmethod
    def _validate_rows(tenant: Tenant, rows: np.ndarray) -> np.ndarray:
        """Per-request shape/range validation, *before* batching.

        The batcher stacks chunks from many requests into one matrix; a
        bad row discovered inside the batch call would fail every
        co-batched request. Rejecting here keeps the blast radius of a
        malformed request to that request (→ 422 via the adapter).
        """
        encoder = tenant.encoder
        if rows.shape[1] != encoder.n_features:
            raise DimensionMismatchError(
                f"sample has {rows.shape[1]} features, tenant "
                f"{tenant.name!r} expects {encoder.n_features}"
            )
        if rows.size and (rows.min() < 0 or rows.max() >= encoder.levels):
            raise ConfigurationError(
                f"level indices must lie in [0, {encoder.levels}), got "
                f"range [{rows.min()}, {rows.max()}]"
            )
        return rows

    async def classify(self, tenant_name: str, payload: Any) -> ClassifyResponse:
        tenant, lane = self._admit(tenant_name)
        rows = self._validate_rows(tenant, parse_samples(payload))
        labels = await lane.classify.submit(rows)
        return ClassifyResponse(
            tenant=tenant.name,
            labels=tuple(int(label) for label in np.asarray(labels)),
        )

    async def encode(self, tenant_name: str, payload: Any) -> EncodeResponse:
        tenant, lane = self._admit(tenant_name)
        rows = self._validate_rows(tenant, parse_samples(payload))
        packed = await lane.encode.submit(rows)
        return EncodeResponse(
            tenant=tenant.name,
            dim=tenant.encoder.dim,
            packed_hex=packed_rows_to_hex(np.asarray(packed)),
        )
