"""The use-case core behind the HTTP adapter.

:class:`InferenceService` owns the registry, one pair of micro-batchers
per tenant (encode / classify — rows from different tenants run under
different keys and must never share a batch matrix), and the request
lifecycle: resolve tenant → key access gate → validate → batch →
response dataclass. No HTTP types appear here; the ASGI adapter in
:mod:`repro.serving.app` is a thin translation layer, which is what
keeps the core drivable from tests and the load bench without a socket.
"""

from __future__ import annotations

import time
from typing import Any, Awaitable, Callable, TypeVar

import numpy as np

import repro
from repro.errors import ConfigurationError, DimensionMismatchError
from repro.obs.metrics import (
    BATCH_OCCUPANCY_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    NullMetrics,
)
from repro.obs.trace import SpanRecorder, span
from repro.serving.batcher import MicroBatcher
from repro.serving.errors import KeyAccessError, ServingError, UnknownTenantError
from repro.serving.registry import ModelRegistry, Tenant
from repro.serving.schemas import (
    ClassifyResponse,
    EncodeResponse,
    HealthResponse,
    packed_rows_to_hex,
    parse_samples,
)

#: Default micro-batch window: wide enough to coalesce a concurrency-16
#: burst, short enough to be invisible next to an encode call.
DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_WAIT_S = 0.002

#: Metric label for requests naming a tenant that does not exist.
#: Attacker-supplied URL segments must not mint label values, or the
#: registry's cardinality is client-controlled.
UNKNOWN_TENANT_LABEL = "_unknown"

_T = TypeVar("_T")


class _TenantLane:
    """The two per-tenant batchers (one per operation)."""

    def __init__(
        self,
        tenant: Tenant,
        max_batch: int,
        max_wait_s: float,
        occupancy: Histogram | None = None,
    ) -> None:
        def _observer(op: str) -> Callable[[int], None] | None:
            if occupancy is None:
                return None
            return occupancy.bind(tenant=tenant.name, op=op).observe

        self.encode = MicroBatcher(
            tenant.encoder.encode_batch_packed,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            name=f"{tenant.name}/encode",
            on_flush=_observer("encode"),
        )
        self.classify = MicroBatcher(
            tenant.classifier.predict,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            name=f"{tenant.name}/classify",
            on_flush=_observer("classify"),
        )

    def stats(self, reset: bool = False) -> dict:
        return {
            "encode": self.encode.stats.snapshot(reset=reset),
            "classify": self.classify.stats.snapshot(reset=reset),
        }


class InferenceService:
    """Multi-tenant locked-inference core over a :class:`ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_s: float = DEFAULT_MAX_WAIT_S,
        metrics: Any = None,
        spans: SpanRecorder | None = None,
    ) -> None:
        self.registry = registry
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self._lanes: dict[str, _TenantLane] = {}
        #: MetricsRegistry or NullMetrics — same surface either way, so
        #: the request path ticks instruments unconditionally.
        self.metrics = metrics if metrics is not None else NullMetrics()
        #: Optional span sink; None keeps span() a single None-check.
        self.spans = spans
        self._started_monotonic: float | None = None
        m = self.metrics
        self._m_requests = m.counter(
            "repro_requests_total",
            "Requests by tenant, operation, and outcome.",
            labels=("tenant", "op", "outcome"),
        )
        self._m_latency = m.histogram(
            "repro_request_latency_seconds",
            "End-to-end service latency per request (seconds).",
            labels=("tenant", "op"),
            buckets=DEFAULT_LATENCY_BUCKETS_S,
        )
        self._m_denials = m.counter(
            "repro_key_gate_denials_total",
            "Requests refused by the per-request key-access gate.",
            labels=("tenant", "reason"),
        )
        self._m_occupancy = m.histogram(
            "repro_batch_occupancy_rows",
            "Rows coalesced into each micro-batch kernel call.",
            labels=("tenant", "op"),
            buckets=BATCH_OCCUPANCY_BUCKETS,
        )
        self._m_tenants = m.gauge(
            "repro_tenants", "Tenants currently registered."
        )
        #: Bound (requests-ok, latency) children per (tenant, op): label
        #: resolution costs ~5x the underlying tick, so the steady-state
        #: path resolves each pair once. Error outcomes are rare and
        #: take the unbound path.
        self._hot: dict[tuple[str, str], tuple[Any, Any]] = {}

    # -- lifecycle (wired to ASGI lifespan) ----------------------------

    async def startup(self) -> None:
        """Build batcher lanes for every registered tenant."""
        self._started_monotonic = time.monotonic()
        for tenant in self.registry:
            self._lane(tenant)
        self._m_tenants.set(len(self.registry))

    async def shutdown(self) -> None:
        """Deterministically drain: flush every lane's in-flight window."""
        for lane in self._lanes.values():
            await lane.encode.aclose()
            await lane.classify.aclose()

    def _lane(self, tenant: Tenant) -> _TenantLane:
        lane = self._lanes.get(tenant.name)
        if lane is None:
            occupancy = (
                self._m_occupancy if self.metrics.enabled else None
            )
            lane = _TenantLane(
                tenant, self.max_batch, self.max_wait_s, occupancy
            )
            if self.metrics.enabled:
                # Kernel-level counters (rows per path, scratch reuse)
                # ride the same registry, labelled by tenant.
                tenant.encoder.plan.instrument(
                    self.metrics, scope=tenant.name
                )
            self._lanes[tenant.name] = lane
        return lane

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> HealthResponse:
        return HealthResponse(
            status="ok",
            version=repro.__version__,
            tenants=len(self.registry),
        )

    def models(self) -> dict:
        """The ``/v1/models`` listing with live batching stats."""
        entries = []
        for tenant in self.registry:
            lane = self._lanes.get(tenant.name)
            entries.append(
                tenant.descriptor(lane.stats() if lane else {}).to_dict()
            )
        return {"models": sorted(entries, key=lambda e: e["name"])}

    def _admit(self, tenant_name: str) -> tuple[Tenant, _TenantLane]:
        """Resolve the tenant and run the per-request key gate."""
        tenant = self.registry.get(tenant_name)
        tenant.check_access()
        return tenant, self._lane(tenant)

    @staticmethod
    def _validate_rows(tenant: Tenant, rows: np.ndarray) -> np.ndarray:
        """Per-request shape/range validation, *before* batching.

        The batcher stacks chunks from many requests into one matrix; a
        bad row discovered inside the batch call would fail every
        co-batched request. Rejecting here keeps the blast radius of a
        malformed request to that request (→ 422 via the adapter).
        """
        encoder = tenant.encoder
        if rows.shape[1] != encoder.n_features:
            raise DimensionMismatchError(
                f"sample has {rows.shape[1]} features, tenant "
                f"{tenant.name!r} expects {encoder.n_features}"
            )
        if rows.size and (rows.min() < 0 or rows.max() >= encoder.levels):
            raise ConfigurationError(
                f"level indices must lie in [0, {encoder.levels}), got "
                f"range [{rows.min()}, {rows.max()}]"
            )
        return rows

    async def _instrumented(
        self,
        op: str,
        tenant_name: str,
        serve: Callable[[], Awaitable[_T]],
    ) -> _T:
        """Run one request under a span, a latency sample, and counters.

        The ``tenant`` label is only ever a *registered* tenant name or
        :data:`UNKNOWN_TENANT_LABEL` — URL segments naming nonexistent
        tenants must not mint new label values.
        """
        started = time.perf_counter()
        outcome = "ok"
        label = tenant_name
        try:
            with span(f"{op}/{tenant_name}", self.spans):
                return await serve()
        except UnknownTenantError:
            outcome = "unknown_tenant"
            label = UNKNOWN_TENANT_LABEL
            raise
        except KeyAccessError as exc:
            outcome = "key_access_denied"
            self._m_denials.inc(
                tenant=tenant_name,
                reason=str(exc.extra.get("reason", "unknown")),
            )
            raise
        except ServingError as exc:
            outcome = exc.code
            raise
        except (ConfigurationError, DimensionMismatchError):
            outcome = "invalid_request"
            raise
        except Exception:
            outcome = "internal_error"
            raise
        finally:
            key = (label, op)
            hot = self._hot.get(key)
            if hot is None:
                hot = (
                    self._m_requests.bind(
                        tenant=label, op=op, outcome="ok"
                    ),
                    self._m_latency.bind(tenant=label, op=op),
                )
                self._hot[key] = hot
            if outcome == "ok":
                hot[0].inc()
            else:
                self._m_requests.inc(tenant=label, op=op, outcome=outcome)
            hot[1].observe(time.perf_counter() - started)

    async def classify(self, tenant_name: str, payload: Any) -> ClassifyResponse:
        async def serve() -> ClassifyResponse:
            tenant, lane = self._admit(tenant_name)
            rows = self._validate_rows(tenant, parse_samples(payload))
            labels = await lane.classify.submit(rows)
            return ClassifyResponse(
                tenant=tenant.name,
                labels=tuple(int(label) for label in np.asarray(labels)),
            )

        return await self._instrumented("classify", tenant_name, serve)

    async def encode(self, tenant_name: str, payload: Any) -> EncodeResponse:
        async def serve() -> EncodeResponse:
            tenant, lane = self._admit(tenant_name)
            rows = self._validate_rows(tenant, parse_samples(payload))
            packed = await lane.encode.submit(rows)
            return EncodeResponse(
                tenant=tenant.name,
                dim=tenant.encoder.dim,
                packed_hex=packed_rows_to_hex(np.asarray(packed)),
            )

        return await self._instrumented("encode", tenant_name, serve)

    # -- introspection (/statusz) --------------------------------------

    def uptime_s(self) -> float | None:
        """Seconds since lifespan startup, None before startup."""
        if self._started_monotonic is None:
            return None
        return time.monotonic() - self._started_monotonic

    def statusz(self, reset: bool = False) -> dict:
        """The ``/statusz`` body: batchers, tenants, uptime, metrics.

        ``reset=True`` zeroes the per-lane :class:`BatchStats` after
        reading them (``/statusz?reset=1``), giving periodic scrapers
        per-interval coalescing numbers instead of since-boot totals.
        """
        return {
            "status": "ok",
            "version": repro.__version__,
            "uptime_s": self.uptime_s(),
            "tenants": self.registry.status(),
            "batchers": {
                name: lane.stats(reset=reset)
                for name, lane in sorted(self._lanes.items())
            },
            "metrics": self.metrics.snapshot(),
        }
