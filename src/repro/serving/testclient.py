"""In-process ASGI client: drive the app without sockets or deps.

The client owns a private event loop on a background thread and submits
each request as a coroutine via ``run_coroutine_threadsafe`` — the same
portal pattern starlette's TestClient uses. That makes it safe to call
from many client threads at once, which is exactly what the load bench
does to generate concurrency: N threads block on their futures while
the single loop thread coalesces their requests in the micro-batcher.

Entering the context manager runs the app's lifespan startup; leaving
runs shutdown (flushing the batcher windows) and stops the loop.
"""

from __future__ import annotations

import asyncio
import json as _json
import threading
from typing import Any

from repro.serving.asgi import App


class Response:
    """Captured response: status plus parsed JSON body."""

    def __init__(self, status: int, headers: list, body: bytes) -> None:
        self.status = status
        self.headers = {
            key.decode(): value.decode() for key, value in headers
        }
        self.content = body

    def json(self) -> Any:
        return _json.loads(self.content)

    def __repr__(self) -> str:
        return f"Response({self.status}, {self.content[:80]!r})"


class TestClient:
    """Synchronous facade over an ASGI app running on a private loop."""

    #: Not a test case, despite the (starlette-conventional) name.
    __test__ = False

    def __init__(self, app: App, timeout_s: float = 30.0) -> None:
        self.app = app
        self.timeout_s = timeout_s
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._lifespan_in: asyncio.Queue | None = None
        self._lifespan_events: asyncio.Queue | None = None
        self._lifespan_task: asyncio.Future | None = None

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "TestClient":
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            started.set()
            loop.run_forever()
            loop.close()

        self._thread = threading.Thread(
            target=run, name="serving-testclient", daemon=True
        )
        self._thread.start()
        started.wait()
        self._call(self._start_lifespan())
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self._call(self._stop_lifespan())
        finally:
            assert self._loop is not None
            self._loop.call_soon_threadsafe(self._loop.stop)
            assert self._thread is not None
            self._thread.join(timeout=self.timeout_s)
            self._loop = None
            self._thread = None

    def _call(self, coro) -> Any:
        assert self._loop is not None, "use TestClient as a context manager"
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=self.timeout_s)

    async def _start_lifespan(self) -> None:
        self._lifespan_in = asyncio.Queue()
        events: asyncio.Queue = asyncio.Queue()

        async def send(message: dict) -> None:
            await events.put(message)

        self._lifespan_task = asyncio.ensure_future(
            self.app({"type": "lifespan"}, self._lifespan_in.get, send)
        )
        await self._lifespan_in.put({"type": "lifespan.startup"})
        ack = await events.get()
        if ack["type"] != "lifespan.startup.complete":
            raise RuntimeError(f"lifespan startup failed: {ack}")
        self._lifespan_events = events

    async def _stop_lifespan(self) -> None:
        assert self._lifespan_in is not None and self._lifespan_events is not None
        await self._lifespan_in.put({"type": "lifespan.shutdown"})
        ack = await self._lifespan_events.get()
        if ack["type"] != "lifespan.shutdown.complete":
            raise RuntimeError(f"lifespan shutdown failed: {ack}")
        assert self._lifespan_task is not None
        await self._lifespan_task

    # -- requests ------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        json: Any | None = None,
        headers: dict[str, str] | None = None,
    ) -> Response:
        body = b"" if json is None else _json.dumps(json).encode()
        return self._call(self._request(method, path, body, headers or {}))

    def get(self, path: str, headers: dict[str, str] | None = None) -> Response:
        return self.request("GET", path, headers=headers)

    def post(
        self, path: str, json: Any, headers: dict[str, str] | None = None
    ) -> Response:
        return self.request("POST", path, json=json, headers=headers)

    async def _request(
        self, method: str, path: str, body: bytes, headers: dict[str, str]
    ) -> Response:
        path, _, query = path.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": path.encode(),
            "query_string": query.encode("latin-1"),
            "headers": [(b"content-type", b"application/json")]
            + [
                (key.lower().encode("latin-1"), value.encode("latin-1"))
                for key, value in headers.items()
            ],
        }
        received = False

        async def receive() -> dict:
            nonlocal received
            if received:
                return {"type": "http.disconnect"}
            received = True
            return {"type": "http.request", "body": body, "more_body": False}

        messages: list[dict] = []

        async def send(message: dict) -> None:
            messages.append(message)

        await self.app(scope, receive, send)
        status = 500
        headers: list = []
        chunks: list[bytes] = []
        for message in messages:
            if message["type"] == "http.response.start":
                status = message["status"]
                headers = message.get("headers", [])
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))
        return Response(status, headers, b"".join(chunks))
