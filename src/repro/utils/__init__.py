"""Small shared utilities: seeded RNG handling, timers, ASCII tables."""

from repro.utils.rng import DEFAULT_SEED, derive_seed, resolve_rng, spawn_rngs
from repro.utils.tables import format_quantity, format_seconds, render_table
from repro.utils.timer import Timer, time_call

__all__ = [
    "DEFAULT_SEED",
    "derive_seed",
    "resolve_rng",
    "spawn_rngs",
    "Timer",
    "time_call",
    "render_table",
    "format_quantity",
    "format_seconds",
]
