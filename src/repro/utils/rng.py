"""Seeded random-number-generator helpers.

All stochastic code in this library takes a ``seed`` argument that may be
``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`. :func:`resolve_rng` normalizes the three
forms so call sites never branch, and :func:`spawn_rngs` derives
independent child generators for sub-components (e.g. one stream for the
feature memory, one for the value memory, one for sign tie-breaking) so
experiments stay reproducible even when intermediate steps are reordered.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Seed used by the experiment modules when the caller does not pick one.
DEFAULT_SEED = 0x4D1C

SeedLike = Union[None, int, np.random.Generator]


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` draws fresh OS entropy, an ``int`` seeds a new PCG64 stream,
    and an existing generator is passed through unchanged (so callers can
    share one stream across several helpers).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(*parts: object) -> int:
    """Derive a stable 63-bit seed from arbitrary hashable parts.

    Python's built-in ``hash`` is salted per process, so experiment code
    that needs "one reproducible stream per (seed, benchmark, flavor)"
    derives it from a SHA-256 of the repr instead.
    """
    import hashlib

    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn`, so the children are
    independent of each other *and* of the parent's future output.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return resolve_rng(seed).spawn(count)
