"""Plain-text table rendering for experiment reports.

The experiment modules reproduce the paper's tables and figure series as
text so the benchmark harness can print them without any plotting
dependency. The helpers here keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_quantity(value: float) -> str:
    """Format a count that may span many orders of magnitude.

    Small integers print exactly (``784``); large values use scientific
    notation with two decimals (``4.81e+16``) to match how the paper
    quotes attack complexities.
    """
    if value == 0:
        return "0"
    if abs(value) < 1e6 and float(value).is_integer():
        return str(int(value))
    return f"{value:.2e}"


def format_seconds(seconds: float) -> str:
    """Format a duration the way Table 1 of the paper does (seconds)."""
    if seconds < 0.01:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds:.2f}s"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    All cells are stringified with ``str``; numeric alignment is right,
    text alignment is left, mirroring common benchmark-report layouts.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(str_headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_row(str_headers))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
