"""Wall-clock timing helpers used by the reasoning-time experiments."""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example::

        with Timer() as t:
            run_attack()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self.start


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``fn(*args, **kwargs)`` and return ``(result, elapsed_seconds)``."""
    with Timer() as t:
        result = fn(*args, **kwargs)
    return result, t.elapsed
