"""The ``python -m repro.analysis`` surface: formats, exit codes, golden.

These run the linter as a subprocess from the repo root — the same
invocation CI's ``static-analysis`` job uses — so argument parsing,
path collection, and exit codes are all exercised for real.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = "tests/analysis/fixtures/all_bad.py.txt"
GOLDEN = Path(__file__).parent / "golden" / "all_bad.json"


def run_lint(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=120,
    )


class TestSeededViolations:
    def test_json_report_matches_golden(self):
        result = run_lint(FIXTURE, "--format", "json")
        assert result.returncode == 1
        assert json.loads(result.stdout) == json.loads(GOLDEN.read_text())

    def test_expected_rule_ids_in_json(self):
        result = run_lint(FIXTURE, "--format", "json")
        payload = json.loads(result.stdout)
        ids = [f["rule"] for f in payload["findings"]]
        assert ids == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL000",
        ]
        assert payload["files_checked"] == 1

    def test_github_format_annotates_each_finding(self):
        result = run_lint(FIXTURE, "--format", "github")
        assert result.returncode == 1
        annotations = [
            line
            for line in result.stdout.splitlines()
            if line.startswith("::error ")
        ]
        assert len(annotations) == 8
        assert f"file={FIXTURE}" in annotations[0]

    def test_text_format_and_exit_code(self):
        result = run_lint(FIXTURE)
        assert result.returncode == 1
        assert f"{FIXTURE}:10:" in result.stdout


class TestCleanRuns:
    def test_clean_fixture_exits_zero(self):
        result = run_lint("tests/analysis/fixtures/rl001_ok.py.txt")
        assert result.returncode == 0
        assert "0 findings" in result.stdout


class TestUsageErrors:
    def test_missing_path_exits_two(self):
        result = run_lint("does/not/exist.py")
        assert result.returncode == 2
        assert "no such file" in result.stderr

    def test_directory_with_no_python_exits_two(self):
        result = run_lint("tests/analysis/golden")
        assert result.returncode == 2

    def test_list_rules(self):
        result = run_lint("--list-rules")
        assert result.returncode == 0
        for rule_id in (
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
        ):
            assert rule_id in result.stdout
