"""Framework mechanics: module inference, registry, findings, parsing."""

from __future__ import annotations

import pytest

from repro.analysis import (
    Finding,
    Rule,
    infer_module,
    lint_source,
    register,
)
from repro.analysis.core import REGISTRY, SYNTAX_ERROR_ID
from repro.analysis.reporting import (
    render_github,
    render_json,
    render_text,
)


class TestInferModule:
    @pytest.mark.parametrize(
        ("path", "module"),
        [
            ("src/repro/hv/ops.py", "repro.hv.ops"),
            ("src/repro/analysis/__init__.py", "repro.analysis"),
            ("tests/hv/test_ops.py", "tests.hv.test_ops"),
            ("benchmarks/bench_serving.py", "benchmarks.bench_serving"),
            ("examples/quickstart.py", "examples.quickstart"),
            ("/abs/path/src/repro/serving/app.py", "repro.serving.app"),
        ],
    )
    def test_paths(self, path, module):
        assert infer_module(path) == module


class TestRegistry:
    def test_register_rejects_missing_id(self):
        class NoId(Rule):
            rule_id = ""

        with pytest.raises(ValueError):
            register(NoId)

    def test_register_rejects_duplicate_id(self):
        class Dup(Rule):
            rule_id = "RL001"
            severity = "error"

        with pytest.raises(ValueError):
            register(Dup)
        assert REGISTRY["RL001"] is not Dup

    def test_register_rejects_unknown_severity(self):
        class BadSev(Rule):
            rule_id = "RL997"
            severity = "fatal"

        with pytest.raises(ValueError):
            register(BadSev)
        assert "RL997" not in REGISTRY


class TestSyntaxError:
    def test_unparseable_file_is_one_finding(self):
        findings = lint_source("def broken(:\n", "t.py")
        assert len(findings) == 1
        assert findings[0].rule_id == SYNTAX_ERROR_ID
        assert "does not parse" in findings[0].message


class TestRendering:
    FINDINGS = [
        Finding(
            rule_id="RL001",
            message="message with % and\nnewline",
            path="src/x.py",
            line=3,
            col=4,
        )
    ]

    def test_text(self):
        out = render_text(self.FINDINGS, files_checked=2)
        assert "src/x.py:3:4: RL001" in out
        assert "1 finding in 2 files" in out

    def test_json_is_stable_and_parseable(self):
        import json

        payload = json.loads(render_json(self.FINDINGS, files_checked=2))
        assert payload["schema"] == 1
        assert payload["files_checked"] == 2
        assert payload["findings"][0]["rule"] == "RL001"

    def test_github_escapes_workflow_data(self):
        out = render_github(self.FINDINGS, files_checked=2)
        line = out.splitlines()[0]
        assert line.startswith("::error file=src/x.py,line=3,col=5,")
        assert "%25" in line and "%0A" in line
        assert "\n" not in line
