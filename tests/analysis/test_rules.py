"""Every rule: seeded-violation fixtures fire, clean twins stay silent."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import all_rules, lint_file, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def rule_ids(findings) -> list[str]:
    return [f.rule_id for f in findings]


class TestRegistry:
    def test_seven_domain_rules_registered(self):
        ids = [cls.rule_id for cls in all_rules()]
        assert ids == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
        ]

    def test_every_rule_documents_itself(self):
        for cls in all_rules():
            assert cls.title, cls.rule_id
            assert len(cls.rationale) > 40, cls.rule_id
            assert cls.severity == "error"


#: fixture stem -> rule id expected from its ``_bad`` file.
CASES = {
    "rl001": "RL001",
    "rl002": "RL002",
    "rl003": "RL003",
    "rl004": "RL004",
    "rl005": "RL005",
    "rl006": "RL006",
    "rl007": "RL007",
}


class TestFixturePairs:
    @pytest.mark.parametrize("stem", sorted(CASES))
    def test_bad_fixture_fires_its_rule(self, stem):
        findings = lint_file(FIXTURES / f"{stem}_bad.py.txt")
        ids = rule_ids(findings)
        assert CASES[stem] in ids
        # At least two distinct violation sites per fixture, so a rule
        # that stops scanning after its first hit cannot pass.
        assert ids.count(CASES[stem]) >= 2

    @pytest.mark.parametrize("stem", sorted(CASES))
    def test_clean_twin_is_silent(self, stem):
        findings = lint_file(FIXTURES / f"{stem}_ok.py.txt")
        assert findings == []


class TestDeterminismRule:
    def test_alias_does_not_dodge_the_rule(self):
        findings = lint_source(
            "import numpy.random as nprand\nx = nprand.rand(3)\n", "t.py"
        )
        assert rule_ids(findings) == ["RL001"]

    def test_from_import_of_legacy_fn(self):
        findings = lint_source(
            "from numpy.random import randint\nx = randint(0, 5)\n", "t.py"
        )
        assert rule_ids(findings) == ["RL001"]

    def test_generator_methods_are_sanctioned(self):
        clean = (
            "import numpy as np\n"
            "rng = np.random.default_rng(3)\n"
            "x = rng.random(4)\n"
            "y = rng.choice([1, 2])\n"
            "seq = np.random.SeedSequence(3)\n"
        )
        assert lint_source(clean, "t.py") == []

    def test_clock_seed_nested_in_expression(self):
        findings = lint_source(
            "import time\nimport numpy as np\n"
            "rng = np.random.default_rng(int(time.time()) % 2**32)\n",
            "t.py",
        )
        assert rule_ids(findings) == ["RL001"]


class TestPackedRule:
    def test_allowed_modules_may_pack(self):
        src = "import numpy as np\nb = np.packbits(np.ones(8, np.uint8))\n"
        assert lint_source(src, "t.py", module="repro.hv.packing") == []
        assert lint_source(src, "t.py", module="repro.hv.bitslice") == []
        assert rule_ids(lint_source(src, "t.py", module="repro.hv.ops")) == [
            "RL002"
        ]

    def test_astype_heuristic_keys_on_packed_names(self):
        flagged = "def f(packed):\n    return packed.astype('int64')\n"
        clean = "def f(counts):\n    return counts.astype('int64')\n"
        assert rule_ids(lint_source(flagged, "t.py")) == ["RL002"]
        assert lint_source(clean, "t.py") == []

    def test_unsigned_cast_of_packed_is_fine(self):
        src = "def f(packed):\n    return packed.astype('uint64')\n"
        assert lint_source(src, "t.py") == []


class TestAsyncRule:
    def test_sync_function_may_block(self):
        src = "import time\ndef f():\n    time.sleep(1)\n"
        assert lint_source(src, "t.py") == []

    def test_nested_async_inside_sync_is_flagged(self):
        src = (
            "import time\n"
            "def outer():\n"
            "    async def inner():\n"
            "        time.sleep(1)\n"
            "    return inner\n"
        )
        assert rule_ids(lint_source(src, "t.py")) == ["RL003"]


class TestErrorTaxonomyRule:
    def test_out_of_scope_module_not_checked(self):
        src = "def f():\n    raise ValueError('deep library math')\n"
        assert lint_source(src, "t.py", module="repro.hv.ops") == []
        assert rule_ids(
            lint_source(src, "t.py", module="repro.hdlock.keygen")
        ) == ["RL004"]

    def test_logging_handler_is_not_swallowing(self):
        src = (
            "def f(fn, log):\n"
            "    try:\n"
            "        return fn()\n"
            "    except Exception as exc:\n"
            "        log.warning('failed: %s', exc)\n"
            "        return None\n"
        )
        assert lint_source(src, "t.py", module="repro.serving.x") == []


class TestGrowthRule:
    def test_out_of_scope_module_not_checked(self):
        src = (
            "class Log:\n"
            "    def __init__(self):\n"
            "        self._events = []\n"
            "    def record(self, e):\n"
            "        self._events.append(e)\n"
        )
        assert lint_source(src, "t.py", module="repro.experiments.x") == []
        assert rule_ids(
            lint_source(src, "t.py", module="repro.serving.x")
        ) == ["RL006"]

    def test_swap_drain_is_size_custody(self):
        src = (
            "class Batcher:\n"
            "    def __init__(self):\n"
            "        self._pending = []\n"
            "    def enqueue(self, item):\n"
            "        self._pending.append(item)\n"
            "    def flush(self):\n"
            "        window, self._pending = self._pending, []\n"
            "        return window\n"
        )
        assert lint_source(src, "t.py", module="repro.serving.x") == []

    def test_bounded_constructors_are_not_candidates(self):
        src = (
            "import asyncio\n"
            "import collections\n"
            "class Bounded:\n"
            "    def __init__(self):\n"
            "        self._q = asyncio.Queue(maxsize=8)\n"
            "        self._w = collections.deque(maxlen=8)\n"
            "    async def feed(self, x):\n"
            "        self._q.put_nowait(x)\n"
            "        self._w.append(x)\n"
        )
        assert lint_source(src, "t.py", module="repro.serving.x") == []

    def test_bare_get_reference_is_a_drain_path(self):
        src = (
            "import asyncio\n"
            "class Bridge:\n"
            "    def __init__(self):\n"
            "        self._inbox = asyncio.Queue()\n"
            "    async def pump(self, run):\n"
            "        await run(self._inbox.get)\n"
            "    async def deliver(self, m):\n"
            "        await self._inbox.put(m)\n"
        )
        assert lint_source(src, "t.py", module="repro.serving.x") == []


class TestPrintingRule:
    def test_main_modules_are_exempt(self):
        src = "print('serving on :8100')\n"
        assert lint_source(src, "t.py", module="repro.serving.__main__") == []
        assert rule_ids(
            lint_source(src, "t.py", module="repro.serving.service")
        ) == ["RL007"]

    def test_explicit_stream_is_allowed(self):
        src = "import sys\nprint('diag', file=sys.stderr)\n"
        assert lint_source(src, "t.py", module="repro.analysis.cli") == []

    def test_out_of_package_code_not_checked(self):
        src = "print('tests may print')\n"
        assert lint_source(src, "t.py", module="tests.serving.t") == []


class TestResourceRule:
    def test_reassignment_to_none_still_flagged(self):
        # `fh = None` later is not a release; only close() in a finally
        # (or a custody transfer) counts.
        src = "def f(p):\n    fh = open(p)\n    fh = None\n"
        assert rule_ids(lint_source(src, "t.py")) == ["RL005"]

    def test_contextlib_closing_is_custody(self):
        src = (
            "from contextlib import closing\n"
            "def f(p):\n"
            "    fh = open(p)\n"
            "    with closing(fh) as g:\n"
            "        return g.read()\n"
        )
        assert lint_source(src, "t.py") == []
