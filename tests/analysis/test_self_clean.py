"""Meta-test: the repo passes its own invariant linter.

This is the acceptance gate the CI ``static-analysis`` job enforces;
running it in-tree means a PR that introduces a violation (or a stale
suppression) fails tier-1 locally before CI ever sees it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_lints_clean():
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "src",
            "tests",
            "benchmarks",
            "examples",
            "--format",
            "json",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=300,
    )
    payload = json.loads(result.stdout)
    pretty = "\n".join(
        f"{f['file']}:{f['line']}: {f['rule']} {f['message']}"
        for f in payload["findings"]
    )
    assert result.returncode == 0, f"reprolint findings:\n{pretty}"
    assert payload["findings"] == []
    # The sweep actually covered the repo (guards against a path typo
    # silently shrinking the lint surface).
    assert payload["files_checked"] > 150
