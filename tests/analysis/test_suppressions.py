"""Suppression directives: matching, hygiene findings, module override."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import SUPPRESSION_HYGIENE_ID, lint_file, lint_source
from repro.analysis.suppressions import (
    parse_directives,
    parse_module_override,
)

FIXTURES = Path(__file__).parent / "fixtures"


def rule_ids(findings) -> list[str]:
    return [f.rule_id for f in findings]


class TestSuppression:
    def test_justified_suppression_silences_the_finding(self):
        assert lint_file(FIXTURES / "suppressed_ok.py.txt") == []

    def test_unused_suppression_is_a_finding(self):
        findings = lint_file(FIXTURES / "suppression_hygiene_bad.py.txt")
        ids = rule_ids(findings)
        assert ids.count(SUPPRESSION_HYGIENE_ID) == 2
        messages = " | ".join(f.message for f in findings)
        assert "unused suppression" in messages
        assert "no justification" in messages

    def test_suppression_only_covers_its_own_line(self):
        src = (
            "import numpy as np\n"
            "a = np.random.rand(1)  # reprolint: disable=RL001 -- line one\n"
            "b = np.random.rand(1)\n"
        )
        findings = lint_source(src, "t.py")
        assert rule_ids(findings) == ["RL001"]
        assert findings[0].line == 3

    def test_wrong_rule_id_does_not_suppress(self):
        src = (
            "import numpy as np\n"
            "a = np.random.rand(1)  # reprolint: disable=RL002 -- wrong id\n"
        )
        ids = rule_ids(lint_source(src, "t.py"))
        # The RL001 finding survives and the RL002 directive is unused.
        assert sorted(ids) == [SUPPRESSION_HYGIENE_ID, "RL001"]

    def test_multi_rule_directive(self):
        src = (
            "import numpy as np\n"
            "import time\n"
            "async def f(p):\n"
            "    fh = open(p)  "
            "# reprolint: disable=RL003,RL005 -- fixture: both rules hit\n"
            "    return fh\n"
        )
        assert lint_source(src, "t.py") == []

    def test_rl000_cannot_be_suppressed(self):
        src = "x = 1  # reprolint: disable=RL000 -- try to hide hygiene\n"
        ids = rule_ids(lint_source(src, "t.py"))
        assert SUPPRESSION_HYGIENE_ID in ids

    def test_malformed_directive_is_surfaced(self):
        src = "x = 1  # reprolint disable=RL001\n"
        findings = lint_source(src, "t.py")
        assert rule_ids(findings) == [SUPPRESSION_HYGIENE_ID]
        assert "malformed" in findings[0].message

    def test_prose_mentioning_reprolint_is_not_malformed(self):
        # Comments may talk *about* the tool (docs, rationale notes)
        # without being parsed as broken directives.
        src = "x = 1  # reprolint's RL004 rule keys on these names\n"
        assert parse_directives(src) == []
        assert lint_source(src, "t.py") == []

    def test_directive_inside_string_is_ignored(self):
        src = 's = "# reprolint: disable=RL001 -- not a comment"\n'
        assert parse_directives(src) == []
        assert lint_source(src, "t.py") == []


class TestModuleOverride:
    def test_parse(self):
        assert (
            parse_module_override("# reprolint: module=repro.serving.x\n")
            == "repro.serving.x"
        )
        assert parse_module_override("x = 1\n") is None

    def test_override_opts_into_scoped_rules(self):
        src = (
            "# reprolint: module=repro.serving.fixture\n"
            "def f():\n"
            "    raise ValueError('boundary')\n"
        )
        assert rule_ids(lint_source(src, "anywhere/t.py")) == ["RL004"]

    def test_explicit_module_argument_wins(self):
        src = (
            "# reprolint: module=repro.serving.fixture\n"
            "def f():\n"
            "    raise ValueError('boundary')\n"
        )
        assert lint_source(src, "t.py", module="not.scoped") == []

    def test_override_is_not_a_malformed_directive(self):
        src = "# reprolint: module=repro.hv.packing\nx = 1\n"
        assert lint_source(src, "t.py") == []
