"""Registry contracts: naming, duplicates, fresh instantiation."""

from __future__ import annotations

import pytest

import repro.arena  # noqa: F401  (populates both registries)
from repro.arena import registry
from repro.arena.attackers import BruteForceSweeper
from repro.arena.defenders import DefenderSpec
from repro.arena.registry import (
    attacker_names,
    defender_names,
    defender_spec,
    make_attacker,
    register_attacker,
    register_defender,
)
from repro.errors import ConfigurationError


@pytest.fixture
def scratch_registries(monkeypatch):
    """Copy-on-write registries so tests can register without leaking."""
    monkeypatch.setattr(registry, "_ATTACKERS", dict(registry._ATTACKERS))
    monkeypatch.setattr(registry, "_DEFENDERS", dict(registry._DEFENDERS))


class TestBuiltinRosters:
    def test_default_attackers_are_registered(self):
        names = attacker_names()
        for name in (
            "bruteforce",
            "adaptive",
            "differential-prober",
            "plain-reasoning",
        ):
            assert name in names

    def test_default_defenders_are_registered(self):
        names = defender_names()
        for name in (
            "baseline-l2",
            "shallow-l1",
            "nonbinary-l1",
            "monitored-l1",
            "quantized-l1",
            "sparsified-l1",
        ):
            assert name in names


class TestAttackerRegistry:
    def test_make_attacker_returns_fresh_instances(self):
        first = make_attacker("bruteforce")
        second = make_attacker("bruteforce")
        assert first is not second
        assert first.name == "bruteforce"

    def test_unknown_attacker(self):
        with pytest.raises(ConfigurationError, match="unknown attacker"):
            make_attacker("nonexistent")

    def test_reregistering_same_class_is_idempotent(self):
        # module reloads re-run the decorators; that must stay harmless
        assert register_attacker(BruteForceSweeper) is BruteForceSweeper

    def test_duplicate_name_rejected(self, scratch_registries):
        class Impostor:
            name = "bruteforce"

            def run(self, surface, budget, rng):  # pragma: no cover
                raise AssertionError

        with pytest.raises(ConfigurationError, match="duplicate attacker"):
            register_attacker(Impostor)

    def test_missing_name_rejected(self, scratch_registries):
        class Anonymous:
            def run(self, surface, budget, rng):  # pragma: no cover
                raise AssertionError

        with pytest.raises(ConfigurationError, match="name"):
            register_attacker(Anonymous)

    def test_custom_registration_round_trips(self, scratch_registries):
        @register_attacker
        class Custom:
            name = "custom-probe"

            def run(self, surface, budget, rng):  # pragma: no cover
                raise AssertionError

        assert "custom-probe" in attacker_names()
        assert isinstance(make_attacker("custom-probe"), Custom)


class TestDefenderRegistry:
    def test_lookup_returns_registered_spec(self):
        spec = defender_spec("baseline-l2")
        assert spec.name == "baseline-l2"
        assert spec.layers == 2

    def test_unknown_defender(self):
        with pytest.raises(ConfigurationError, match="unknown defender"):
            defender_spec("nonexistent")

    def test_reregistering_equal_spec_is_idempotent(self):
        spec = defender_spec("shallow-l1")
        assert register_defender(DefenderSpec("shallow-l1", layers=1)) == spec

    def test_conflicting_spec_rejected(self, scratch_registries):
        with pytest.raises(ConfigurationError, match="duplicate defender"):
            register_defender(DefenderSpec("shallow-l1", layers=3))


class TestDefenderSpecValidation:
    def test_empty_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            DefenderSpec("")

    def test_bad_layers(self):
        with pytest.raises(ConfigurationError, match="layers"):
            DefenderSpec("x", layers=0)

    def test_bad_pool_size(self):
        with pytest.raises(ConfigurationError, match="pool_size"):
            DefenderSpec("x", pool_size=1)

    def test_bad_variant(self):
        with pytest.raises(ConfigurationError, match="variant"):
            DefenderSpec("x", variant="compressed")
