"""Strategy behavior on the built-in defender configurations.

Each test deploys one registered defender at small scale (N=16, M=8,
D=1024 — every separation the strategies rely on concentrates hard at
this width) and judges the outcome with the arena's own owner-side
evaluation, so these double as end-to-end checks of the duel plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arena import (
    defender_spec,
    deploy_defender,
    duel,
    evaluate_outcome,
    make_attacker,
)
from repro.attack.protocol import AttackBudget

N_FEATURES = 16
LEVELS = 8
DIM = 1024


def arena_cell(attacker_name, defender_name, max_queries=512, seed=91):
    """Deploy a defender, run one duel, judge it. -> (outcome, evaluation)."""
    spec = defender_spec(defender_name)
    system = spec.build_system(N_FEATURES, LEVELS, DIM, seed)
    defense = deploy_defender(spec, system)
    budget = AttackBudget(max_features=4, max_queries=max_queries)
    outcome = duel(
        make_attacker(attacker_name),
        defense,
        budget,
        np.random.default_rng(seed + 1),
    )
    evaluation = evaluate_outcome(
        system.encoder.feature_matrix,
        system.base_pool,
        outcome,
        budget.features(defense.surface),
    )
    return outcome, evaluation


class TestBruteForceSweeper:
    def test_breaks_single_layer(self):
        outcome, evaluation = arena_cell("bruteforce", "shallow-l1")
        assert evaluation.success_rate == 1.0
        assert evaluation.key_distance == 0.0
        assert outcome.candidates_scored > 0

    def test_commits_wrong_on_two_layers(self):
        # the sweep always commits; at L=2 its single-layer guesses land
        # at chance distance and recover nothing
        outcome, evaluation = arena_cell("bruteforce", "baseline-l2")
        assert outcome.abstentions == 0
        assert evaluation.features_recovered == 0
        assert abs(evaluation.key_distance - 0.5) < 0.1

    def test_locked_out_by_monitor(self):
        # crafted all-min/all-max probe pairs trip the query monitor
        outcome, evaluation = arena_cell("bruteforce", "monitored-l1")
        assert outcome.locked_out
        assert evaluation.features_recovered < 4


class TestAdaptiveExtractor:
    def test_breaks_single_layer(self):
        _, evaluation = arena_cell("adaptive", "shallow-l1")
        assert evaluation.success_rate == 1.0

    def test_abstains_on_two_layers(self):
        # no candidate separates below the acceptance threshold at L=2:
        # the honest outcome is abstention, scored as chance
        outcome, evaluation = arena_cell("adaptive", "baseline-l2")
        assert outcome.abstentions == 4
        assert evaluation.features_recovered == 0
        assert evaluation.key_distance == pytest.approx(0.5)

    def test_cheaper_than_bruteforce_when_it_separates(self):
        adaptive, _ = arena_cell("adaptive", "shallow-l1")
        brute, _ = arena_cell("bruteforce", "shallow-l1")
        assert 0 < adaptive.candidates_scored < brute.candidates_scored


class TestDifferentialProber:
    def test_breaks_single_layer(self):
        _, evaluation = arena_cell("differential-prober", "shallow-l1")
        assert evaluation.success_rate == 1.0

    def test_breaks_nonbinary_transmission(self):
        _, evaluation = arena_cell("differential-prober", "nonbinary-l1")
        assert evaluation.success_rate == 1.0

    def test_evades_query_monitor(self):
        # random-looking probe pairs stay under the monitor's
        # concentration threshold: no lockout, full recovery — the
        # monitor's blind spot, on record
        outcome, evaluation = arena_cell(
            "differential-prober", "monitored-l1"
        )
        assert not outcome.locked_out
        assert evaluation.success_rate == 1.0

    def test_abstains_under_quantization(self):
        # the privacy transform floods the vote with tie-break noise;
        # the prober's evidence floor turns that into abstention, not
        # junk commits
        outcome, evaluation = arena_cell(
            "differential-prober", "quantized-l1"
        )
        assert outcome.abstentions == 4
        assert evaluation.features_recovered == 0


class TestPlainReasoningAdapter:
    def test_collapses_against_the_lock(self):
        # Table 2's point: the Sec. 3 reasoning attack cannot even
        # identify ValHV_1 behind the lock
        outcome, evaluation = arena_cell("plain-reasoning", "shallow-l1")
        assert outcome.guesses == ()
        assert "collapsed" in outcome.notes
        assert evaluation.features_recovered == 0
        assert evaluation.key_distance == pytest.approx(0.5)

    def test_locked_out_by_monitor(self):
        outcome, _ = arena_cell("plain-reasoning", "monitored-l1")
        assert outcome.locked_out or "collapsed" in outcome.notes


class TestBudgets:
    def test_query_budget_truncates_the_sweep(self):
        # two queries buy exactly one crafted pair: one feature attacked
        outcome, evaluation = arena_cell(
            "bruteforce", "shallow-l1", max_queries=2
        )
        assert outcome.queries <= 2
        assert len(outcome.guesses) == 1
        assert "budget" in outcome.notes
        assert evaluation.features_attacked == 4  # scope never shrinks

    def test_all_strategies_respect_the_query_budget(self):
        for name in (
            "bruteforce",
            "adaptive",
            "differential-prober",
            "plain-reasoning",
        ):
            outcome, _ = arena_cell(name, "shallow-l1", max_queries=16)
            assert outcome.queries <= 16, name
