"""Owner-side judgement and duel robustness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arena.defenders import deploy_defender
from repro.arena.registry import defender_spec
from repro.arena.matrix import (
    CHANCE_DISTANCE,
    RECOVERY_THRESHOLD,
    CellEvaluation,
    duel,
    evaluate_outcome,
)
from repro.attack.countermeasures import OracleLockoutError
from repro.attack.protocol import AttackBudget, AttackOutcome, FeatureGuess
from repro.errors import AttackError
from repro.memory.key import SubKey


@pytest.fixture(scope="module")
def system():
    """A shallow (L=1) system whose true subkeys the tests can reuse."""
    return defender_spec("shallow-l1").build_system(8, 4, 512, seed=17)


def outcome_with(guesses):
    return AttackOutcome(
        attacker="test",
        guesses=tuple(guesses),
        queries=0,
        candidates_scored=0,
    )


def judge(system, guesses, features=range(4)):
    return evaluate_outcome(
        system.encoder.feature_matrix,
        system.base_pool,
        outcome_with(guesses),
        features,
    )


class TestEvaluateOutcome:
    def test_true_subkeys_score_zero(self, system):
        guesses = [
            FeatureGuess(f, system.key.subkeys[f], 0.0) for f in range(4)
        ]
        evaluation = judge(system, guesses)
        assert evaluation == CellEvaluation(4, 4, 0.0)
        assert evaluation.success_rate == 1.0

    def test_wrong_subkey_lands_at_chance(self, system):
        true = system.key.subkeys[0]
        wrong_index = (true.indices[0] + 1) % system.base_pool.shape[0]
        wrong = SubKey((int(wrong_index),), tuple(true.rotations))
        evaluation = judge(system, [FeatureGuess(0, wrong, 0.1)], range(1))
        assert evaluation.features_recovered == 0
        assert evaluation.key_distance > RECOVERY_THRESHOLD
        assert abs(evaluation.key_distance - 0.5) < 0.15

    def test_abstention_charged_chance(self, system):
        evaluation = judge(system, [FeatureGuess(0, None, 0.5)], range(1))
        assert evaluation == CellEvaluation(1, 0, CHANCE_DISTANCE)

    def test_missing_features_charged_chance(self, system):
        # features the attacker never reached (lockout) score as chance
        guesses = [FeatureGuess(0, system.key.subkeys[0], 0.0)]
        evaluation = judge(system, guesses, range(4))
        assert evaluation.features_attacked == 4
        assert evaluation.features_recovered == 1
        assert evaluation.key_distance == pytest.approx(
            3 * CHANCE_DISTANCE / 4
        )

    def test_out_of_scope_guesses_earn_nothing(self, system):
        # a guess on feature 7 cannot raise the score of a range(4) cell
        guesses = [FeatureGuess(7, system.key.subkeys[7], 0.0)]
        evaluation = judge(system, guesses, range(4))
        assert evaluation.features_recovered == 0
        assert evaluation.key_distance == pytest.approx(CHANCE_DISTANCE)

    def test_empty_scope(self, system):
        assert judge(system, [], range(0)) == CellEvaluation(0, 0, 0.0)
        assert judge(system, [], range(0)).success_rate == 0.0


class TestDuelRobustness:
    @pytest.fixture
    def defense(self, system):
        return deploy_defender(defender_spec("shallow-l1"), system)

    def test_escaped_lockout_becomes_outcome(self, defense):
        class Brittle:
            name = "brittle"

            def run(self, surface, budget, rng):
                raise OracleLockoutError("monitor tripped")

        outcome = duel(
            Brittle(), defense, AttackBudget(), np.random.default_rng(0)
        )
        assert outcome.locked_out
        assert outcome.guesses == ()
        assert "lockout" in outcome.notes

    def test_escaped_attack_error_becomes_noted_outcome(self, defense):
        class Crasher:
            name = "crasher"

            def run(self, surface, budget, rng):
                raise AttackError("degenerate observation")

        outcome = duel(
            Crasher(), defense, AttackBudget(), np.random.default_rng(0)
        )
        assert not outcome.locked_out
        assert outcome.guesses == ()
        assert "degenerate observation" in outcome.notes

    def test_well_behaved_outcome_passes_through(self, defense):
        sentinel = outcome_with([])

        class Quiet:
            name = "quiet"

            def run(self, surface, budget, rng):
                return sentinel

        assert (
            duel(Quiet(), defense, AttackBudget(), np.random.default_rng(0))
            is sentinel
        )
