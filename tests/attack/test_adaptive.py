"""Tests for the exhaustive single-layer key-recovery attack."""

import pytest

from repro.attack.adaptive import (
    attack_single_layer,
    extrapolate_multi_layer_seconds,
)
from repro.attack.threat_model import expose_locked_model
from repro.errors import AttackError, ConfigurationError
from repro.hdlock.lock import create_locked_encoder

N, M, D, P = 12, 6, 512, 8


def deploy(layers: int, binary: bool, seed: int = 0):
    system = create_locked_encoder(
        n_features=N, levels=M, dim=D, layers=layers, pool_size=P, rng=seed
    )
    surface, _ = expose_locked_model(system.encoder, binary=binary)
    return system, surface


class TestAttackSingleLayer:
    @pytest.mark.parametrize("binary", [True, False])
    def test_recovers_the_key(self, binary):
        system, surface = deploy(layers=1, binary=binary)
        result = attack_single_layer(surface)
        assert result.recovered == system.key
        assert result.guesses == N * P * D
        assert result.scores.max() < 0.12

    def test_reports_timing(self):
        _, surface = deploy(layers=1, binary=True, seed=1)
        result = attack_single_layer(surface)
        assert result.seconds > 0
        assert result.per_guess_seconds > 0

    def test_refuses_two_layer_deployment(self):
        """Against L=2 no single-layer key explains the observations —
        the attack must fail loudly, not return garbage."""
        _, surface = deploy(layers=2, binary=True, seed=2)
        with pytest.raises(AttackError):
            attack_single_layer(surface)

    def test_oracle_budget_is_two_per_feature(self):
        _, surface = deploy(layers=1, binary=True, seed=3)
        before = surface.oracle.n_queries
        attack_single_layer(surface)
        assert surface.oracle.n_queries - before == 2 * N


class TestExtrapolation:
    def test_scales_with_layers(self):
        _, surface = deploy(layers=1, binary=True, seed=4)
        result = attack_single_layer(surface)
        t1 = extrapolate_multi_layer_seconds(result, surface, 1)
        t2 = extrapolate_multi_layer_seconds(result, surface, 2)
        assert t2 / t1 == pytest.approx(D * P)

    def test_l1_extrapolation_consistent_with_measurement(self):
        """The L=1 projection must be the measured runtime (same count)."""
        _, surface = deploy(layers=1, binary=True, seed=5)
        result = attack_single_layer(surface)
        projected = extrapolate_multi_layer_seconds(result, surface, 1)
        assert projected == pytest.approx(result.seconds, rel=0.01)

    def test_invalid_layers(self):
        _, surface = deploy(layers=1, binary=True, seed=6)
        result = attack_single_layer(surface)
        with pytest.raises(ConfigurationError):
            extrapolate_multi_layer_seconds(result, surface, 0)
