"""Tests for the brute-force baseline and the complexity formulas."""

import math

import numpy as np
import pytest

from repro.attack.bruteforce import (
    MAX_BRUTEFORCE_FEATURES,
    exhaustive_mapping_attack,
    score_matrix,
)
from repro.attack.complexity import (
    guesses_vs_dim_and_pool,
    guesses_vs_layers,
    hdlock_guesses_per_feature,
    hdlock_total_guesses,
    plain_guesses_per_feature,
    plain_total_guesses,
    reasoning_seconds_estimate,
    security_improvement,
)
from repro.attack.feature_extraction import extract_feature_mapping
from repro.attack.threat_model import expose_model
from repro.attack.value_extraction import extract_value_mapping
from repro.encoding.record import RecordEncoder
from repro.errors import ConfigurationError


class TestBruteForce:
    def deploy(self, n: int, binary: bool = True):
        encoder = RecordEncoder.random(n, 4, 1024, rng=n)
        surface, truth = expose_model(encoder, binary=binary, rng=n + 1)
        value = extract_value_mapping(surface, rng=n + 2)
        return surface, truth, value

    def test_finds_true_mapping(self):
        surface, truth, value = self.deploy(5)
        result = exhaustive_mapping_attack(surface, value.level_order)
        np.testing.assert_array_equal(result.assignment, truth.feature_assignment)
        assert result.permutations_tried == math.factorial(5)

    def test_agrees_with_divide_and_conquer(self):
        surface, _, value = self.deploy(6)
        brute = exhaustive_mapping_attack(surface, value.level_order)
        dnc = extract_feature_mapping(surface, value.level_order)
        np.testing.assert_array_equal(brute.assignment, dnc.assignment)

    def test_refuses_large_n(self):
        surface, _, value = self.deploy(5)
        surface_big = type(surface)(
            feature_pool=np.tile(surface.feature_pool, (3, 1)),
            value_pool=surface.value_pool,
            oracle=_FakeWideOracle(surface.oracle, MAX_BRUTEFORCE_FEATURES + 1),
        )
        with pytest.raises(ConfigurationError):
            exhaustive_mapping_attack(surface_big, value.level_order)

    def test_score_matrix_diagonal_after_truth(self):
        surface, truth, value = self.deploy(5)
        scores = score_matrix(surface, value.level_order)
        for i in range(5):
            assert int(np.argmin(scores[i])) == truth.feature_assignment[i]


class _FakeWideOracle:
    """Oracle stub reporting an inflated feature count (guard testing)."""

    def __init__(self, oracle, n_features):
        self._oracle = oracle
        self.n_features = n_features
        self.levels = oracle.levels
        self.dim = oracle.dim
        self.binary = oracle.binary

    def query(self, sample):
        raise AssertionError("guard must trip before any query")


class TestComplexityFormulas:
    def test_plain(self):
        assert plain_guesses_per_feature(784) == 784
        assert plain_total_guesses(784) == 614_656

    def test_hdlock_per_feature(self):
        assert hdlock_guesses_per_feature(10_000, 784, 1) == 7_840_000
        assert hdlock_guesses_per_feature(10_000, 784, 2) == 7_840_000**2

    def test_paper_checkpoints(self):
        assert plain_total_guesses(784) == pytest.approx(6.15e5, rel=0.01)
        assert hdlock_total_guesses(784, 10_000, 784, 1) == pytest.approx(
            6.15e9, rel=0.01
        )
        assert hdlock_total_guesses(784, 10_000, 784, 2) == pytest.approx(
            4.81e16, rel=0.01
        )
        assert security_improvement(784, 10_000, 784, 2) == pytest.approx(
            7.82e10, rel=0.01
        )

    def test_exact_integers_no_overflow(self):
        # (10^4 * 700)^5 is ~10^34 — must stay exact
        guesses = hdlock_guesses_per_feature(10_000, 700, 5)
        assert guesses == (10_000 * 700) ** 5
        assert isinstance(guesses, int)

    def test_monotone_in_everything(self):
        base = hdlock_total_guesses(100, 1000, 50, 2)
        assert hdlock_total_guesses(101, 1000, 50, 2) > base
        assert hdlock_total_guesses(100, 1001, 50, 2) > base
        assert hdlock_total_guesses(100, 1000, 51, 2) > base
        assert hdlock_total_guesses(100, 1000, 50, 3) > base

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            plain_total_guesses(0)
        with pytest.raises(ConfigurationError):
            hdlock_guesses_per_feature(0, 10, 1)
        with pytest.raises(ConfigurationError):
            hdlock_guesses_per_feature(10, 10, 0)


class TestComplexitySeries:
    def test_grid_shape(self):
        grid = guesses_vs_dim_and_pool([100, 200], [10, 20, 30], layers=2)
        assert len(grid) == 6
        assert grid[0] == (100, 10, (100 * 10) ** 2)

    def test_curves_exponential_in_layers(self):
        curves = guesses_vs_layers(range(1, 5), [100], dim=1000)
        values = [g for _, g in curves[100]]
        ratios = [values[i + 1] / values[i] for i in range(3)]
        assert all(r == 100 * 1000 for r in ratios)

    def test_seconds_estimate(self):
        assert reasoning_seconds_estimate(1000, 0.001) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            reasoning_seconds_estimate(10, -1.0)
