"""Tests for the query-pattern detection countermeasure."""

import numpy as np
import pytest

from repro.attack.countermeasures import (
    QueryMonitor,
    attack_query_stream,
)
from repro.data.synthetic import SyntheticSpec, make_dataset
from repro.errors import ConfigurationError

N, M = 48, 8


@pytest.fixture
def monitor() -> QueryMonitor:
    return QueryMonitor(n_features=N, levels=M)


class TestConcentration:
    def test_constant_query_is_one(self, monitor):
        assert monitor.concentration(np.zeros(N, dtype=np.int64)) == 1.0

    def test_one_hot_query_near_one(self, monitor):
        probe = np.zeros(N, dtype=np.int64)
        probe[3] = M - 1
        assert monitor.concentration(probe) == pytest.approx((N - 1) / N)

    def test_uniform_query_low(self, monitor):
        sample = np.arange(N) % M
        assert monitor.concentration(sample) == pytest.approx(
            np.ceil(N / M) / N
        )

    def test_shape_checked(self, monitor):
        with pytest.raises(ConfigurationError):
            monitor.concentration(np.zeros(N + 1, dtype=np.int64))


class TestDetection:
    def test_attack_stream_triggers_alert(self, monitor):
        stream = attack_query_stream(N, M)
        assessments = monitor.observe_batch(stream)
        assert monitor.alerted
        # the alert fires within the first window, long before the
        # attack finishes its N probes
        first_alert = next(i for i, a in enumerate(assessments) if a.alert)
        assert first_alert < monitor.window
        assert monitor.suspicious_rate > 0.9

    def test_benign_traffic_stays_quiet(self, monitor):
        spec = SyntheticSpec(
            name="benign",
            n_features=N,
            n_classes=4,
            levels=M,
            train_samples=300,
            test_samples=2,
            noise_sigma=0.3,
        )
        dataset = make_dataset(spec, rng=0)
        monitor.observe_batch(dataset.train_x)
        assert not monitor.alerted
        assert monitor.suspicious_rate < 0.05

    def test_mixed_traffic_catches_interleaved_attack(self, monitor):
        """Attack probes hidden between benign queries still alert once
        enough land within one window."""
        spec = SyntheticSpec(
            name="mix",
            n_features=N,
            n_classes=4,
            levels=M,
            train_samples=200,
            test_samples=2,
            noise_sigma=0.3,
        )
        benign = make_dataset(spec, rng=1).train_x
        attack = attack_query_stream(N, M)
        # interleave 1 attack probe per 3 benign queries
        for i in range(len(attack)):
            monitor.observe(attack[i])
            for j in range(3):
                monitor.observe(benign[(3 * i + j) % len(benign)])
            if monitor.alerted:
                break
        assert monitor.alerted

    def test_budget_respected_below_threshold(self):
        monitor = QueryMonitor(n_features=N, levels=M, window=16, budget=15)
        stream = attack_query_stream(N, M, features=10)
        monitor.observe_batch(stream)
        assert not monitor.alerted  # 11 suspicious < budget 15

    def test_counters(self, monitor):
        monitor.observe(np.zeros(N, dtype=np.int64))
        monitor.observe((np.arange(N) % M).astype(np.int64))
        assert monitor.seen == 2
        assert monitor.suspicious_total == 1


class TestValidation:
    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            QueryMonitor(n_features=0, levels=M)

    def test_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            QueryMonitor(n_features=N, levels=M, concentration_threshold=0.0)

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            QueryMonitor(n_features=N, levels=M, window=0)


class TestAttackQueryStream:
    def test_shape_and_content(self):
        stream = attack_query_stream(6, 4)
        assert stream.shape == (7, 6)
        np.testing.assert_array_equal(stream[0], np.zeros(6))
        for i in range(6):
            assert stream[1 + i, i] == 3
            assert stream[1 + i].sum() == 3

    def test_partial_feature_count(self):
        stream = attack_query_stream(6, 4, features=2)
        assert stream.shape == (3, 6)
