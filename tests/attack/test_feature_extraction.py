"""Tests for Step 2 of the reasoning attack (feature-HV extraction)."""

import numpy as np
import pytest

from repro.attack.feature_extraction import (
    CandidateTable,
    extract_feature_mapping,
    guess_distance_series,
)
from repro.attack.threat_model import expose_model
from repro.attack.value_extraction import extract_value_mapping
from repro.encoding.record import RecordEncoder
from repro.errors import AttackError

N, M, D = 32, 8, 2048


def deploy(binary: bool, seed: int = 0):
    encoder = RecordEncoder.random(N, M, D, rng=seed)
    surface, truth = expose_model(encoder, binary=binary, rng=seed + 1)
    value = extract_value_mapping(surface, rng=seed + 2)
    return surface, truth, value


class TestExtractFeatureMapping:
    @pytest.mark.parametrize("binary", [True, False])
    def test_recovers_full_mapping(self, binary):
        surface, truth, value = deploy(binary)
        result = extract_feature_mapping(surface, value.level_order)
        np.testing.assert_array_equal(result.assignment, truth.feature_assignment)

    def test_query_count_is_n(self):
        surface, _, value = deploy(binary=True, seed=10)
        before = surface.oracle.n_queries
        result = extract_feature_mapping(surface, value.level_order)
        assert result.queries == N
        assert surface.oracle.n_queries - before == N

    def test_guess_count_is_triangular(self):
        """Divide and conquer: N + (N-1) + ... + 1 candidate evaluations."""
        surface, _, value = deploy(binary=True, seed=20)
        result = extract_feature_mapping(surface, value.level_order)
        assert result.guesses == N * (N + 1) // 2

    def test_margins_positive(self):
        surface, _, value = deploy(binary=True, seed=30)
        result = extract_feature_mapping(surface, value.level_order)
        finite = result.margins[np.isfinite(result.margins)]
        assert (finite > 0).all()

    def test_assignment_is_permutation(self):
        surface, _, value = deploy(binary=False, seed=40)
        result = extract_feature_mapping(surface, value.level_order)
        assert sorted(result.assignment) == list(range(N))

    def test_nonbinary_margins_near_one(self):
        """Non-binary: correct cosine == 1, wrong ~0 -> margin near 1."""
        surface, _, value = deploy(binary=False, seed=50)
        result = extract_feature_mapping(surface, value.level_order)
        finite = result.margins[np.isfinite(result.margins)]
        assert finite.min() > 0.7


class TestCandidateTable:
    def test_rejects_identical_extremes(self):
        surface, _, _ = deploy(binary=True, seed=60)
        v = surface.value_pool[0]
        with pytest.raises(AttackError):
            CandidateTable(surface.feature_pool, v, v, binary=True)

    def test_support_is_where_extremes_differ(self):
        surface, truth, value = deploy(binary=True, seed=70)
        v1 = surface.value_pool[value.level_order[0]]
        vm = surface.value_pool[value.level_order[-1]]
        table = CandidateTable(surface.feature_pool, v1, vm, binary=True)
        np.testing.assert_array_equal(table.support, np.flatnonzero(v1 != vm))
        assert table.support.size + table.off_support.size == D

    def test_full_dim_scores_scale_down(self):
        """Support-restricted and full-D scores rank candidates the same;
        full-D values are roughly halved (support is ~D/2)."""
        surface, _, value = deploy(binary=True, seed=80)
        restricted = guess_distance_series(
            surface, value.level_order, feature=0, full_dim=False
        )
        full = guess_distance_series(
            surface, value.level_order, feature=0, full_dim=True
        )
        assert int(np.argmin(restricted)) == int(np.argmin(full))
        assert full.mean() < restricted.mean()


class TestGuessDistanceSeries:
    @pytest.mark.parametrize("binary", [True, False])
    def test_correct_guess_is_global_minimum(self, binary):
        surface, truth, value = deploy(binary, seed=90)
        series = guess_distance_series(surface, value.level_order, feature=3)
        assert int(np.argmin(series)) == truth.feature_assignment[3]

    def test_nonbinary_correct_cosine_is_one(self):
        """Paper Sec. 3.2: non-binary correct guess has cosine exactly 1."""
        surface, truth, value = deploy(binary=False, seed=100)
        series = guess_distance_series(surface, value.level_order, feature=0)
        assert series[truth.feature_assignment[0]] == pytest.approx(0.0, abs=1e-12)

    def test_wrong_guesses_well_separated(self):
        surface, truth, value = deploy(binary=True, seed=110)
        series = guess_distance_series(surface, value.level_order, feature=0)
        correct = series[truth.feature_assignment[0]]
        wrong = np.delete(series, truth.feature_assignment[0])
        assert wrong.min() > 2 * correct
