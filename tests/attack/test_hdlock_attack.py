"""Tests for the Sec. 4.2 guess criterion against HDLock."""

import numpy as np
import pytest

from repro.attack.hdlock_attack import (
    as_attack_surface,
    observe_difference,
    score_guess,
    sweep_parameter,
)
from repro.attack.threat_model import expose_locked_model
from repro.errors import ConfigurationError
from repro.hdlock.lock import create_locked_encoder
from repro.memory.key import SubKey

N, M, D, P, L = 32, 6, 2048, 32, 2


@pytest.fixture
def system():
    return create_locked_encoder(
        n_features=N, levels=M, dim=D, layers=L, pool_size=P, rng=0
    )


@pytest.fixture
def binary_surface(system):
    surface, _ = expose_locked_model(system.encoder, binary=True)
    return surface


@pytest.fixture
def nonbinary_surface(system):
    surface, _ = expose_locked_model(system.encoder, binary=False)
    return surface


class TestObserveDifference:
    def test_support_nonempty_and_valid(self, binary_surface):
        obs = observe_difference(binary_surface, feature=0)
        assert obs.support.size > 0
        assert obs.queries == 2
        assert set(np.unique(obs.target)).issubset({-1, 1})

    def test_support_within_value_delta(self, binary_surface):
        obs = observe_difference(binary_surface, feature=0)
        delta = (
            binary_surface.value_matrix[0].astype(int)
            - binary_surface.value_matrix[-1].astype(int)
        )
        assert (delta[obs.support] != 0).all()

    def test_nonbinary_difference_is_exact(self, nonbinary_surface, system):
        """Non-binary: H^1 - H^M equals (ValHV_1 - ValHV_M) * FeaHV."""
        obs = observe_difference(nonbinary_surface, feature=0)
        v_delta = (
            nonbinary_surface.value_matrix[0].astype(np.int64)
            - nonbinary_surface.value_matrix[-1].astype(np.int64)
        )
        fea = system.encoder.feature_matrix[0].astype(np.int64)
        expected = (v_delta * fea)[obs.support]
        np.testing.assert_array_equal(obs.target, expected)

    def test_invalid_feature(self, binary_surface):
        with pytest.raises(ConfigurationError):
            observe_difference(binary_surface, feature=N)


class TestScoreGuess:
    def test_correct_key_scores_perfectly(self, binary_surface, system):
        obs = observe_difference(binary_surface, feature=0)
        truth = system.key.subkeys[0]
        assert score_guess(binary_surface, obs, truth) == pytest.approx(
            0.0, abs=0.02
        )

    def test_correct_key_cosine_one(self, nonbinary_surface, system):
        obs = observe_difference(nonbinary_surface, feature=0)
        truth = system.key.subkeys[0]
        assert score_guess(nonbinary_surface, obs, truth) == pytest.approx(1.0)

    def test_wrong_key_near_chance(self, binary_surface, system):
        obs = observe_difference(binary_surface, feature=0)
        truth = system.key.subkeys[0]
        wrong = SubKey(
            truth.indices, ((truth.rotations[0] + 7) % D, truth.rotations[1])
        )
        assert score_guess(binary_surface, obs, wrong) > 0.25

    def test_wrong_key_cosine_near_zero(self, nonbinary_surface, system):
        obs = observe_difference(nonbinary_surface, feature=0)
        truth = system.key.subkeys[0]
        wrong = SubKey(
            ((truth.indices[0] + 1) % P, truth.indices[1]), truth.rotations
        )
        assert abs(score_guess(nonbinary_surface, obs, wrong)) < 0.4


class TestSweepParameter:
    @pytest.mark.parametrize("parameter,layer", [
        ("rotation", 0), ("index", 0), ("rotation", 1), ("index", 1),
    ])
    def test_binary_panels_separate(self, binary_surface, system, parameter, layer):
        sweep = sweep_parameter(
            binary_surface, system.key, parameter, layer, max_wrong=40
        )
        assert sweep.metric == "hamming"
        assert sweep.correct_score == pytest.approx(0.0, abs=0.02)
        assert sweep.separation > 0.1

    @pytest.mark.parametrize("parameter,layer", [("rotation", 0), ("index", 1)])
    def test_nonbinary_panels_separate(
        self, nonbinary_surface, system, parameter, layer
    ):
        sweep = sweep_parameter(
            nonbinary_surface, system.key, parameter, layer, max_wrong=40
        )
        assert sweep.metric == "cosine"
        assert sweep.correct_score == pytest.approx(1.0)
        assert sweep.separation > 0.4

    def test_candidate_budget_respected(self, binary_surface, system):
        sweep = sweep_parameter(
            binary_surface, system.key, "rotation", 0, max_wrong=10
        )
        assert sweep.candidates.size == 11
        assert sweep.scores.size == 11

    def test_full_rotation_space_without_cap(self, binary_surface, system):
        sweep = sweep_parameter(binary_surface, system.key, "rotation", 0)
        assert sweep.candidates.size == D

    def test_correct_candidate_first(self, binary_surface, system):
        sweep = sweep_parameter(
            binary_surface, system.key, "index", 0, max_wrong=5
        )
        assert sweep.candidates[0] == system.key.subkeys[0].indices[0]

    def test_bad_parameter_name(self, binary_surface, system):
        with pytest.raises(ConfigurationError):
            sweep_parameter(binary_surface, system.key, "phase", 0)

    def test_bad_layer(self, binary_surface, system):
        with pytest.raises(ConfigurationError):
            sweep_parameter(binary_surface, system.key, "rotation", L)


class TestAsAttackSurface:
    def test_plain_attack_sees_no_dip(self, binary_surface):
        from repro.attack.feature_extraction import guess_distance_series

        plain = as_attack_surface(binary_surface)
        series = guess_distance_series(plain, np.arange(M), feature=0)
        # No candidate in the base pool matches the derived FeaHV.
        assert series.min() > 0.35
