"""Tests for the end-to-end attack pipeline and model reconstruction."""

import numpy as np
import pytest

from repro.attack.pipeline import run_reasoning_attack, verify_mapping
from repro.attack.reconstruct import evaluate_theft, reconstruct_encoder
from repro.attack.threat_model import expose_model
from repro.data.synthetic import SyntheticSpec, make_dataset
from repro.encoding.record import RecordEncoder
from repro.model.train import train_model

N, M, D = 24, 6, 1024


@pytest.fixture
def dataset():
    spec = SyntheticSpec(
        name="pipe",
        n_features=N,
        n_classes=3,
        levels=M,
        train_samples=60,
        test_samples=30,
        noise_sigma=0.25,
    )
    return make_dataset(spec, rng=0)


@pytest.fixture
def deployment():
    encoder = RecordEncoder.random(N, M, D, rng=1)
    return encoder, *expose_model(encoder, binary=True, rng=2)


class TestRunReasoningAttack:
    def test_full_recovery(self, deployment):
        _, surface, truth = deployment
        result = run_reasoning_attack(surface, rng=3)
        verdict = verify_mapping(result, truth)
        assert verdict.exact
        assert verdict.value_accuracy == 1.0
        assert verdict.feature_accuracy == 1.0

    def test_timings_positive_and_additive(self, deployment):
        _, surface, truth = deployment
        result = run_reasoning_attack(surface, rng=4)
        assert result.value_seconds > 0
        assert result.feature_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.value_seconds + result.feature_seconds
        )

    def test_query_accounting(self, deployment):
        _, surface, _ = deployment
        result = run_reasoning_attack(surface, rng=5)
        assert result.total_queries == N + 1
        assert result.total_guesses == N * (N + 1) // 2

    def test_nonbinary_recovery(self):
        encoder = RecordEncoder.random(N, M, D, rng=6)
        surface, truth = expose_model(encoder, binary=False, rng=7)
        verdict = verify_mapping(run_reasoning_attack(surface, rng=8), truth)
        assert verdict.exact

    def test_attack_never_touches_secure_memory(self, deployment):
        _, surface, truth = deployment
        run_reasoning_attack(surface, rng=9)
        # the only accesses logged must be owner-side (none from attack)
        assert all(r.actor == "owner" for r in truth.secure_memory.audit_log)


class TestReconstruct:
    def test_clone_encodes_identically(self, deployment):
        encoder, surface, _ = deployment
        result = run_reasoning_attack(surface, rng=10)
        clone = reconstruct_encoder(surface, result, rng=11)
        sample = np.random.default_rng(12).integers(0, M, N)
        np.testing.assert_array_equal(
            clone.encode_nonbinary(sample), encoder.encode_nonbinary(sample)
        )

    def test_clone_memories_match_victim(self, deployment):
        encoder, surface, _ = deployment
        result = run_reasoning_attack(surface, rng=13)
        clone = reconstruct_encoder(surface, result)
        np.testing.assert_array_equal(
            clone.feature_memory.matrix, encoder.feature_memory.matrix
        )
        np.testing.assert_array_equal(
            clone.level_memory.matrix, encoder.level_memory.matrix
        )

    @pytest.mark.parametrize("binary", [True, False])
    def test_theft_preserves_accuracy(self, dataset, binary):
        encoder = RecordEncoder.random(N, M, D, rng=14)
        training = train_model(
            encoder,
            dataset.train_x,
            dataset.train_y,
            n_classes=3,
            binary=binary,
            retrain_epochs=1,
            rng=15,
        )
        original = training.model.score(dataset.test_x, dataset.test_y)
        surface, _ = expose_model(encoder, binary=binary, rng=16)
        result = run_reasoning_attack(surface, rng=17)
        report, _ = evaluate_theft(
            original, surface, result, dataset, binary=binary, rng=18
        )
        assert report.original_accuracy == original
        # Table 1: the stolen encoder supports the same model quality.
        assert abs(report.accuracy_gap) < 0.1
