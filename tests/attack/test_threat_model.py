"""Tests for the attacker-view construction."""

import numpy as np
import pytest

from repro.attack.threat_model import expose_locked_model, expose_model
from repro.encoding.record import RecordEncoder
from repro.errors import SecureMemoryError

N, M, D = 16, 4, 512


@pytest.fixture
def encoder() -> RecordEncoder:
    return RecordEncoder.random(N, M, D, rng=0)


class TestExposeModel:
    def test_pools_are_shuffled_copies(self, encoder):
        surface, truth = expose_model(encoder, rng=1)
        # every true row appears exactly once in the published pool
        for i in range(N):
            j = truth.feature_assignment[i]
            np.testing.assert_array_equal(
                surface.feature_pool[j], encoder.feature_memory.matrix[i]
            )
        for v in range(M):
            j = truth.value_assignment[v]
            np.testing.assert_array_equal(
                surface.value_pool[j], encoder.level_memory.matrix[v]
            )

    def test_assignments_are_permutations(self, encoder):
        _, truth = expose_model(encoder, rng=2)
        assert sorted(truth.feature_assignment) == list(range(N))
        assert sorted(truth.value_assignment) == list(range(M))

    def test_surface_shape_properties(self, encoder):
        surface, _ = expose_model(encoder, binary=False, rng=3)
        assert surface.n_features == N
        assert surface.levels == M
        assert surface.dim == D
        assert not surface.binary

    def test_secure_memory_refuses_attacker(self, encoder):
        _, truth = expose_model(encoder, rng=4)
        with pytest.raises(SecureMemoryError):
            truth.secure_memory.load("feature_placement", actor="attacker")

    def test_oracle_answers_queries(self, encoder, rng):
        surface, _ = expose_model(encoder, rng=5)
        out = surface.oracle.query(rng.integers(0, M, N))
        assert out.shape == (D,)

    def test_shuffle_differs_across_seeds(self, encoder):
        _, t1 = expose_model(encoder, rng=6)
        _, t2 = expose_model(encoder, rng=7)
        assert not np.array_equal(t1.feature_assignment, t2.feature_assignment)


class TestExposeLockedModel:
    def test_key_in_secure_memory_only(self, locked_system):
        surface, secure = expose_locked_model(locked_system.encoder)
        assert "lock_key" in secure
        with pytest.raises(SecureMemoryError):
            secure.load("lock_key", actor="attacker")
        assert secure.load("lock_key") == locked_system.key

    def test_base_pool_published_unshuffled(self, locked_system):
        surface, _ = expose_locked_model(locked_system.encoder)
        np.testing.assert_array_equal(
            surface.base_pool, locked_system.base_pool
        )

    def test_value_matrix_in_level_order(self, locked_system):
        surface, _ = expose_locked_model(locked_system.encoder)
        np.testing.assert_array_equal(
            surface.value_matrix, locked_system.encoder.level_memory.matrix
        )

    def test_shape_properties(self, locked_system):
        surface, _ = expose_locked_model(locked_system.encoder, binary=True)
        assert surface.n_features == 40
        assert surface.pool_size == 40
        assert surface.binary
