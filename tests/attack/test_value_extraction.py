"""Tests for Step 1 of the reasoning attack (value-HV extraction)."""

import numpy as np
import pytest

from repro.attack.threat_model import expose_model
from repro.attack.value_extraction import (
    estimate_min_value_hv,
    extract_value_mapping,
    find_extreme_pair,
)
from repro.encoding.record import RecordEncoder
from repro.errors import AttackError
from repro.hv.level import level_hvs
from repro.hv.random import random_pool
from repro.hv.similarity import hamming

N, M, D = 32, 8, 2048


@pytest.fixture
def deployment():
    encoder = RecordEncoder.random(N, M, D, rng=0)
    return expose_model(encoder, binary=True, rng=1)


class TestFindExtremePair:
    def test_identifies_extremes_of_level_memory(self):
        levels = level_hvs(M, D, rng=2)
        perm = np.random.default_rng(3).permutation(M)
        shuffled = levels[perm]
        i, j = find_extreme_pair(shuffled)
        found = {perm[i], perm[j]}
        assert found == {0, M - 1}

    def test_returns_sorted_pair(self):
        levels = level_hvs(4, D, rng=4)
        i, j = find_extreme_pair(levels)
        assert i < j


class TestEstimateMinValueHV:
    def test_estimate_close_to_true_valhv1(self, deployment):
        surface, truth = deployment
        estimate = estimate_min_value_hv(surface, rng=5)
        true_row = surface.value_pool[truth.value_assignment[0]]
        # distance limited by sign-tie noise, far below orthogonal 0.5
        assert float(hamming(estimate, true_row)) < 0.15

    def test_estimate_far_from_max_level(self, deployment):
        surface, truth = deployment
        estimate = estimate_min_value_hv(surface, rng=6)
        max_row = surface.value_pool[truth.value_assignment[-1]]
        assert float(hamming(estimate, max_row)) > 0.35

    def test_costs_one_query(self, deployment):
        surface, _ = deployment
        before = surface.oracle.n_queries
        estimate_min_value_hv(surface, rng=7)
        assert surface.oracle.n_queries == before + 1


class TestExtractValueMapping:
    @pytest.mark.parametrize("binary", [True, False])
    def test_recovers_full_mapping(self, binary):
        encoder = RecordEncoder.random(N, M, D, rng=8)
        surface, truth = expose_model(encoder, binary=binary, rng=9)
        result = extract_value_mapping(surface, rng=10)
        np.testing.assert_array_equal(result.level_order, truth.value_assignment)

    def test_confidence_gap_reported(self, deployment):
        surface, _ = deployment
        result = extract_value_mapping(surface, rng=11)
        chosen, rejected = result.extreme_distances
        assert chosen < 0.15
        assert rejected > 0.35

    def test_single_query(self, deployment):
        surface, _ = deployment
        result = extract_value_mapping(surface, rng=12)
        assert result.queries == 1

    def test_odd_feature_count(self):
        """Odd N leaves no sign ties at all — the estimate is exact."""
        encoder = RecordEncoder.random(N + 1, M, D, rng=13)
        surface, truth = expose_model(encoder, binary=True, rng=14)
        result = extract_value_mapping(surface, rng=15)
        np.testing.assert_array_equal(result.level_order, truth.value_assignment)
        assert result.extreme_distances[0] == 0.0

    def test_ambiguous_pool_raises(self, deployment):
        """A non-level pool (random rows) must be rejected, not guessed."""
        surface, _ = deployment
        broken = type(surface)(
            feature_pool=surface.feature_pool,
            value_pool=random_pool(M, D, rng=16),
            oracle=surface.oracle,
        )
        with pytest.raises(AttackError):
            extract_value_mapping(broken, rng=17)

    def test_many_levels(self):
        encoder = RecordEncoder.random(20, 32, 4096, rng=18)
        surface, truth = expose_model(encoder, binary=True, rng=19)
        result = extract_value_mapping(surface, rng=20)
        np.testing.assert_array_equal(result.level_order, truth.value_assignment)
