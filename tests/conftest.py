"""Shared fixtures: small, fast model instances for unit/integration tests.

Dimensions are deliberately tiny (D in the hundreds) — every statistical
property used by the library concentrates fast enough to assert at these
sizes, and the suite stays snappy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, make_dataset
from repro.encoding.record import RecordEncoder
from repro.experiments.config import ExperimentScale
from repro.hdlock.lock import create_locked_encoder

#: Default test dimensionality: large enough for clean concentration,
#: small enough for speed.
TEST_DIM = 1024


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_encoder() -> RecordEncoder:
    """An unprotected encoder: N=40, M=8, D=1024."""
    return RecordEncoder.random(40, 8, TEST_DIM, rng=101)


@pytest.fixture
def locked_system():
    """A two-layer locked system with the same shape as small_encoder."""
    return create_locked_encoder(
        n_features=40, levels=8, dim=TEST_DIM, layers=2, rng=202
    )


@pytest.fixture
def tiny_dataset():
    """A small learnable dataset (N=40, C=3, M=8)."""
    spec = SyntheticSpec(
        name="tiny",
        n_features=40,
        n_classes=3,
        levels=8,
        train_samples=90,
        test_samples=45,
        noise_sigma=0.30,
    )
    return make_dataset(spec, rng=303)


@pytest.fixture
def test_scale() -> ExperimentScale:
    """An even smaller scale than 'reduced' for experiment smoke tests."""
    return ExperimentScale(
        name="test",
        dim=512,
        sample_scale=0.05,
        retrain_epochs=1,
        sweep_max_wrong=20,
        fig8_dim=512,
        fig8_sample_scale=0.04,
    )
