"""Tests for the benchmark registry and the split helpers."""

import numpy as np
import pytest

from repro.data.benchmarks import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    PAPER_REFERENCE,
    benchmark_spec,
    load_benchmark,
)
from repro.data.splits import stratified_indices, train_test_split
from repro.errors import ConfigurationError, DimensionMismatchError


class TestRegistry:
    def test_all_five_present(self):
        assert set(BENCHMARK_ORDER) == {"mnist", "ucihar", "face", "isolet", "pamap"}
        assert set(BENCHMARKS) == set(BENCHMARK_ORDER)
        assert set(PAPER_REFERENCE) == set(BENCHMARK_ORDER)

    def test_paper_shapes(self):
        assert BENCHMARKS["mnist"].n_features == 784
        assert BENCHMARKS["mnist"].n_classes == 10
        assert BENCHMARKS["ucihar"].n_features == 561
        assert BENCHMARKS["isolet"].n_classes == 26
        assert BENCHMARKS["face"].n_classes == 2
        assert BENCHMARKS["pamap"].n_classes == 5

    def test_reasoning_time_ordering_matches_paper(self):
        """Per the paper's Table 1, FACE takes longest and PAMAP least;
        attack cost scales with N^2, so shapes must preserve the order."""
        n = {name: BENCHMARKS[name].n_features for name in BENCHMARK_ORDER}
        assert n["face"] > n["mnist"] > n["isolet"] > n["ucihar"] > n["pamap"]

    def test_ceiling_tracks_paper_accuracy(self):
        for name in BENCHMARK_ORDER:
            ceiling = BENCHMARKS[name].accuracy_ceiling
            target = PAPER_REFERENCE[name].nonbinary_accuracy
            assert ceiling == pytest.approx(target, abs=0.02)

    def test_lookup_case_insensitive(self):
        assert benchmark_spec("MNIST").name == "mnist"

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError):
            benchmark_spec("imagenet")


class TestLoadBenchmark:
    def test_loads_with_scaling(self):
        ds = load_benchmark("pamap", rng=0, sample_scale=0.1)
        assert ds.train_x.shape == (100, 27)
        assert ds.test_x.shape == (40, 27)

    def test_full_scale_default(self):
        ds = load_benchmark("pamap", rng=0)
        assert ds.train_x.shape[0] == BENCHMARKS["pamap"].train_samples

    def test_reproducible(self):
        a = load_benchmark("face", rng=1, sample_scale=0.05)
        b = load_benchmark("face", rng=1, sample_scale=0.05)
        np.testing.assert_array_equal(a.train_x, b.train_x)


class TestTrainTestSplit:
    def test_sizes(self):
        x = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        tx, ty, vx, vy = train_test_split(x, y, test_fraction=0.25, rng=0)
        assert tx.shape == (15, 2) and vx.shape == (5, 2)
        assert ty.shape == (15,) and vy.shape == (5,)

    def test_partition_is_exact(self):
        x = np.arange(30).reshape(30, 1)
        y = np.arange(30)
        tx, ty, vx, vy = train_test_split(x, y, rng=1)
        assert sorted(np.concatenate([ty, vy])) == list(range(30))

    def test_rows_stay_aligned(self):
        x = np.arange(20).reshape(20, 1)
        y = np.arange(20) * 10
        tx, ty, _, _ = train_test_split(x, y, rng=2)
        np.testing.assert_array_equal(tx[:, 0] * 10, ty)

    def test_length_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            train_test_split(np.zeros((3, 1)), np.zeros(4))

    def test_empty_split_rejected(self):
        with pytest.raises(ConfigurationError):
            train_test_split(np.zeros((3, 1)), np.zeros(3), test_fraction=0.0)


class TestStratifiedIndices:
    def test_per_class_counts(self):
        labels = np.array([0] * 10 + [1] * 10 + [2] * 10)
        idx = stratified_indices(labels, per_class=4, rng=0)
        assert len(idx) == 12
        assert np.bincount(labels[idx]).tolist() == [4, 4, 4]

    def test_insufficient_class(self):
        labels = np.array([0, 0, 1])
        with pytest.raises(ConfigurationError):
            stratified_indices(labels, per_class=2)

    def test_indices_sorted_unique(self):
        labels = np.repeat(np.arange(4), 8)
        idx = stratified_indices(labels, per_class=3, rng=1)
        assert (np.diff(idx) > 0).all()
