"""Tests for min-max quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.quantize import dequantize, level_bounds, quantize_minmax
from repro.errors import ConfigurationError


class TestQuantizeMinmax:
    def test_endpoints(self):
        out = quantize_minmax(np.array([0.0, 1.0]), 16, vmin=0.0, vmax=1.0)
        np.testing.assert_array_equal(out, [0, 15])

    def test_uniform_bins(self):
        values = np.linspace(0, 1, 17)[:-1] + 1e-9  # bin interiors
        out = quantize_minmax(values, 16, vmin=0.0, vmax=1.0)
        np.testing.assert_array_equal(out, np.arange(16))

    def test_clipping_out_of_range(self):
        out = quantize_minmax(np.array([-5.0, 99.0]), 8, vmin=0.0, vmax=1.0)
        np.testing.assert_array_equal(out, [0, 7])

    def test_auto_range(self):
        values = np.array([10.0, 20.0, 30.0])
        out = quantize_minmax(values, 4)
        assert out[0] == 0 and out[-1] == 3

    def test_degenerate_range(self):
        out = quantize_minmax(np.full(5, 3.3), 8)
        np.testing.assert_array_equal(out, np.zeros(5))

    def test_preserves_shape(self):
        out = quantize_minmax(np.zeros((3, 4)), 8, vmin=0.0, vmax=1.0)
        assert out.shape == (3, 4)

    def test_too_few_levels(self):
        with pytest.raises(ConfigurationError):
            quantize_minmax(np.array([1.0]), 1)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=32,
        ),
        st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_always_in_range(self, values, levels):
        out = quantize_minmax(np.array(values), levels, vmin=0.0, vmax=1.0)
        assert out.min() >= 0
        assert out.max() <= levels - 1

    @given(st.integers(min_value=2, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_monotone(self, levels):
        values = np.sort(np.random.default_rng(levels).uniform(0, 1, 50))
        out = quantize_minmax(values, levels, vmin=0.0, vmax=1.0)
        assert (np.diff(out) >= 0).all()


class TestDequantize:
    def test_roundtrip_within_bin(self):
        values = np.random.default_rng(0).uniform(0, 1, 100)
        levels = 32
        q = quantize_minmax(values, levels, vmin=0.0, vmax=1.0)
        back = dequantize(q, levels, 0.0, 1.0)
        assert np.abs(back - values).max() <= 1 / levels

    def test_bin_centers(self):
        back = dequantize(np.array([0, 3]), 4, 0.0, 1.0)
        np.testing.assert_allclose(back, [0.125, 0.875])

    def test_invalid_levels(self):
        with pytest.raises(ConfigurationError):
            dequantize(np.array([0]), 1, 0.0, 1.0)


class TestLevelBounds:
    def test_edges(self):
        bounds = level_bounds(4, 0.0, 1.0)
        np.testing.assert_allclose(bounds, [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            level_bounds(1, 0.0, 1.0)
