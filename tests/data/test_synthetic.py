"""Tests for synthetic dataset generation."""

import numpy as np
import pytest

from repro.data.synthetic import Dataset, SyntheticSpec, make_dataset
from repro.errors import ConfigurationError


def spec(**overrides) -> SyntheticSpec:
    base = dict(
        name="t",
        n_features=20,
        n_classes=4,
        levels=8,
        train_samples=80,
        test_samples=40,
        noise_sigma=0.2,
    )
    base.update(overrides)
    return SyntheticSpec(**base)


class TestSpecValidation:
    def test_valid(self):
        assert spec().accuracy_ceiling == 1.0

    def test_degenerate_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(n_classes=1)
        with pytest.raises(ConfigurationError):
            spec(levels=1)

    def test_fraction_ranges(self):
        with pytest.raises(ConfigurationError):
            spec(informative_fraction=0.0)
        with pytest.raises(ConfigurationError):
            spec(class_separation=1.5)
        with pytest.raises(ConfigurationError):
            spec(label_noise=1.0)
        with pytest.raises(ConfigurationError):
            spec(boundary_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            spec(noise_sigma=-1.0)

    def test_accuracy_ceiling_label_noise(self):
        s = spec(label_noise=0.2)
        assert s.accuracy_ceiling == pytest.approx(0.8 + 0.2 / 4)

    def test_accuracy_ceiling_boundary(self):
        s = spec(boundary_fraction=0.3)
        assert s.accuracy_ceiling == pytest.approx(1 - 0.15)

    def test_scaled(self):
        s = spec().scaled(0.5)
        assert s.train_samples == 40
        assert s.test_samples == 20

    def test_scaled_floor(self):
        s = spec(train_samples=4, test_samples=4).scaled(0.01)
        assert s.train_samples == 2 and s.test_samples == 2

    def test_scaled_invalid(self):
        with pytest.raises(ConfigurationError):
            spec().scaled(0.0)


class TestMakeDataset:
    def test_shapes(self):
        ds = make_dataset(spec(), rng=0)
        assert isinstance(ds, Dataset)
        assert ds.train_x.shape == (80, 20)
        assert ds.test_x.shape == (40, 20)
        assert ds.train_y.shape == (80,)
        assert ds.n_features == 20 and ds.n_classes == 4 and ds.levels == 8

    def test_levels_in_range(self):
        ds = make_dataset(spec(), rng=1)
        assert ds.train_x.min() >= 0
        assert ds.train_x.max() <= 7

    def test_labels_balanced(self):
        ds = make_dataset(spec(), rng=2)
        counts = np.bincount(ds.train_y, minlength=4)
        assert counts.min() == 20 and counts.max() == 20

    def test_reproducible(self):
        a = make_dataset(spec(), rng=3)
        b = make_dataset(spec(), rng=3)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.test_y, b.test_y)

    def test_classes_are_distinguishable(self):
        ds = make_dataset(spec(noise_sigma=0.05), rng=4)
        means = np.stack(
            [ds.train_x[ds.train_y == c].mean(axis=0) for c in range(4)]
        )
        spread = np.abs(means[0] - means[1]).mean()
        assert spread > 0.5  # prototypes differ by whole level bins

    def test_label_noise_applied(self):
        clean = make_dataset(spec(train_samples=2000), rng=5)
        noisy = make_dataset(spec(train_samples=2000, label_noise=0.5), rng=5)
        disagreement = np.mean(clean.train_y != noisy.train_y)
        assert 0.35 < disagreement < 0.65

    def test_boundary_fraction_blurs_samples(self):
        """Boundary samples must sit between prototypes, shrinking the
        distance of the farthest same-class sample to its class mean."""
        sharp = make_dataset(spec(noise_sigma=0.01), rng=6)
        blurred = make_dataset(
            spec(noise_sigma=0.01, boundary_fraction=0.5), rng=6
        )

        def max_spread(ds):
            total = 0.0
            for c in range(4):
                rows = ds.train_x[ds.train_y == c].astype(float)
                total = max(
                    total,
                    np.abs(rows - rows.mean(axis=0)).mean(axis=1).max(),
                )
            return total

        assert max_spread(blurred) > max_spread(sharp)

    def test_uninformative_features_shared(self):
        ds_spec = spec(informative_fraction=0.5, noise_sigma=0.01)
        ds = make_dataset(ds_spec, rng=7)
        means = np.stack(
            [ds.train_x[ds.train_y == c].mean(axis=0) for c in range(4)]
        )
        informative_spread = means[:, :10].std(axis=0).mean()
        shared_spread = means[:, 10:].std(axis=0).mean()
        assert shared_spread < informative_spread / 3
