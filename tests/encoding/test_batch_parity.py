"""Differential parity tests: batch engine vs the per-sample reference.

The vectorized engine must be *bit-exact* with the original per-sample
loop — same integers, same int8 signs, and the same randomized sign(0)
tie-break stream under a fixed seed. ``ReferenceEncoder`` reimplements
the pre-engine loop verbatim (independently of
:func:`repro.encoding.engine.encode_batch_reference`, so the test is a
true differential harness) and every case builds the system under test
twice from one seed: once encoded through the engine, once through the
reference.

Coverage per the HDXplore-style checklist: all four encoders, binary and
non-binary outputs, odd dimensions (D not divisible by 8 or the chunk
size), B = 0 / B = 1 edge batches, chunk boundaries (chunk of 1, a chunk
that does not divide B, a chunk larger than B, and tiny memory budgets),
plus the einsum fallback plan for non-linear level memories.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoding.ngram import NGramEncoder
from repro.encoding.oracle import EncodingOracle
from repro.encoding.record import RecordEncoder
from repro.hdlock.lock import create_locked_encoder
from repro.hv.ops import ACCUM_DTYPE, sign
from repro.hv.random import random_pool
from repro.memory.item_memory import FeatureMemory, LevelMemory

ODD_DIM = 251  # prime: not divisible by 8, any chunk size, or anything else


class ReferenceEncoder:
    """The original per-sample ``encode_batch`` loop, kept verbatim."""

    def __init__(self, encoder) -> None:
        self._level = encoder.level_memory.matrix
        self._features = encoder.feature_matrix
        self._rng = encoder._tie_rng

    def encode_batch(self, samples: np.ndarray, binary: bool = True) -> np.ndarray:
        arr = np.asarray(samples)
        dtype = np.int8 if binary else ACCUM_DTYPE
        out = np.empty((arr.shape[0], self._level.shape[1]), dtype=dtype)
        for b in range(arr.shape[0]):
            accum = np.einsum(
                "nd,nd->d",
                self._level[arr[b]].astype(np.int32, copy=False),
                self._features.astype(np.int32, copy=False),
                dtype=ACCUM_DTYPE,
            )
            out[b] = sign(accum, self._rng) if binary else accum
        return out


class ReferenceNGram:
    """Per-sequence loop over :meth:`NGramEncoder.encode`."""

    def __init__(self, encoder: NGramEncoder) -> None:
        self._encoder = encoder

    def encode_batch(self, seqs: np.ndarray, binary: bool = True) -> np.ndarray:
        return np.stack([self._encoder.encode(row, binary) for row in seqs])


def _record(dim: int):
    return RecordEncoder.random(n_features=13, levels=6, dim=dim, rng=424242)


def _locked(dim: int):
    return create_locked_encoder(
        n_features=11, levels=5, dim=dim, layers=2, rng=987
    ).encoder


def _random_levels(dim: int):
    # A deliberately non-linear level memory: dense level differences
    # push the plan into its exact einsum fallback.
    feature = FeatureMemory(random_pool(9, dim, rng=31))
    level = LevelMemory(random_pool(32, dim, rng=32))
    return RecordEncoder(feature, level, rng=33)


RECORD_FACTORIES = {
    "record-odd-dim": lambda: _record(ODD_DIM),
    "record-even-dim": lambda: _record(256),
    "locked-two-layer": lambda: _locked(ODD_DIM),
    "nonlinear-levels-fallback": lambda: _random_levels(ODD_DIM),
}


def _pair(name: str):
    """Two identically seeded instances: engine- and reference-side."""
    return RECORD_FACTORIES[name](), ReferenceEncoder(RECORD_FACTORIES[name]())


def _samples(encoder, batch: int, seed: int = 7) -> np.ndarray:
    gen = np.random.default_rng(seed)
    return gen.integers(0, encoder.levels, size=(batch, encoder.n_features))


class TestRecordFamilyParity:
    @pytest.mark.parametrize("name", sorted(RECORD_FACTORIES))
    @pytest.mark.parametrize("binary", [True, False])
    @pytest.mark.parametrize("batch", [0, 1, 7, 33])
    def test_bit_exact(self, name, binary, batch):
        encoder, reference = _pair(name)
        samples = _samples(encoder, batch)
        got = encoder.encode_batch(samples, binary=binary)
        want = reference.encode_batch(samples, binary=binary)
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("chunk_size", [1, 3, 5, 64])
    def test_chunk_boundaries(self, chunk_size):
        # 33 rows: chunk 1 (degenerate), 3 (divides), 5 (ragged tail),
        # 64 (single chunk larger than the batch) must all agree.
        encoder, reference = _pair("record-odd-dim")
        samples = _samples(encoder, 33)
        got = encoder.encode_batch(samples, binary=True, chunk_size=chunk_size)
        np.testing.assert_array_equal(got, reference.encode_batch(samples, True))

    def test_tiny_memory_budget_still_exact(self):
        encoder, reference = _pair("record-even-dim")
        samples = _samples(encoder, 9)
        got = encoder.encode_batch(samples, binary=False, memory_budget=1)
        np.testing.assert_array_equal(got, reference.encode_batch(samples, False))

    def test_fallback_mode_engaged(self):
        # Dense level differences defeat the BLAS decomposition; the
        # bipolar operands route to the batched bit-sliced kernel.
        encoder = RECORD_FACTORIES["nonlinear-levels-fallback"]()
        assert encoder.plan.mode == "bitslice"
        blas = RECORD_FACTORIES["record-odd-dim"]()
        assert blas.plan.mode == "blas"

    def test_single_encode_matches_batch_row(self):
        encoder, reference = _pair("record-odd-dim")
        samples = _samples(encoder, 5)
        got = encoder.encode_batch(samples, binary=True)
        want = reference.encode_batch(samples, binary=True)
        np.testing.assert_array_equal(got, want)
        # And the non-batch entry point funnels through the same plan.
        fresh = RECORD_FACTORIES["record-odd-dim"]()
        np.testing.assert_array_equal(
            fresh.encode_nonbinary(samples[2]),
            encoder.encode_batch(samples, binary=False)[2],
        )


class TestTieBreakDeterminism:
    def test_sign_zero_stream_matches_reference(self):
        # N = 4, M = 2 makes zero accumulations (ties) common; the
        # engine must consume the tie-break generator row by row in
        # exactly the reference order.
        def build():
            return RecordEncoder.random(n_features=4, levels=2, dim=ODD_DIM, rng=55)

        encoder, reference = build(), ReferenceEncoder(build())
        samples = np.random.default_rng(2).integers(0, 2, size=(50, 4))
        got = encoder.encode_batch(samples, binary=True)
        want = reference.encode_batch(samples, binary=True)
        assert (got == 0).sum() == 0  # fully bipolar output
        np.testing.assert_array_equal(got, want)

    def test_two_seeded_runs_identical(self):
        samples = np.random.default_rng(3).integers(0, 2, size=(20, 4))
        outs = [
            RecordEncoder.random(4, 2, 128, rng=77).encode_batch(samples)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(outs[0], outs[1])


class TestNGramParity:
    @pytest.mark.parametrize("binary", [True, False])
    @pytest.mark.parametrize("batch", [1, 6])
    def test_bit_exact(self, binary, batch):
        def build():
            return NGramEncoder(random_pool(7, ODD_DIM, rng=4), n=3, rng=21)

        encoder, reference = build(), ReferenceNGram(build())
        seqs = np.random.default_rng(5).integers(0, 7, size=(batch, 17))
        got = encoder.encode_batch(seqs, binary=binary, chunk_size=4)
        np.testing.assert_array_equal(got, reference.encode_batch(seqs, binary))

    def test_empty_batch(self):
        encoder = NGramEncoder(random_pool(5, 64, rng=6), n=2, rng=0)
        out = encoder.encode_batch(np.zeros((0, 9), dtype=np.int64))
        assert out.shape == (0, 64)
        assert out.dtype == np.int8

    def test_locked_ngram_parity(self):
        pool = random_pool(6, 128, rng=8)
        from repro.hdlock.keygen import generate_key

        key = generate_key(n_features=5, pool_size=6, dim=128, layers=2, rng=9)

        def build():
            return NGramEncoder(n=2, rng=10, base_pool=pool, key=key)

        encoder, reference = build(), ReferenceNGram(build())
        seqs = np.random.default_rng(11).integers(0, 5, size=(4, 12))
        np.testing.assert_array_equal(
            encoder.encode_batch(seqs, True), reference.encode_batch(seqs, True)
        )


class TestOracleParity:
    @pytest.mark.parametrize("binary", [True, False])
    def test_query_batch_matches_reference(self, binary):
        encoder, reference = _pair("record-odd-dim")
        oracle = EncodingOracle(encoder, binary=binary)
        samples = _samples(encoder, 8)
        got = oracle.query_batch(samples, chunk_size=3)
        np.testing.assert_array_equal(got, reference.encode_batch(samples, binary))
        assert oracle.n_queries == 8


class TestEngineSpecAgreesWithReference:
    def test_executable_spec_matches_test_reference(self):
        # engine.encode_batch_reference (used by the benchmarks) and the
        # independently written loop above must be the same function.
        from repro.encoding.engine import encode_batch_reference

        def build():
            return _record(ODD_DIM)

        encoder, reference = build(), ReferenceEncoder(build())
        spec_side = build()
        samples = _samples(encoder, 12)
        spec = encode_batch_reference(
            spec_side.level_memory.matrix,
            spec_side.feature_matrix,
            samples,
            binary=True,
            rng=spec_side._tie_rng,
        )
        np.testing.assert_array_equal(spec, reference.encode_batch(samples, True))


class TestPlanReuseAndInvalidation:
    def test_plan_is_cached(self):
        encoder = _record(64)
        assert encoder.plan is encoder.plan

    def test_invalidate_caches_rebuilds(self):
        encoder = _record(64)
        first = encoder.plan
        encoder.invalidate_caches()
        assert encoder.plan is not first
