"""EncodingPlan observability hooks: rows, calls, scratch reuse.

Instrumentation must be strictly additive: an un-instrumented plan pays
one ``is None`` check, and attaching counters never changes a single
output bit (the parity classes already pin the numerics; here we pin
the bookkeeping).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoding.record import RecordEncoder
from repro.hv.random import random_pool
from repro.memory.item_memory import FeatureMemory, LevelMemory
from repro.obs.metrics import MetricsRegistry


def _blas_encoder() -> RecordEncoder:
    return RecordEncoder.random(n_features=13, levels=6, dim=256, rng=424242)


def _bitslice_encoder() -> RecordEncoder:
    # Dense level differences defeat the BLAS decomposition; bipolar
    # operands route to the bit-sliced kernel.
    feature = FeatureMemory(random_pool(9, 256, rng=31))
    level = LevelMemory(random_pool(32, 256, rng=32))
    return RecordEncoder(feature, level, rng=33)


def _samples(encoder: RecordEncoder, batch: int) -> np.ndarray:
    gen = np.random.default_rng(7)
    return gen.integers(0, encoder.levels, size=(batch, encoder.n_features))


def _counts(reg: MetricsRegistry, scope: str, path: str) -> tuple[float, float]:
    rows = reg.counter(
        "repro_encode_rows_total",
        "Rows encoded through EncodingPlan, by kernel path.",
        labels=("scope", "path"),
    )
    calls = reg.counter(
        "repro_encode_calls_total",
        "EncodingPlan accumulate calls, by kernel path.",
        labels=("scope", "path"),
    )
    return rows.value(scope=scope, path=path), calls.value(scope=scope, path=path)


class TestCounters:
    @pytest.mark.parametrize(
        "factory, path",
        [(_blas_encoder, "blas"), (_bitslice_encoder, "bitslice")],
    )
    def test_rows_and_calls_per_kernel_path(self, factory, path):
        encoder = factory()
        assert encoder.plan.mode == path
        reg = MetricsRegistry()
        encoder.plan.instrument(reg, scope="test")
        encoder.plan.accumulate(_samples(encoder, 10))
        encoder.plan.accumulate(_samples(encoder, 3))
        rows, calls = _counts(reg, "test", path)
        assert rows == 13
        assert calls == 2

    def test_packed_path_counts_through_the_same_family(self):
        encoder = _blas_encoder()
        reg = MetricsRegistry()
        encoder.plan.instrument(reg, scope="test")
        encoder.plan.accumulate_packed(_samples(encoder, 5), rng=1)
        rows, calls = _counts(reg, "test", "blas")
        assert rows == 5
        assert calls == 1

    def test_scratch_reuse_counts_chunks_beyond_the_first(self):
        encoder = _blas_encoder()
        reg = MetricsRegistry()
        encoder.plan.instrument(reg, scope="test")
        # 10 rows in chunks of 3 → 4 chunks sharing one per-call
        # scratch buffer → 3 reuses.
        encoder.plan.accumulate(_samples(encoder, 10), chunk_size=3)
        reuse = reg.counter(
            "repro_encode_scratch_reuse_total",
            "Chunks that reused the call's existing scratch buffer.",
            labels=("scope",),
        )
        assert reuse.value(scope="test") == 3
        # A single-chunk call reuses nothing.
        encoder.plan.accumulate(_samples(encoder, 2), chunk_size=4)
        assert reuse.value(scope="test") == 3

    def test_bitslice_path_never_counts_scratch_reuse(self):
        encoder = _bitslice_encoder()
        reg = MetricsRegistry()
        encoder.plan.instrument(reg, scope="test")
        encoder.plan.accumulate(_samples(encoder, 10), chunk_size=3)
        reuse = reg.counter(
            "repro_encode_scratch_reuse_total",
            "Chunks that reused the call's existing scratch buffer.",
            labels=("scope",),
        )
        assert reuse.value(scope="test") == 0

    def test_empty_batch_records_nothing(self):
        encoder = _blas_encoder()
        reg = MetricsRegistry()
        encoder.plan.instrument(reg, scope="test")
        encoder.plan.accumulate(_samples(encoder, 0))
        rows, calls = _counts(reg, "test", "blas")
        assert rows == 0
        assert calls == 0


class TestAdditivity:
    def test_instrumentation_does_not_change_outputs(self):
        plain = _blas_encoder()
        observed = _blas_encoder()
        reg = MetricsRegistry()
        observed.plan.instrument(reg, scope="test")
        samples = _samples(plain, 9)
        np.testing.assert_array_equal(
            plain.plan.accumulate(samples, chunk_size=4),
            observed.plan.accumulate(samples, chunk_size=4),
        )
        np.testing.assert_array_equal(
            plain.plan.accumulate_packed(samples, rng=5),
            observed.plan.accumulate_packed(samples, rng=5),
        )

    def test_uninstrumented_plan_has_no_observer(self):
        encoder = _blas_encoder()
        assert encoder.plan._obs is None
        encoder.plan.accumulate(_samples(encoder, 4))  # no error, no counters
