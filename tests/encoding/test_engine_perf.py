"""Performance acceptance gate for the batch-encoding engine.

Marked ``slow`` (run with ``pytest -m slow``) so tier-1 stays fast:
wall-clock assertions belong in an explicit performance pass, not the
default suite. The threshold deliberately sits far below the measured
speedup (~20x on a single core at this shape) so scheduler noise cannot
flake it.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.encoding.engine import encode_batch_reference
from repro.encoding.record import RecordEncoder


@pytest.mark.slow
def test_paper_scale_batch_speedup_at_least_5x():
    n_features, levels, dim, batch = 64, 16, 10_000, 512
    encoder = RecordEncoder.random(n_features, levels, dim, rng=1)
    reference_side = RecordEncoder.random(n_features, levels, dim, rng=1)
    samples = np.random.default_rng(0).integers(0, levels, (batch, n_features))

    start = time.perf_counter()
    want = encode_batch_reference(
        reference_side.level_memory.matrix,
        reference_side.feature_matrix,
        samples,
        binary=True,
        rng=reference_side._tie_rng,
    )
    reference_seconds = time.perf_counter() - start

    encoder.plan  # build outside the timed region: one-time compile
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        got = encoder.encode_batch(samples, binary=True)
        best = min(best, time.perf_counter() - start)
        encoder = RecordEncoder.random(n_features, levels, dim, rng=1)
        encoder.plan

    np.testing.assert_array_equal(got, want)
    speedup = reference_seconds / best
    assert speedup >= 5.0, f"engine only {speedup:.1f}x faster than reference"
