"""Performance acceptance gates for the batch-encoding engine.

Marked ``slow`` (run with ``pytest -m slow``) so tier-1 stays fast:
wall-clock assertions belong in an explicit performance pass, not the
default suite. Thresholds deliberately sit far below the measured
speedups so scheduler noise cannot flake them:

* batch engine vs per-sample reference — ~20x measured, gate 5x;
* fused packed path vs PR 1's dense-binarize-then-pack row overhead —
  ~2.5x measured, gate 2x;
* bit-sliced fallback vs the retained per-sample einsum —
  ~5x measured, gate 2x.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.encoding.engine import encode_batch_reference
from repro.encoding.record import RecordEncoder
from repro.hv.packing import pack_words
from repro.hv.random import random_pool
from repro.memory.item_memory import FeatureMemory, LevelMemory


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _best_of_interleaved(fns, rounds: int = 9) -> list[float]:
    """Round-robin best-of timing for several callables.

    Alternating the candidates inside each round means a noise burst
    (scheduler, memory pressure) inflates all of them together, and the
    per-callable min lands on a quiet round for every pipeline — far
    more stable on busy machines than timing each callable in its own
    contiguous block.
    """
    bests = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            bests[i] = min(bests[i], time.perf_counter() - start)
    return bests


@pytest.mark.slow
def test_paper_scale_batch_speedup_at_least_5x():
    n_features, levels, dim, batch = 64, 16, 10_000, 512
    encoder = RecordEncoder.random(n_features, levels, dim, rng=1)
    reference_side = RecordEncoder.random(n_features, levels, dim, rng=1)
    samples = np.random.default_rng(0).integers(0, levels, (batch, n_features))

    start = time.perf_counter()
    want = encode_batch_reference(
        reference_side.level_memory.matrix,
        reference_side.feature_matrix,
        samples,
        binary=True,
        rng=reference_side._tie_rng,
    )
    reference_seconds = time.perf_counter() - start

    _ = encoder.plan  # build outside the timed region: one-time compile
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        got = encoder.encode_batch(samples, binary=True)
        best = min(best, time.perf_counter() - start)
        encoder = RecordEncoder.random(n_features, levels, dim, rng=1)
        _ = encoder.plan

    np.testing.assert_array_equal(got, want)
    speedup = reference_seconds / best
    assert speedup >= 5.0, f"engine only {speedup:.1f}x faster than reference"


@pytest.mark.slow
def test_packed_row_overhead_reduced_at_least_2x():
    """The fused packed path halves PR 1's per-row D-bound overhead.

    Steady-state binary encoding at D = 10,000 was dominated by D-sized
    row traffic on top of the level matmuls (ROADMAP, PR 1 follow-up):
    PR 1's pipeline repeated the base term into a fresh array, cast the
    float accumulator to int64, binarized into an int8 matrix, and
    consumers packed that again. The gate reconstructs that exact
    pipeline from the current plan's operands, times it against the
    fused packed path (in-place sign -> uint64 bit-planes), subtracts
    the matmul-only floor both share, and requires the remaining
    per-row overhead to drop by >= 2x (measured ~2.5x; the current
    dense path also got faster, so it is printed for reference only).

    N is odd so accumulations — sums of N odd terms — can never tie at
    zero: both pipelines' identical per-row tie-draw loops drop out and
    the gate isolates exactly the D-pass row traffic it is about.
    """
    n_features, levels, dim, batch = 63, 16, 10_000, 512
    samples = np.random.default_rng(0).integers(0, levels, (batch, n_features))

    def fresh():
        encoder = RecordEncoder.random(n_features, levels, dim, rng=1)
        _ = encoder.plan  # compile outside every timed region
        return encoder

    parity_dense, parity_packed = fresh(), fresh()
    np.testing.assert_array_equal(
        parity_packed.encode_batch_packed(samples),
        pack_words(parity_dense.encode_batch(samples, binary=True)),
    )

    plan = fresh().plan

    def pr1_accumulate(block):
        # PR 1's _accumulate_blas, verbatim: fresh base repeat, scatter,
        # int64 cast — the row passes the fused path eliminates.
        out = np.repeat(plan._base[None, :], block.shape[0], axis=0)
        for m in range(1, plan.levels):
            support = plan.supports[m - 1]
            if support.size == 0:
                continue
            indicator = (block >= m).astype(plan._float_dtype)
            contribution = indicator @ plan._fea_cols[m - 1]
            contribution *= plan._dval_rows[m - 1]
            out[:, support] += contribution
        return out.astype(np.int64)

    def pr1_pipeline():
        # accumulate -> int64 -> dense int8 signs -> packed, exactly the
        # PR 1 predict feed (binarize_batch + a consumer-side pack).
        from repro.encoding.engine import binarize_batch

        rng = np.random.default_rng(99)
        pack_words(binarize_batch(pr1_accumulate(samples), rng))

    def matmul_floor():
        # The level-difference matmuls both pipelines run, without the
        # base init / scatter / binarize / pack row passes.
        for m in range(1, plan.levels):
            support = plan.supports[m - 1]
            if support.size == 0:
                continue
            indicator = (samples >= m).astype(plan._float_dtype)
            contribution = indicator @ plan._fea_cols[m - 1]
            contribution *= plan._dval_rows[m - 1]

    dense_encoder = fresh()
    packed_encoder = fresh()

    floor_seconds, pr1_seconds, dense_seconds, packed_seconds = _best_of_interleaved(
        [
            matmul_floor,
            pr1_pipeline,
            lambda: pack_words(dense_encoder.encode_batch(samples, binary=True)),
            lambda: packed_encoder.encode_batch_packed(samples),
        ]
    )

    pr1_overhead = pr1_seconds - floor_seconds
    packed_overhead = packed_seconds - floor_seconds
    assert pr1_overhead > 0 and packed_overhead > 0, (
        f"degenerate timing: floor {floor_seconds:.4f}s, "
        f"pr1 {pr1_seconds:.4f}s, packed {packed_seconds:.4f}s"
    )
    reduction = pr1_overhead / packed_overhead
    print(
        f"\n[row-overhead] PR1 {pr1_overhead * 1e6 / batch:.0f} us/row | "
        f"current dense+pack {(dense_seconds - floor_seconds) * 1e6 / batch:.0f} "
        f"us/row | fused packed {packed_overhead * 1e6 / batch:.0f} us/row | "
        f"PR1/fused {reduction:.2f}x"
    )
    assert reduction >= 2.0, (
        f"fused packed path only cut PR 1's per-row overhead {reduction:.2f}x "
        f"(PR1 {pr1_overhead * 1e6 / batch:.0f} us/row vs packed "
        f"{packed_overhead * 1e6 / batch:.0f} us/row over a "
        f"{floor_seconds * 1e6 / batch:.0f} us/row matmul floor)"
    )


@pytest.mark.slow
def test_bitslice_fallback_speedup_at_least_2x():
    """The batched bit-sliced kernel beats the retained per-sample loop.

    Non-linear level memories used to drop to a per-sample integer
    einsum; they now run the carry-save bit-plane kernel (~5x measured
    at this shape), bit-exactly.
    """
    n_features, levels, dim, batch = 64, 32, 10_000, 128
    feature = FeatureMemory(random_pool(n_features, dim, rng=2))
    level = LevelMemory(random_pool(levels, dim, rng=1))
    encoder = RecordEncoder(feature, level, rng=3)
    plan = encoder.plan
    assert plan.mode == "bitslice"
    samples = np.random.default_rng(4).integers(0, levels, (batch, n_features))

    got = plan.accumulate(samples)
    want = plan._accumulate_einsum(samples)
    np.testing.assert_array_equal(got, want)

    bitslice_seconds = _best_of(lambda: plan.accumulate(samples))
    reference_seconds = _best_of(lambda: plan._accumulate_einsum(samples))
    speedup = reference_seconds / bitslice_seconds
    assert speedup >= 2.0, (
        f"bit-sliced kernel only {speedup:.1f}x faster than the "
        f"per-sample einsum reference"
    )
