"""Tests for the HDLock encoder (Eq. 9 / Eq. 10)."""

import numpy as np
import pytest

from repro.encoding.locked import LockedEncoder
from repro.errors import DimensionMismatchError
from repro.hdlock.feature_factory import derive_feature_matrix
from repro.hdlock.keygen import generate_key
from repro.hv.properties import orthogonality_report
from repro.hv.random import random_pool
from repro.memory.item_memory import LevelMemory

N, M, D, P, L = 20, 5, 1024, 16, 2


@pytest.fixture
def locked() -> LockedEncoder:
    pool = random_pool(P, D, rng=0)
    levels = LevelMemory.random(M, D, rng=1)
    key = generate_key(N, L, P, D, rng=2)
    return LockedEncoder(pool, levels, key, rng=3)


class TestConstruction:
    def test_shapes(self, locked):
        assert locked.n_features == N
        assert locked.levels == M
        assert locked.dim == D
        assert locked.layers == L
        assert locked.pool_size == P
        assert locked.feature_matrix.shape == (N, D)

    def test_pool_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            LockedEncoder(
                random_pool(P, 512, rng=0),
                LevelMemory.random(M, D, rng=1),
                generate_key(N, L, P, 512, rng=2),
            )

    def test_feature_matrix_matches_factory(self, locked):
        np.testing.assert_array_equal(
            locked.feature_matrix,
            derive_feature_matrix(locked.base_pool, locked.key),
        )


class TestStatisticalEquivalence:
    def test_derived_features_quasi_orthogonal(self, locked):
        report = orthogonality_report(locked.feature_matrix)
        assert report.mean_distance == pytest.approx(0.5, abs=0.02)
        assert report.max_abs_deviation < 0.12

    def test_encodings_behave_like_plain(self, locked, rng):
        sample = rng.integers(0, M, N)
        out = locked.encode_nonbinary(sample)
        assert np.abs(out).max() <= N
        assert (np.abs(out) % 2 == N % 2).all()


class TestDeterminism:
    def test_same_key_same_encoding(self, locked, rng):
        sample = rng.integers(0, M, N)
        a = locked.encode_nonbinary(sample)
        b = locked.encode_nonbinary(sample)
        np.testing.assert_array_equal(a, b)

    def test_rekey_changes_features(self, locked):
        new_key = generate_key(N, L, P, D, rng=99)
        rekeyed = locked.rekey(new_key)
        assert not np.array_equal(rekeyed.feature_matrix, locked.feature_matrix)
        np.testing.assert_array_equal(rekeyed.base_pool, locked.base_pool)

    def test_wrong_key_wrong_encoding(self, locked, rng):
        """A wrong key guess produces a wrong encoding (the lock works)."""
        sample = rng.integers(0, M, N)
        truth = locked.encode_nonbinary(sample)
        wrong = locked.rekey(generate_key(N, L, P, D, rng=123))
        mismatch = np.count_nonzero(
            np.sign(wrong.encode_nonbinary(sample)) != np.sign(truth)
        )
        assert mismatch > 0.2 * D
