"""Tests for the n-gram sequence encoder extension."""

import numpy as np
import pytest

from repro.encoding.ngram import NGramEncoder
from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hdlock.keygen import generate_key
from repro.hv.ops import bind, permute
from repro.hv.random import random_pool
from repro.hv.similarity import hamming

A, D = 6, 1024


@pytest.fixture
def items() -> np.ndarray:
    return random_pool(A, D, rng=0)


class TestConstruction:
    def test_shapes(self, items):
        enc = NGramEncoder(items, n=3, rng=1)
        assert enc.alphabet_size == A
        assert enc.dim == D
        assert not enc.locked

    def test_requires_memory_or_key(self):
        with pytest.raises(ConfigurationError):
            NGramEncoder()

    def test_pool_and_key_must_pair(self, items):
        with pytest.raises(ConfigurationError):
            NGramEncoder(items, base_pool=items)

    def test_bad_n(self, items):
        with pytest.raises(ConfigurationError):
            NGramEncoder(items, n=0)

    def test_vector_item_memory_rejected(self):
        with pytest.raises(DimensionMismatchError):
            NGramEncoder(np.ones(D, dtype=np.int8))


class TestEncoding:
    def test_unigram_is_bundle(self, items):
        enc = NGramEncoder(items, n=1, rng=2)
        seq = np.array([0, 2, 4])
        expected = (
            items[0].astype(np.int64)
            + items[2].astype(np.int64)
            + items[4].astype(np.int64)
        )
        np.testing.assert_array_equal(enc.encode_nonbinary(seq), expected)

    def test_bigram_matches_naive(self, items):
        enc = NGramEncoder(items, n=2, rng=3)
        seq = np.array([1, 3, 5])
        naive = np.zeros(D, dtype=np.int64)
        for t in range(2):
            gram = bind(items[seq[t]], permute(items[seq[t + 1]], 1))
            naive += gram.astype(np.int64)
        np.testing.assert_array_equal(enc.encode_nonbinary(seq), naive)

    def test_order_sensitivity(self, items):
        """n-grams with rotation distinguish 'ab' from 'ba'."""
        enc = NGramEncoder(items, n=2, rng=4)
        ab = enc.encode(np.array([0, 1, 0, 1, 0, 1, 0, 1]), binary=True)
        ba = enc.encode(np.array([1, 0, 1, 0, 1, 0, 1, 0]), binary=True)
        assert float(hamming(ab, ba)) > 0.3

    def test_similar_sequences_close(self, items):
        enc = NGramEncoder(items, n=3, rng=5)
        base = np.array([0, 1, 2, 3, 4, 5] * 4)
        variant = base.copy()
        variant[7] = (variant[7] + 1) % A
        assert float(hamming(
            enc.encode(base, binary=True), enc.encode(variant, binary=True)
        )) < 0.35

    def test_too_short_sequence(self, items):
        enc = NGramEncoder(items, n=4, rng=6)
        with pytest.raises(ConfigurationError):
            enc.encode(np.array([0, 1, 2]))

    def test_symbol_out_of_range(self, items):
        enc = NGramEncoder(items, n=2, rng=7)
        with pytest.raises(ConfigurationError):
            enc.encode(np.array([0, A]))

    def test_float_sequence_rejected(self, items):
        enc = NGramEncoder(items, n=2, rng=8)
        with pytest.raises(ConfigurationError):
            enc.encode(np.array([0.0, 1.0]))

    def test_matrix_sequence_rejected(self, items):
        enc = NGramEncoder(items, n=2, rng=9)
        with pytest.raises(DimensionMismatchError):
            enc.encode(np.zeros((2, 5), dtype=np.int64))


class TestLockedNGram:
    def test_key_derived_items(self):
        pool = random_pool(8, D, rng=10)
        key = generate_key(A, 2, 8, D, rng=11)
        enc = NGramEncoder(n=2, base_pool=pool, key=key, rng=12)
        assert enc.locked
        assert enc.item_matrix.shape == (A, D)

    def test_locked_and_plain_equivalent_statistics(self):
        pool = random_pool(8, D, rng=13)
        key = generate_key(A, 2, 8, D, rng=14)
        locked = NGramEncoder(n=2, base_pool=pool, key=key, rng=15)
        plain = NGramEncoder(random_pool(A, D, rng=16), n=2, rng=17)
        seq = np.array([0, 1, 2, 3, 4, 5])
        out_locked = locked.encode_nonbinary(seq)
        out_plain = plain.encode_nonbinary(seq)
        assert np.abs(out_locked).max() <= 5
        assert np.abs(out_plain).max() <= 5
