"""Tests for the attacker-facing encoding oracle."""

import numpy as np
import pytest

from repro.encoding.oracle import EncodingOracle
from repro.encoding.record import RecordEncoder

N, M, D = 12, 4, 512


@pytest.fixture
def encoder() -> RecordEncoder:
    return RecordEncoder.random(N, M, D, rng=0)


class TestOracle:
    def test_exposes_public_shape(self, encoder):
        oracle = EncodingOracle(encoder, binary=True)
        assert oracle.n_features == N
        assert oracle.levels == M
        assert oracle.dim == D
        assert oracle.binary

    def test_query_matches_encoder(self, encoder, rng):
        oracle = EncodingOracle(encoder, binary=False)
        sample = rng.integers(0, M, N)
        np.testing.assert_array_equal(
            oracle.query(sample), encoder.encode_nonbinary(sample)
        )

    def test_binary_query_is_bipolar(self, encoder, rng):
        oracle = EncodingOracle(encoder, binary=True)
        out = oracle.query(rng.integers(0, M, N))
        assert set(np.unique(out)).issubset({-1, 1})

    def test_query_counter(self, encoder, rng):
        oracle = EncodingOracle(encoder)
        assert oracle.n_queries == 0
        oracle.query(rng.integers(0, M, N))
        oracle.query(rng.integers(0, M, N))
        assert oracle.n_queries == 2

    def test_batch_counts_per_sample(self, encoder, rng):
        oracle = EncodingOracle(encoder)
        oracle.query_batch(rng.integers(0, M, (5, N)))
        assert oracle.n_queries == 5

    def test_batch_matches_encoder(self, encoder, rng):
        oracle = EncodingOracle(encoder, binary=True)
        samples = rng.integers(0, M, (3, N))
        # fresh encoder with same seed so sign-tie streams align
        reference = RecordEncoder.random(N, M, D, rng=0)
        np.testing.assert_array_equal(
            oracle.query_batch(samples),
            reference.encode_batch(samples, binary=True),
        )

    def test_oracle_does_not_leak_memories(self, encoder):
        """The oracle's public attribute surface must not expose the
        encoder's item memories (attack code only sees shapes)."""
        oracle = EncodingOracle(encoder)
        public = [name for name in vars(oracle) if not name.startswith("_")]
        assert set(public) == {"binary", "n_queries"}
