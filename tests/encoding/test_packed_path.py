"""End-to-end tests of the fused packed-domain hot path.

Three properties pin the PR's refactor:

* **parity** — ``encode_batch_packed`` is bit-identical to word-packing
  the dense binary ``encode_batch`` output, for every plan mode
  (blas / bitslice / einsum-reference shapes), odd dimensions, chunk
  boundaries, and the shared sign(0) tie stream;
* **vectorized fallback** — level memories that used to hit the
  per-sample einsum loop now run the batched bit-sliced kernel and stay
  bit-exact against the retained per-sample reference;
* **zero round-trips** — binary classifier inference and attack pool
  scoring never call the dense binarize / byte-pack / unpack helpers
  once their caches are warm: encodings flow as uint64 bit-planes from
  the engine to the XOR-popcount kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.encoding.base as encoding_base
import repro.model.classifier as classifier_mod
from repro.encoding.ngram import NGramEncoder
from repro.encoding.oracle import EncodingOracle
from repro.encoding.record import RecordEncoder
from repro.errors import ConfigurationError
from repro.hdlock.lock import create_locked_encoder
from repro.hv.packing import PACKED_WORD_DTYPE, pack_words
from repro.hv.random import random_pool
from repro.memory.item_memory import FeatureMemory, LevelMemory
from repro.model.classifier import HDClassifier

ODD_DIM = 251


def _record(dim: int):
    return RecordEncoder.random(n_features=13, levels=6, dim=dim, rng=424242)


def _locked(dim: int):
    return create_locked_encoder(
        n_features=11, levels=5, dim=dim, layers=2, rng=987
    ).encoder


def _bitslice(dim: int):
    feature = FeatureMemory(random_pool(9, dim, rng=31))
    level = LevelMemory(random_pool(32, dim, rng=32))
    return RecordEncoder(feature, level, rng=33)


ENCODERS = {
    "record-odd-dim": lambda: _record(ODD_DIM),
    "record-even-dim": lambda: _record(256),
    "locked-two-layer": lambda: _locked(ODD_DIM),
    "bitslice-nonlinear-levels": lambda: _bitslice(ODD_DIM),
}


def _samples(encoder, batch: int, seed: int = 7) -> np.ndarray:
    gen = np.random.default_rng(seed)
    return gen.integers(0, encoder.levels, size=(batch, encoder.n_features))


class TestPackedParity:
    @pytest.mark.parametrize("name", sorted(ENCODERS))
    @pytest.mark.parametrize("batch", [0, 1, 7, 33])
    def test_packed_equals_dense_then_pack(self, name, batch):
        packed_side, dense_side = ENCODERS[name](), ENCODERS[name]()
        samples = _samples(packed_side, batch)
        got = packed_side.encode_batch_packed(samples)
        want = pack_words(dense_side.encode_batch(samples, binary=True))
        assert got.dtype == PACKED_WORD_DTYPE
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("chunk_size", [1, 3, 5, 64])
    def test_chunk_boundaries(self, chunk_size):
        packed_side = ENCODERS["record-odd-dim"]()
        dense_side = ENCODERS["record-odd-dim"]()
        samples = _samples(packed_side, 33)
        got = packed_side.encode_batch_packed(samples, chunk_size=chunk_size)
        want = pack_words(dense_side.encode_batch(samples, binary=True))
        np.testing.assert_array_equal(got, want)

    def test_tiny_memory_budget(self):
        packed_side = ENCODERS["bitslice-nonlinear-levels"]()
        dense_side = ENCODERS["bitslice-nonlinear-levels"]()
        samples = _samples(packed_side, 9)
        got = packed_side.encode_batch_packed(samples, memory_budget=1)
        want = pack_words(dense_side.encode_batch(samples, binary=True))
        np.testing.assert_array_equal(got, want)

    def test_tie_stream_shared_with_dense_path(self):
        # A packed encode advances the tie rng exactly like a dense
        # binary encode: interleaving the two entry points on one
        # encoder stays aligned with a dense-only twin.
        def build():
            return RecordEncoder.random(n_features=4, levels=2, dim=ODD_DIM, rng=55)

        mixed, dense = build(), build()
        first = _samples(mixed, 11, seed=2)
        second = _samples(mixed, 6, seed=3)
        np.testing.assert_array_equal(
            mixed.encode_batch_packed(first),
            pack_words(dense.encode_batch(first, binary=True)),
        )
        np.testing.assert_array_equal(
            mixed.encode_batch(second, binary=True),
            dense.encode_batch(second, binary=True),
        )

    def test_encode_packed_single(self):
        packed_side = ENCODERS["record-even-dim"]()
        dense_side = ENCODERS["record-even-dim"]()
        sample = _samples(packed_side, 1)[0]
        np.testing.assert_array_equal(
            packed_side.encode_packed(sample),
            pack_words(dense_side.encode(sample, binary=True)),
        )

    def test_ngram_packed_parity(self):
        def build():
            return NGramEncoder(random_pool(7, ODD_DIM, rng=4), n=3, rng=21)

        packed_side, dense_side = build(), build()
        seqs = np.random.default_rng(5).integers(0, 7, size=(6, 17))
        np.testing.assert_array_equal(
            packed_side.encode_batch_packed(seqs, chunk_size=4),
            pack_words(dense_side.encode_batch(seqs, binary=True)),
        )


class TestVectorizedFallback:
    """The old per-sample einsum fallback now runs batched (bit-sliced)."""

    @pytest.mark.parametrize("dim", [64, ODD_DIM, 1027])
    @pytest.mark.parametrize("batch", [1, 7, 33])
    def test_bit_exact_vs_per_sample_reference(self, dim, batch):
        encoder = _bitslice(dim)
        assert encoder.plan.mode == "bitslice"
        samples = _samples(encoder, batch)
        got = encoder.plan.accumulate(samples)
        want = encoder.plan._accumulate_einsum(samples)
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("chunk_size", [1, 4, 5, 64])
    def test_chunk_boundaries(self, chunk_size):
        encoder = _bitslice(ODD_DIM)
        samples = _samples(encoder, 17)
        np.testing.assert_array_equal(
            encoder.plan.accumulate(samples, chunk_size=chunk_size),
            encoder.plan._accumulate_einsum(samples),
        )

    def test_einsum_reference_mode_retained_for_nonbipolar(self):
        # Magnitude-2 level entries defeat both the float bound at this
        # scale and the bipolar gate, so the exact per-sample loop stays
        # reachable (and is what the plan falls back to).
        dim = 64
        gen = np.random.default_rng(8)
        level = LevelMemory(
            (2 * gen.integers(0, 2, (40, dim)) - 1).astype(np.int64) * 2**28
        )
        feature = FeatureMemory(random_pool(6, dim, rng=9))
        encoder = RecordEncoder(feature, level, rng=10)
        assert encoder.plan.mode == "einsum"
        samples = _samples(encoder, 5)
        np.testing.assert_array_equal(
            encoder.plan.accumulate(samples),
            encoder.plan._accumulate_einsum(samples),
        )


class TestZeroRoundTrips:
    """Dtype-flow and kernel-call-count assertions for the hot path."""

    def _trained_model(self, encoder_factory=None):
        encoder = (encoder_factory or (lambda: _record(ODD_DIM)))()
        gen = np.random.default_rng(17)
        samples = gen.integers(0, encoder.levels, (40, encoder.n_features))
        labels = gen.integers(0, 3, 40)
        model = HDClassifier(encoder, n_classes=3, binary=True, rng=8)
        model.fit(samples, labels)
        return model, samples

    def test_predict_flows_packed_end_to_end(self, monkeypatch):
        model, samples = self._trained_model()
        model.predict(samples)  # warm the packed class-memory cache

        def boom(name):
            def _fail(*args, **kwargs):
                raise AssertionError(f"{name} called on the packed hot path")

            return _fail

        # No dense binarize, no byte-layout pack, no unpack, and no
        # re-pack of the cached class memory during steady-state predict.
        monkeypatch.setattr(encoding_base, "binarize_batch", boom("binarize_batch"))
        monkeypatch.setattr(classifier_mod, "pack_words", boom("pack_words"))
        monkeypatch.setattr("repro.hv.packing.unpack", boom("unpack"))
        monkeypatch.setattr("repro.hv.packing.unpack_words", boom("unpack_words"))
        predictions = model.predict(samples)
        assert predictions.shape == (40,)

    def test_predict_matches_dense_reference_flow(self):
        model, samples = self._trained_model()
        packed_predictions = model.predict(samples)
        dense_twin, dense_samples = self._trained_model()
        encoded = dense_twin.encoder.encode_batch(dense_samples, binary=True)
        np.testing.assert_array_equal(
            packed_predictions, dense_twin._predict_encoded(encoded)
        )

    def test_locked_encoder_inference_flows_packed(self, monkeypatch):
        model, samples = self._trained_model(lambda: _locked(ODD_DIM))
        model.predict(samples)
        monkeypatch.setattr(encoding_base, "binarize_batch", boom_any)
        monkeypatch.setattr(classifier_mod, "pack_words", boom_any)
        assert model.predict(samples).shape == (40,)

    def test_packed_class_memory_dtype(self):
        model, samples = self._trained_model()
        model.predict(samples)
        assert model._packed_classes is not None
        assert model._packed_classes.dtype == PACKED_WORD_DTYPE
        assert model.encoder.encode_batch_packed(samples).dtype == PACKED_WORD_DTYPE

    def test_attack_scoring_stays_packed(self, monkeypatch):
        from repro.attack.hdlock_attack import (
            observe_difference,
            score_guess,
            score_guesses,
        )
        from repro.attack.threat_model import expose_locked_model

        system = create_locked_encoder(6, 4, 128, layers=1, rng=3)
        surface, _ = expose_locked_model(system.encoder)
        observation = observe_difference(surface, feature=0)
        guesses = [system.key.subkeys[0], system.key.subkeys[1]]
        monkeypatch.setattr("repro.hv.packing.unpack", boom_any)
        monkeypatch.setattr("repro.hv.packing.unpack_words", boom_any)
        scores = score_guesses(surface, observation, guesses)
        np.testing.assert_allclose(
            scores,
            [score_guess(surface, observation, g) for g in guesses],
        )
        assert scores[0] == pytest.approx(0.0)

    def test_oracle_packed_queries(self):
        encoder = ENCODERS["record-odd-dim"]()
        dense_side = ENCODERS["record-odd-dim"]()
        oracle = EncodingOracle(encoder, binary=True)
        samples = _samples(encoder, 8)
        got = oracle.query_batch_packed(samples, chunk_size=3)
        np.testing.assert_array_equal(
            got, pack_words(dense_side.encode_batch(samples, binary=True))
        )
        assert oracle.n_queries == 8

    def test_oracle_packed_queries_require_binary(self):
        oracle = EncodingOracle(ENCODERS["record-odd-dim"](), binary=False)
        with pytest.raises(ConfigurationError):
            oracle.query_batch_packed(np.zeros((1, 13), dtype=np.int64))


def boom_any(*args, **kwargs):
    raise AssertionError("dense pack/unpack helper called on the packed hot path")
