"""Prive-HD transmission transforms: grids, sparsity, path parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoding.locked import LockedEncoder
from repro.encoding.privacy import (
    QuantizedLockedEncoder,
    SparsifiedLockedEncoder,
)
from repro.errors import ConfigurationError
from repro.hdlock.keygen import generate_key
from repro.hv.packing import pack_words
from repro.hv.random import random_pool
from repro.memory.item_memory import LevelMemory

N_FEATURES, LEVELS, DIM, POOL = 24, 8, 1024, 8


@pytest.fixture
def parts(rng):
    """Shared (pool, level memory, key) so encoder pairs are twins."""
    pool = random_pool(POOL, DIM, rng)
    memory = LevelMemory.random(LEVELS, DIM, rng)
    key = generate_key(N_FEATURES, 1, POOL, DIM, rng)
    return pool, memory, key


@pytest.fixture
def samples(rng):
    return rng.integers(0, LEVELS, size=(12, N_FEATURES), dtype=np.int64)


class TestValidation:
    def test_even_quant_levels_rejected(self, parts):
        with pytest.raises(ConfigurationError, match="quant_levels"):
            QuantizedLockedEncoder(*parts, quant_levels=4)

    def test_too_few_quant_levels_rejected(self, parts):
        with pytest.raises(ConfigurationError, match="quant_levels"):
            QuantizedLockedEncoder(*parts, quant_levels=1)

    def test_nonpositive_clip_rejected(self, parts):
        with pytest.raises(ConfigurationError, match="clip_sigmas"):
            QuantizedLockedEncoder(*parts, clip_sigmas=0.0)

    def test_keep_fraction_bounds(self, parts):
        with pytest.raises(ConfigurationError, match="keep_fraction"):
            SparsifiedLockedEncoder(*parts, keep_fraction=0.0)
        with pytest.raises(ConfigurationError, match="keep_fraction"):
            SparsifiedLockedEncoder(*parts, keep_fraction=1.5)


class TestQuantizer:
    def test_outputs_live_on_the_symmetric_grid(self, parts, samples):
        encoder = QuantizedLockedEncoder(*parts, rng=5, quant_levels=5)
        out = encoder.encode_batch(samples, binary=False)
        assert out.dtype == np.int64
        assert set(np.unique(out)) <= {-2, -1, 0, 1, 2}

    def test_three_levels_zero_the_bulk(self, parts, samples):
        # +/-1.5 sigma of a ~N(0, N) accumulation collapses to bucket 0:
        # the majority of coordinates, each re-binarized by a fresh
        # sign(0) tie-break — that's the whole defense
        encoder = QuantizedLockedEncoder(*parts, rng=5)
        out = encoder.encode_batch(samples, binary=False)
        assert np.mean(out == 0) > 0.5

    def test_rekey_preserves_parameters(self, parts, rng):
        pool, memory, key = parts
        encoder = QuantizedLockedEncoder(
            pool, memory, key, rng=5, quant_levels=5, clip_sigmas=2.0
        )
        fresh_key = generate_key(N_FEATURES, 1, POOL, DIM, rng)
        rekeyed = encoder.rekey(fresh_key, rng=6)
        assert isinstance(rekeyed, QuantizedLockedEncoder)
        assert rekeyed.quant_levels == 5
        assert rekeyed.clip_sigmas == 2.0
        assert rekeyed.key == fresh_key


class TestSparsifier:
    def test_exact_keep_count_per_row(self, parts, samples):
        encoder = SparsifiedLockedEncoder(*parts, rng=5, keep_fraction=0.05)
        out = encoder.encode_batch(samples, binary=False)
        keep = round(0.05 * DIM)
        assert (np.count_nonzero(out, axis=1) <= keep).all()
        # survivors are exactly the top-|H| coordinates of the raw rows
        raw = LockedEncoder(*parts, rng=5).encode_batch(
            samples, binary=False
        )
        survivor_floor = np.where(out != 0, np.abs(raw), np.iinfo(np.int64).max)
        dropped_ceiling = np.where(out == 0, np.abs(raw), -1)
        assert (survivor_floor.min(axis=1) >= dropped_ceiling.max(axis=1)).all()

    def test_keep_everything_is_identity(self, parts, samples):
        sparse = SparsifiedLockedEncoder(*parts, rng=5, keep_fraction=1.0)
        plain = LockedEncoder(*parts, rng=5)
        np.testing.assert_array_equal(
            sparse.encode_batch(samples, binary=False),
            plain.encode_batch(samples, binary=False),
        )

    def test_transform_is_deterministic(self, parts, samples):
        # no RNG in the transform itself: two twins agree bit for bit
        a = SparsifiedLockedEncoder(*parts, rng=5).encode_batch(
            samples, binary=False
        )
        b = SparsifiedLockedEncoder(*parts, rng=5).encode_batch(
            samples, binary=False
        )
        np.testing.assert_array_equal(a, b)


class TestPathParity:
    """Single, batch and packed paths agree through the transform."""

    @pytest.mark.parametrize(
        "factory",
        [QuantizedLockedEncoder, SparsifiedLockedEncoder],
        ids=["quantized", "sparsified"],
    )
    def test_single_equals_batch_nonbinary(self, parts, samples, factory):
        single = factory(*parts, rng=5)
        batch = factory(*parts, rng=5)
        rows = np.stack(
            [single.encode_nonbinary(sample) for sample in samples]
        )
        np.testing.assert_array_equal(
            rows, batch.encode_batch(samples, binary=False)
        )

    @pytest.mark.parametrize(
        "factory",
        [QuantizedLockedEncoder, SparsifiedLockedEncoder],
        ids=["quantized", "sparsified"],
    )
    def test_packed_equals_packed_dense(self, parts, samples, factory):
        # twin encoders: binarization consumes the tie-break stream, so
        # parity needs identically seeded instances, not two calls
        packed = factory(*parts, rng=5).encode_batch_packed(samples)
        dense = factory(*parts, rng=5).encode_batch(samples, binary=True)
        np.testing.assert_array_equal(packed, pack_words(dense))

    def test_encode_packed_single_sample(self, parts, samples):
        packed = QuantizedLockedEncoder(*parts, rng=5).encode_packed(
            samples[0]
        )
        batch = QuantizedLockedEncoder(*parts, rng=5).encode_batch_packed(
            samples[:1]
        )
        np.testing.assert_array_equal(packed, batch[0])
