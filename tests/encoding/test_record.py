"""Tests for the record-based encoder (Eq. 2 / Eq. 3)."""

import numpy as np
import pytest

from repro.encoding.record import RecordEncoder
from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hv.ops import sign
from repro.hv.similarity import hamming
from repro.memory.item_memory import FeatureMemory, LevelMemory

N, M, D = 24, 6, 1024


@pytest.fixture
def encoder() -> RecordEncoder:
    return RecordEncoder.random(N, M, D, rng=11)


class TestConstruction:
    def test_random_shapes(self, encoder):
        assert encoder.n_features == N
        assert encoder.levels == M
        assert encoder.dim == D
        assert encoder.feature_matrix.shape == (N, D)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            RecordEncoder(
                FeatureMemory.random(4, 64, rng=0),
                LevelMemory.random(4, 128, rng=1),
            )

    def test_reproducible(self):
        a = RecordEncoder.random(N, M, D, rng=5)
        b = RecordEncoder.random(N, M, D, rng=5)
        np.testing.assert_array_equal(a.feature_matrix, b.feature_matrix)
        np.testing.assert_array_equal(
            a.level_memory.matrix, b.level_memory.matrix
        )


class TestEncodeNonBinary:
    def test_matches_naive_eq2(self, encoder, rng):
        sample = rng.integers(0, M, N)
        expected = np.zeros(D, dtype=np.int64)
        for i in range(N):
            expected += (
                encoder.level_memory.matrix[sample[i]].astype(np.int64)
                * encoder.feature_matrix[i].astype(np.int64)
            )
        np.testing.assert_array_equal(encoder.encode_nonbinary(sample), expected)

    def test_parity_of_output(self, encoder):
        # sum of N odd values has the parity of N
        out = encoder.encode_nonbinary(np.zeros(N, dtype=np.int64))
        assert (np.abs(out) % 2 == N % 2).all()

    def test_bounded_by_n(self, encoder, rng):
        out = encoder.encode_nonbinary(rng.integers(0, M, N))
        assert np.abs(out).max() <= N

    def test_single_value_factorization(self, encoder):
        """Eq. 5: an all-min sample factors as ValHV_1 * sum(FeaHV)."""
        out = encoder.encode_nonbinary(np.zeros(N, dtype=np.int64))
        feature_sum = encoder.feature_matrix.sum(axis=0, dtype=np.int64)
        v1 = encoder.level_memory.minimum.astype(np.int64)
        np.testing.assert_array_equal(out, v1 * feature_sum)

    def test_rejects_batch(self, encoder, rng):
        with pytest.raises(DimensionMismatchError):
            encoder.encode_nonbinary(rng.integers(0, M, (2, N)))


class TestEncodeBinary:
    def test_is_sign_of_nonbinary(self, encoder, rng):
        sample = rng.integers(0, M, N)
        nb = encoder.encode_nonbinary(sample)
        b = encoder.encode(sample, binary=True)
        nonzero = nb != 0
        np.testing.assert_array_equal(b[nonzero], sign(nb)[nonzero])

    def test_binary_output_bipolar(self, encoder, rng):
        out = encoder.encode(rng.integers(0, M, N), binary=True)
        assert set(np.unique(out)).issubset({-1, 1})

    def test_similar_inputs_encode_close(self, encoder, rng):
        a = rng.integers(0, M, N)
        b = a.copy()
        b[0] = (b[0] + 1) % M
        ha = encoder.encode(a, binary=True)
        hb = encoder.encode(b, binary=True)
        assert float(hamming(ha, hb)) < 0.2

    def test_different_inputs_encode_far(self, encoder, rng):
        a = np.zeros(N, dtype=np.int64)
        b = np.full(N, M - 1, dtype=np.int64)
        assert float(hamming(
            encoder.encode(a, binary=True), encoder.encode(b, binary=True)
        )) > 0.35


class TestEncodeBatch:
    def test_matches_single(self, encoder, rng):
        samples = rng.integers(0, M, (5, N))
        batch_nb = encoder.encode_batch(samples, binary=False)
        for i in range(5):
            np.testing.assert_array_equal(
                batch_nb[i], encoder.encode_nonbinary(samples[i])
            )

    def test_batch_shape_and_dtype(self, encoder, rng):
        samples = rng.integers(0, M, (3, N))
        out_b = encoder.encode_batch(samples, binary=True)
        out_nb = encoder.encode_batch(samples, binary=False)
        assert out_b.shape == out_nb.shape == (3, D)
        assert out_b.dtype == np.int8

    def test_rejects_single_sample(self, encoder, rng):
        with pytest.raises(DimensionMismatchError):
            encoder.encode_batch(rng.integers(0, M, N))


class TestValidation:
    def test_wrong_feature_count(self, encoder):
        with pytest.raises(DimensionMismatchError):
            encoder.encode(np.zeros(N + 1, dtype=np.int64))

    def test_float_samples_rejected(self, encoder):
        with pytest.raises(ConfigurationError):
            encoder.encode(np.zeros(N, dtype=np.float64))

    def test_level_out_of_range(self, encoder):
        sample = np.zeros(N, dtype=np.int64)
        sample[0] = M
        with pytest.raises(ConfigurationError):
            encoder.encode(sample)

    def test_negative_level(self, encoder):
        sample = np.zeros(N, dtype=np.int64)
        sample[0] = -1
        with pytest.raises(ConfigurationError):
            encoder.encode(sample)
