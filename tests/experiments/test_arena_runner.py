"""The arena as a first-class experiment: determinism, sharding, CSV."""

from __future__ import annotations

import csv
import json

import pytest

from repro.experiments.arena import (
    ARENA_MAX_FEATURES,
    ARENA_VOLATILE_FIELDS,
    ArenaCell,
    ArenaResult,
    arena_shards,
    combine_arena,
    render_arena,
    run_arena,
    run_arena_cell,
)
from repro.experiments.runner import main


@pytest.fixture
def tiny_scale_cli(monkeypatch, test_scale):
    """Route the CLI's scale resolution to the tiny test scale."""
    monkeypatch.setattr(
        "repro.experiments.runner.active_scale", lambda: test_scale
    )
    return test_scale


CELL_PAYLOAD = {
    "attacker": "bruteforce",
    "defender": "shallow-l1",
    "layers": 1,
    "dim": 512,
    "pool_size": 16,
    "binary": True,
    "variant": "plain",
    "monitored": False,
    "features_attacked": 4,
    "features_recovered": 4,
    "success_rate": 1.0,
    "key_distance": 0.0,
    "queries": 8,
    "candidates": 32768,
    "abstained": 0,
    "locked_out": False,
    "seconds": 0.25,
}


class TestArtifactsRoundTrip:
    def test_cell_round_trips(self):
        cell = ArenaCell.from_dict(CELL_PAYLOAD)
        assert cell.to_dict() == CELL_PAYLOAD

    def test_cell_tolerates_stripped_volatiles(self):
        # artifacts on disk have the volatile fields removed
        payload = {
            k: v for k, v in CELL_PAYLOAD.items()
            if k not in ARENA_VOLATILE_FIELDS
        }
        assert ArenaCell.from_dict(payload).seconds == 0.0

    def test_result_round_trips(self):
        result = ArenaResult(cells=(ArenaCell.from_dict(CELL_PAYLOAD),))
        assert ArenaResult.from_dict(result.to_dict()) == result


class TestSharding:
    def test_one_shard_per_cell_defender_major(self, test_scale):
        shards = arena_shards(test_scale)
        assert len(shards) == 24  # 4 attackers x 6 defenders
        assert len(set(shards)) == 24
        # defender-major: the first four shards share the first defender
        assert len({defender for _, defender in shards[:4]}) == 1

    def test_combine_preserves_shard_order(self):
        cells = [
            ArenaCell.from_dict({**CELL_PAYLOAD, "queries": q})
            for q in (1, 2, 3)
        ]
        assert combine_arena(cells).cells == tuple(cells)


class TestCellDeterminism:
    def test_cell_is_reproducible(self, test_scale):
        first = run_arena_cell("adaptive", "shallow-l1", scale=test_scale)
        again = run_arena_cell("adaptive", "shallow-l1", scale=test_scale)
        strip = lambda c: {  # noqa: E731
            k: v
            for k, v in c.to_dict().items()
            if k not in ARENA_VOLATILE_FIELDS
        }
        assert strip(first) == strip(again)
        assert first.features_recovered == ARENA_MAX_FEATURES

    def test_cell_seed_ignores_roster_order(self, test_scale):
        # seeds derive from names, never roster positions: a sub-matrix
        # run reproduces exactly the cells of the full canonical run
        solo = run_arena(
            scale=test_scale,
            attackers=["adaptive"],
            defenders=["shallow-l1"],
        ).cells[0]
        direct = run_arena_cell("adaptive", "shallow-l1", scale=test_scale)
        assert solo.to_dict().keys() == direct.to_dict().keys()
        for key in solo.to_dict():
            if key in ARENA_VOLATILE_FIELDS:
                continue
            assert solo.to_dict()[key] == direct.to_dict()[key], key

    def test_render_mentions_every_cell(self, test_scale):
        result = run_arena(
            scale=test_scale,
            attackers=["adaptive", "plain-reasoning"],
            defenders=["shallow-l1", "baseline-l2"],
        )
        table = render_arena(result)
        assert "broken" in table  # adaptive vs shallow-l1
        assert "held" in table  # everything vs baseline-l2


class TestArenaAcceptance:
    def test_jobs_1_and_4_artifacts_byte_identical(
        self, tmp_path, tiny_scale_cli
    ):
        """Acceptance: the full matrix is byte-stable across --jobs."""
        outputs = {}
        for jobs in ("1", "4"):
            out_dir = tmp_path / f"jobs{jobs}"
            rc = main(
                [
                    "--only",
                    "arena",
                    "--jobs",
                    jobs,
                    "--seed",
                    "11",
                    "--out",
                    str(out_dir),
                    # one cache per jobs level, so parallel-order
                    # nondeterminism can't hide behind cache replay
                    "--cache",
                    str(tmp_path / f"cache{jobs}"),
                ]
            )
            assert rc == 0
            outputs[jobs] = (out_dir / "arena.json").read_bytes()
        assert outputs["1"] == outputs["4"]
        artifact = json.loads(outputs["1"])
        cells = artifact["data"]["cells"]
        assert len(cells) == 24
        assert all("seconds" not in cell for cell in cells)

    def test_csv_artifact_for_arena(self, capsys, tmp_path, tiny_scale_cli):
        out_dir = tmp_path / "arts"
        rc = main(
            [
                "--only",
                "arena",
                "--format",
                "csv",
                "--out",
                str(out_dir),
                "--cache",
                str(tmp_path / "cache"),
            ]
        )
        assert rc == 0
        text = (out_dir / "arena.csv").read_text()
        rows = list(csv.reader(text.splitlines()))
        assert rows[0][:2] == ["attacker", "defender"]
        assert "seconds" not in rows[0]
        assert len(rows) == 1 + 24
        assert "=== arena ===" in capsys.readouterr().out
