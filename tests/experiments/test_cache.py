"""Tests for the shared on-disk experiment cache."""

import numpy as np

from repro.experiments.cache import DiskCache, cached
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig56 import run_fig5, run_fig6


class TestDiskCache:
    def test_get_or_compute_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        calls = []

        def compute():
            calls.append(1)
            return {"x": np.arange(4)}

        first = cache.get_or_compute(("k", 1), compute)
        second = cache.get_or_compute(("k", 1), compute)
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        np.testing.assert_array_equal(first["x"], second["x"])

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        assert cache.get_or_compute(("k", 1), lambda: "one") == "one"
        assert cache.get_or_compute(("k", 2), lambda: "two") == "two"
        assert cache.key_for(("k", 1)) != cache.key_for(("k", 2))

    def test_corrupt_entry_recomputes(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        cache.put(("k",), "value")
        cache.path_for(("k",)).write_bytes(b"not a pickle")
        assert cache.get_or_compute(("k",), lambda: "fresh") == "fresh"
        # ... and the entry heals for the next reader.
        assert cache.get_or_compute(("k",), lambda: "stale") == "fresh"

    def test_cached_without_cache_is_plain_call(self):
        assert cached(None, ("k",), lambda: 7) == 7

    def test_cached_none_value_round_trips(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        assert cache.get_or_compute(("n",), lambda: None) is None
        assert cache.get_or_compute(("n",), lambda: "not none") is None
        assert cache.hits == 1


class TestExperimentCacheIntegration:
    def test_fig8_warm_cache_matches_cold(self, tmp_path, test_scale):
        cache = DiskCache(tmp_path / "c")
        kwargs = dict(
            benchmarks=("pamap",),
            flavors=(True,),
            layers=(0, 1),
            scale=test_scale,
            seed=31,
        )
        cold = run_fig8(cache=cache, **kwargs)
        assert cache.misses > 0 and cache.hits == 0
        warm = run_fig8(cache=cache, **kwargs)
        assert cache.hits >= cache.misses
        assert warm == cold
        # And identical to the uncached run.
        assert run_fig8(**kwargs) == cold

    def test_fig5_fig6_share_the_locked_system(self, tmp_path, test_scale):
        cache = DiskCache(tmp_path / "c")
        five = run_fig5(scale=test_scale, seed=32, cache=cache)
        assert cache.misses == 1
        six = run_fig6(scale=test_scale, seed=32, cache=cache)
        assert cache.hits == 1, "fig6 should reuse fig5's deployed system"
        assert five.binary and not six.binary
        # Same system, different criterion: panels sweep the same
        # candidate grids.
        for a, b in zip(five.panels, six.panels, strict=True):
            np.testing.assert_array_equal(a.candidates, b.candidates)
            assert a.metric != b.metric

    def test_cached_fig56_matches_uncached(self, test_scale, tmp_path):
        cache = DiskCache(tmp_path / "c")
        cached_run = run_fig5(scale=test_scale, seed=33, cache=cache)
        plain_run = run_fig5(scale=test_scale, seed=33)
        for a, b in zip(cached_run.panels, plain_run.panels, strict=True):
            np.testing.assert_array_equal(a.scores, b.scores)
