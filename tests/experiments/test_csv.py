"""CSV projections of artifact payloads (``--format csv``)."""

from __future__ import annotations

from repro.experiments.csvfmt import csv_rows, render_csv


class TestTabularProjections:
    def test_arena_cells_one_row_each(self):
        data = {
            "cells": [
                {"attacker": "a", "defender": "d", "success_rate": 1.0},
                {"attacker": "b", "defender": "d", "success_rate": 0.0},
            ]
        }
        headers, rows = csv_rows("arena", data)
        assert headers == ["attacker", "defender", "success_rate"]
        assert rows == [["a", "d", "1.0"], ["b", "d", "0.0"]]

    def test_table1_rows(self):
        data = {"rows": [{"benchmark": "isolet", "accuracy": 0.91}]}
        headers, rows = csv_rows("table1", data)
        assert headers == ["benchmark", "accuracy"]
        assert rows == [["isolet", "0.91"]]

    def test_header_union_keeps_first_seen_order(self):
        data = {
            "cells": [
                {"a": 1, "b": 2},
                {"a": 3, "c": 4},
            ]
        }
        headers, rows = csv_rows("fig8", data)
        assert headers == ["a", "b", "c"]
        # missing keys become empty fields, not errors
        assert rows == [["1", "2", ""], ["3", "", "4"]]


class TestSeriesProjections:
    def test_fig3_long_format_marks_the_correct_candidate(self):
        data = {"correct_index": 1, "distances": [0.5, 0.0, 0.47]}
        headers, rows = csv_rows("fig3", data)
        assert headers == ["candidate_index", "distance", "is_correct"]
        assert rows[1] == ["1", "0.0", "true"]
        assert rows[0][2] == rows[2][2] == "false"

    def test_fig56_one_row_per_point(self):
        data = {
            "panels": [
                {
                    "parameter": "D",
                    "layer": 2,
                    "metric": "hamming",
                    "candidates": [256, 512],
                    "scores": [0.5, 0.49],
                }
            ]
        }
        headers, rows = csv_rows("fig5", data)
        assert headers[0] == "panel"
        assert len(rows) == 2
        assert rows[0] == ["0", "D", "2", "hamming", "256", "0.5"]

    def test_sweeps_tagged_by_table(self):
        data = {
            "recovery": [{"dim": 256, "feature_accuracy": 0.8}],
            "margins": [{"n_features": 16, "separation": 0.1}],
        }
        headers, rows = csv_rows("sweeps", data)
        assert headers[0] == "table"
        assert {row[0] for row in rows} == {"recovery", "margins"}


class TestGenericFallback:
    def test_unknown_experiment_flattens_to_path_value(self):
        data = {"a": {"b": [1, True]}, "c": 0.5}
        headers, rows = csv_rows("fig9", data)
        assert headers == ["path", "value"]
        assert rows == [
            ["a.b[0]", "1"],
            ["a.b[1]", "true"],
            ["c", "0.5"],
        ]


class TestRendering:
    def test_deterministic_newline_discipline(self):
        data = {"cells": [{"ok": True, "ratio": 1 / 3}]}
        first = render_csv("arena", data)
        assert first == render_csv("arena", data)
        assert first == "ok,ratio\ntrue,%r\n" % (1 / 3)
        assert "\r" not in first
