"""Smoke and shape tests for the experiment modules (tiny scale)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.ablations import (
    layer_one_is_free,
    naive_attack_on_locked,
    pool_layer_synergy,
    render_ablations,
    value_lock_leakage,
)
from repro.experiments.config import FULL_SCALE, REDUCED_SCALE, active_scale
from repro.experiments.fig3 import render_fig3, run_fig3
from repro.experiments.fig56 import PANEL_ORDER, render_fig56, run_fig5, run_fig6
from repro.experiments.fig7 import mnist_checkpoints, render_fig7, run_fig7
from repro.experiments.fig8 import render_fig8, run_fig8
from repro.experiments.fig9 import render_fig9, run_fig9
from repro.experiments.table1 import render_table1, run_table1


class TestConfig:
    def test_scales_defined(self):
        assert REDUCED_SCALE.dim < FULL_SCALE.dim == 10_000

    def test_active_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert active_scale().name == "reduced"
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert active_scale().name == "full"
        monkeypatch.setenv("REPRO_FULL_SCALE", "0")
        assert active_scale().name == "reduced"


class TestFig3:
    # Fig. 3/5/6 keep the paper's N = 784: with D much below N the
    # binary sign-tie noise floor swallows the dip, so these two
    # experiments are tested at the reduced-scale D rather than the
    # pathological test_scale D = 512 used elsewhere.
    def test_correct_guess_separated(self, test_scale):
        scale = replace(test_scale, dim=4096)
        result = run_fig3(scale=scale, seed=1)
        assert result.distances.shape == (784,)
        # The correct candidate is the unique global minimum. (The
        # paper's ~4-5x correct/wrong gap needs the full D = 10,000;
        # at reduced D the tie-noise floor is proportionally higher.)
        assert result.separation > 0
        assert int(np.argmin(result.distances)) == result.correct_index
        assert result.correct_distance < result.wrong_distances.mean()

    def test_render(self, test_scale):
        scale = replace(test_scale, dim=2048)
        text = render_fig3(run_fig3(scale=scale, seed=2))
        assert "Fig. 3" in text and "correct guess" in text


class TestFig56:
    def test_fig5_all_panels_separate(self, test_scale):
        scale = replace(test_scale, dim=2048)
        result = run_fig5(scale=scale, seed=3)
        assert result.binary
        assert len(result.panels) == len(PANEL_ORDER)
        assert result.all_separated
        for panel in result.panels:
            assert panel.correct_score < 0.1

    def test_fig6_cosine_one(self, test_scale):
        result = run_fig6(scale=test_scale, seed=4)
        assert not result.binary
        for panel in result.panels:
            assert panel.correct_score == pytest.approx(1.0)
            assert panel.separation > 0.3

    def test_render(self, test_scale):
        scale = replace(test_scale, dim=2048)
        text = render_fig56(run_fig5(scale=scale, seed=5))
        assert "Fig. 5" in text and "k_{1,1}" in text


class TestFig7:
    def test_checkpoints_match_paper(self):
        result = run_fig7()
        assert result.checkpoints_match

    def test_individual_checkpoints(self):
        for checkpoint in mnist_checkpoints():
            assert checkpoint.relative_error < 0.01, checkpoint.label

    def test_series_shapes(self):
        result = run_fig7()
        assert len(result.surface_7a) == 5 * 4
        assert set(result.curves_7b) == {100, 300, 500, 700}

    def test_render(self):
        text = render_fig7(run_fig7())
        assert "Fig. 7a" in text and "Fig. 7b" in text


class TestFig8:
    def test_accuracy_flat_within_noise(self, test_scale):
        result = run_fig8(
            benchmarks=("pamap",),
            flavors=(False,),
            layers=(0, 1, 2),
            scale=test_scale,
            seed=6,
        )
        assert len(result.cells) == 3
        drop = result.max_accuracy_drop("pamap", binary=False)
        assert drop < 0.25  # tiny-sample noise bound; full scale is ~0

    def test_curve_extraction(self, test_scale):
        result = run_fig8(
            benchmarks=("pamap",),
            flavors=(True,),
            layers=(0, 2),
            scale=test_scale,
            seed=7,
        )
        curve = result.curve("pamap", binary=True)
        assert [l for l, _ in curve] == [0, 2]

    def test_render(self, test_scale):
        result = run_fig8(
            benchmarks=("pamap",),
            flavors=(False, True),
            layers=(0, 1),
            scale=test_scale,
            seed=8,
        )
        text = render_fig8(result)
        assert "Fig. 8" in text and "PAMAP" in text


class TestFig9:
    def test_headline_overhead(self):
        result = run_fig9()
        at_l2 = result.overhead_at(2)
        for value in at_l2.values():
            assert value == pytest.approx(1.21, abs=0.02)

    def test_l1_free_everywhere(self):
        result = run_fig9()
        for value in result.overhead_at(1).values():
            assert value == pytest.approx(1.0)

    def test_curves_coincide(self):
        assert run_fig9().curve_spread_at_l2 < 0.05

    def test_render_mentions_paper(self):
        text = render_fig9(run_fig9())
        assert "1.210" in text and "Fig. 9" in text


class TestTable1:
    def test_single_benchmark_rows(self, test_scale):
        rows = run_table1(
            benchmarks=("pamap",), flavors=(True,), scale=test_scale, seed=9
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.benchmark == "pamap"
        assert row.feature_mapping_accuracy == 1.0
        assert abs(row.original_accuracy - row.recovered_accuracy) < 0.15
        assert row.oracle_queries == 27 + 1  # one per feature + value step

    def test_render(self, test_scale):
        rows = run_table1(
            benchmarks=("pamap",),
            flavors=(False, True),
            scale=test_scale,
            seed=10,
        )
        text = render_table1(rows)
        assert "Non-Binary" in text and "Binary" in text
        assert "PAMAP" in text


class TestAblations:
    def test_value_lock_leakage(self):
        leak = value_lock_leakage(levels=8, dim=1024, seed=11)
        assert leak.recovered_order_correct
        assert leak.correlated_profile_error < 0.05
        assert leak.orthogonal_max_deviation < 0.1

    def test_layer_one_free(self):
        cost = layer_one_is_free()
        assert cost.relative_time_l1 == pytest.approx(1.0)
        assert cost.relative_time_l2 == pytest.approx(1.21, abs=0.01)

    def test_pool_layer_synergy(self):
        synergy = pool_layer_synergy()
        assert synergy.mutually_enhanced
        assert synergy.gain_at_l3 == pytest.approx(7.0**3)

    def test_naive_attack_comparison(self, test_scale):
        naive = naive_attack_on_locked(
            n_features=32, levels=6, scale=test_scale, seed=12
        )
        assert naive.lock_removed_the_dip
        assert naive.locked_best > naive.unprotected_best

    def test_render(self, test_scale):
        text = render_ablations(
            value_lock_leakage(levels=6, dim=512, seed=13),
            layer_one_is_free(),
            pool_layer_synergy(),
            naive_attack_on_locked(n_features=24, levels=4, scale=test_scale, seed=14),
        )
        assert "ablation" in text
