"""Record schema tests: JSON round-trips, volatile splitting, artifacts."""

import json

import pytest

from repro.experiments.ablations import run_ablations
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig56 import Fig56Result, run_fig5, run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.records import (
    SCHEMA_VERSION,
    ExperimentRecord,
    artifact_up_to_date,
    canonical_json,
    load_artifact,
    merge_volatile,
    record_key,
    split_volatile,
)
from repro.experiments.runner import EXPERIMENTS
from repro.experiments.sweeps import (
    SweepsResult,
    margin_vs_features,
    recovery_vs_dim,
)
from repro.experiments.table1 import run_table1, table1_from_dict, table1_to_dict


class TestSplitVolatile:
    def test_strips_nested_keys_and_records_paths(self):
        data = {
            "rows": [
                {"benchmark": "isolet", "reasoning_seconds": 1.5},
                {"benchmark": "ucihar", "reasoning_seconds": 2.5},
            ],
            "note": "kept",
        }
        clean, volatile = split_volatile(data, {"reasoning_seconds"})
        assert clean == {
            "rows": [{"benchmark": "isolet"}, {"benchmark": "ucihar"}],
            "note": "kept",
        }
        assert volatile == {
            "rows[0].reasoning_seconds": 1.5,
            "rows[1].reasoning_seconds": 2.5,
        }

    def test_merge_is_inverse(self):
        data = {"a": {"t": 3.0, "x": 1}, "b": [{"t": 4.0}], "c": 2}
        clean, volatile = split_volatile(data, {"t"})
        assert "t" not in clean["a"]
        assert merge_volatile(clean, volatile) == data

    def test_empty_volatile_set_is_identity(self):
        data = {"a": [1, 2, {"b": 3}]}
        clean, volatile = split_volatile(data, frozenset())
        assert clean == data and volatile == {}


class TestExperimentRecord:
    def _record(self, **overrides):
        fields = dict(
            experiment="fig7",
            seed=7,
            child_seed=12345,
            scale={"name": "test", "dim": 512},
            data={"x": 1},
            timing={"elapsed_seconds": 0.5},
        )
        fields.update(overrides)
        return ExperimentRecord(**fields)

    def test_artifact_excludes_timing(self):
        record = self._record()
        assert "timing" not in record.artifact_dict()
        assert record.to_dict()["timing"] == {"elapsed_seconds": 0.5}

    def test_key_ignores_timing_and_data(self):
        a = self._record(timing={"elapsed_seconds": 0.1})
        b = self._record(timing={"elapsed_seconds": 9.9})
        assert a.key == b.key
        assert self._record(seed=8).key != a.key
        assert self._record(scale={"name": "test", "dim": 1024}).key != a.key

    def test_from_dict_round_trip(self):
        record = self._record()
        clone = ExperimentRecord.from_dict(
            json.loads(canonical_json(record.to_dict()))
        )
        assert clone == record

    def test_write_and_resume_check(self, tmp_path):
        record = self._record()
        path = record.write_artifact(tmp_path)
        assert path.name == "fig7.json"
        payload = load_artifact(path)
        assert payload["key"] == record.key
        assert payload["schema"] == SCHEMA_VERSION
        assert artifact_up_to_date(path, record.key)
        assert not artifact_up_to_date(path, "different-key")
        assert not artifact_up_to_date(tmp_path / "missing.json", record.key)

    def test_corrupt_artifact_is_not_up_to_date(self, tmp_path):
        path = tmp_path / "fig7.json"
        path.write_text("{not json", encoding="utf-8")
        assert not artifact_up_to_date(path, "anything")

    def test_record_key_matches_record_property(self):
        record = self._record()
        assert record.key == record_key(
            "fig7", 7, 12345, {"name": "test", "dim": 512}, record.env
        )

    def test_canonical_json_is_stable_bytes(self):
        one = canonical_json({"b": 1.25, "a": [1, 2]})
        two = canonical_json({"a": [1, 2], "b": 1.25})
        assert one == two
        assert one.endswith("\n")


def _round_trip(to_dict, from_dict, result):
    """Assert payload -> JSON text -> payload is the identity."""
    payload = to_dict(result)
    decoded = json.loads(json.dumps(payload))
    assert to_dict(from_dict(decoded)) == payload
    return payload


class TestSchemaRoundTrips:
    """Every experiment's record schema survives a JSON round-trip."""

    def test_table1(self, test_scale):
        rows = run_table1(
            benchmarks=("pamap",), flavors=(True,), scale=test_scale, seed=21
        )
        payload = _round_trip(table1_to_dict, table1_from_dict, rows)
        assert payload["rows"][0]["benchmark"] == "pamap"

    def test_table1_volatile_defaults_to_zero(self, test_scale):
        rows = run_table1(
            benchmarks=("pamap",), flavors=(True,), scale=test_scale, seed=21
        )
        scrubbed, _ = split_volatile(
            table1_to_dict(rows), {"reasoning_seconds"}
        )
        rebuilt = table1_from_dict(scrubbed)
        assert rebuilt[0].reasoning_seconds == 0.0
        assert rebuilt[0].oracle_queries == rows[0].oracle_queries

    def test_fig3(self, test_scale):
        result = run_fig3(scale=test_scale, seed=22)
        payload = _round_trip(Fig3Result.to_dict, Fig3Result.from_dict, result)
        assert len(payload["distances"]) == result.distances.size

    def test_fig56(self, test_scale):
        for result in (
            run_fig5(scale=test_scale, seed=23),
            run_fig6(scale=test_scale, seed=23),
        ):
            payload = _round_trip(
                Fig56Result.to_dict, Fig56Result.from_dict, result
            )
            assert len(payload["panels"]) == 4

    def test_fig7(self):
        result = run_fig7()
        payload = _round_trip(Fig7Result.to_dict, Fig7Result.from_dict, result)
        # Registry keys are JSON strings; from_dict restores int pools.
        assert set(payload["curves_7b"]) == {"100", "300", "500", "700"}
        clone = Fig7Result.from_dict(payload)
        assert clone.checkpoints_match

    def test_fig8(self, test_scale):
        result = run_fig8(
            benchmarks=("pamap",),
            flavors=(True,),
            layers=(0, 1),
            scale=test_scale,
            seed=24,
        )
        payload = _round_trip(Fig8Result.to_dict, Fig8Result.from_dict, result)
        assert len(payload["cells"]) == 2

    def test_fig9(self):
        result = run_fig9()
        payload = _round_trip(Fig9Result.to_dict, Fig9Result.from_dict, result)
        clone = Fig9Result.from_dict(payload)
        assert clone.overhead_at(1) == result.overhead_at(1)

    def test_ablations(self, test_scale):
        result = run_ablations(scale=test_scale, seed=25)
        payload = _round_trip(
            lambda r: r.to_dict(),
            type(result).from_dict,
            result,
        )
        assert payload["layer_cost"]["relative_time_l1"] == pytest.approx(1.0)

    def test_sweeps(self):
        result = SweepsResult(
            recovery=recovery_vs_dim(
                dims=(256,), n_features=24, levels=4, seed=26
            ),
            margins=margin_vs_features(
                feature_counts=(32,), dim=512, levels=4, seed=26
            ),
        )
        payload = _round_trip(
            SweepsResult.to_dict, SweepsResult.from_dict, result
        )
        assert len(payload["recovery"]) == 1 and len(payload["margins"]) == 1

    def test_registry_round_trip_contract(self):
        """Every registry entry exposes matching to_dict/from_dict."""
        for spec in EXPERIMENTS.values():
            assert callable(spec.to_dict)
            assert callable(spec.from_dict)
            assert callable(spec.render)
