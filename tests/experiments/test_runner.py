"""Tests for the experiment CLI runner."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_experiments


class TestRunExperiments:
    def test_analytic_subset(self):
        reports = run_experiments(["fig7", "fig9"])
        assert set(reports) == {"fig7", "fig9"}
        assert "Fig. 7a" in reports["fig7"]
        assert "Fig. 9" in reports["fig9"]

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            run_experiments(["fig99"])

    def test_registry_covers_all_paper_results(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "fig3",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "ablations",
            "sweeps",
        }


class TestMain:
    def test_main_analytic_only(self, capsys):
        assert main(["--only", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "=== fig7 ===" in out
        assert "experiment scale" in out

    def test_main_seed_flag(self, capsys):
        assert main(["--only", "fig9", "--seed", "7"]) == 0
        assert "fig9" in capsys.readouterr().out
