"""Tests for the parallel experiment CLI runner."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import active_scale
from repro.experiments.runner import (
    EXPERIMENTS,
    _assemble,
    _combine_fig8,
    _execute,
    _execute_shard,
    child_seed,
    main,
    normalize_names,
    run_experiments,
)

#: Cheap experiments (analytic or sub-second at test scale) used by the
#: CLI tests so the suite stays fast.
FAST = "fig7,fig9"


@pytest.fixture
def tiny_scale_cli(monkeypatch, test_scale):
    """Route the CLI's scale resolution to the tiny test scale.

    The resolved scale object is pickled out to spawned workers, so
    patching the parent-side lookup is enough to shrink worker runs.
    """
    monkeypatch.setattr(
        "repro.experiments.runner.active_scale", lambda: test_scale
    )
    return test_scale


def _cli(tmp_path, *args):
    """Common CLI argv: artifacts and cache under the test's tmp dir."""
    return [
        *args,
        "--cache",
        str(tmp_path / "cache"),
    ]


class TestNormalizeNames:
    def test_none_selects_all(self):
        assert normalize_names(None) == list(EXPERIMENTS)

    def test_strips_whitespace_and_trailing_comma(self):
        assert normalize_names(" fig3, fig9,") == ["fig3", "fig9"]

    def test_drops_empty_segments(self):
        assert normalize_names(",,fig7,,") == ["fig7"]

    def test_dedupes_preserving_order(self):
        assert normalize_names("fig9,fig3,fig9,fig3") == ["fig9", "fig3"]

    def test_unknown_raises_keyerror(self):
        with pytest.raises(KeyError, match="fig99"):
            normalize_names("fig3,fig99")


class TestChildSeeds:
    def test_deterministic_given_root_seed(self):
        assert child_seed(7, "fig3") == child_seed(7, "fig3")

    def test_independent_across_experiments(self):
        seeds = {child_seed(7, name) for name in EXPERIMENTS}
        # fig5/fig6 share one seed group on purpose (same deployed
        # system, two criteria); everything else is distinct.
        assert len(seeds) == len(EXPERIMENTS) - 1
        assert child_seed(7, "fig5") == child_seed(7, "fig6")

    def test_varies_with_root_seed(self):
        assert child_seed(7, "fig3") != child_seed(8, "fig3")

    def test_fits_in_63_bits(self):
        for name in EXPERIMENTS:
            assert 0 <= child_seed(0, name) < 2**63


class TestRunExperiments:
    def test_analytic_subset(self):
        reports = run_experiments(["fig7", "fig9"])
        assert set(reports) == {"fig7", "fig9"}
        assert "Fig. 7a" in reports["fig7"]
        assert "Fig. 9" in reports["fig9"]

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            run_experiments(["fig99"])

    def test_registry_covers_all_paper_results(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "fig3",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "ablations",
            "sweeps",
            "arena",
        }

    def test_arena_is_registered_last(self):
        # Seed-group positions are SeedSequence spawn keys: appending the
        # arena anywhere but last would silently re-seed every other
        # experiment and invalidate all existing artifacts.
        assert list(EXPERIMENTS)[-1] == "arena"


class TestSharding:
    def test_table1_sharded_equals_whole_run(self, test_scale):
        spec = EXPERIMENTS["table1"]
        shards = spec.shards(test_scale)
        assert len(shards) == 10  # 5 benchmarks x 2 flavors
        parts = [
            _execute_shard("table1", shard, test_scale, 5, None)
            for shard in shards
        ]
        combined = _assemble("table1", test_scale, 5, shards, parts)
        whole = _execute("table1", test_scale, 5, None)
        # Identical deterministic payloads and identity keys; only the
        # (volatile, manifest-only) timing sections may differ.
        assert combined.record.data == whole.record.data
        assert combined.record.key == whole.record.key
        assert set(combined.record.timing["shards"]) == {
            str(shard) for shard in shards
        }

    def test_fig8_shard_covers_one_benchmark(self, test_scale):
        outcome = _execute_shard("fig8", "pamap", test_scale, 5, None)
        cells = outcome.partial.cells
        assert {cell.benchmark for cell in cells} == {"pamap"}
        combined = _combine_fig8([outcome.partial])
        assert combined.cells == cells


class TestMain:
    def test_main_analytic_only(self, capsys, tmp_path):
        assert main(_cli(tmp_path, "--only", "fig7")) == 0
        out = capsys.readouterr().out
        assert "=== fig7 ===" in out
        assert "experiment scale" in out

    def test_main_seed_flag(self, capsys, tmp_path):
        assert main(_cli(tmp_path, "--only", "fig9", "--seed", "7")) == 0
        assert "fig9" in capsys.readouterr().out

    def test_messy_only_list(self, capsys, tmp_path):
        assert main(_cli(tmp_path, "--only", " fig9, fig7,,fig9,")) == 0
        out = capsys.readouterr().out
        assert out.count("=== fig9 ===") == 1
        assert "=== fig7 ===" in out

    def test_unknown_name_exits_2(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(_cli(tmp_path, "--only", "fig3, fig99"))
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "fig99" in err and "Traceback" not in err

    def test_bad_jobs_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(_cli(tmp_path, "--only", "fig7", "--jobs", "0"))
        assert excinfo.value.code == 2

    def test_bad_full_scale_env_exits_2(self, monkeypatch, capsys, tmp_path):
        monkeypatch.setenv("REPRO_FULL_SCALE", "definitely")
        with pytest.raises(SystemExit) as excinfo:
            main(_cli(tmp_path, "--only", "fig7"))
        assert excinfo.value.code == 2
        assert "REPRO_FULL_SCALE" in capsys.readouterr().err


class TestScaleEnv:
    def test_casefolded_truthy_values(self, monkeypatch):
        for value in ("TRUE", "Yes", " on ", "1"):
            monkeypatch.setenv("REPRO_FULL_SCALE", value)
            assert active_scale().name == "full", value

    def test_falsy_values(self, monkeypatch):
        for value in ("", "0", "FALSE", "No", "off"):
            monkeypatch.setenv("REPRO_FULL_SCALE", value)
            assert active_scale().name == "reduced", value

    def test_unrecognized_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "2")
        with pytest.raises(ConfigurationError, match="REPRO_FULL_SCALE"):
            active_scale()


class TestArtifacts:
    def test_json_smoke_jobs_2(self, capsys, tmp_path, tiny_scale_cli):
        out_dir = tmp_path / "arts"
        rc = main(
            _cli(
                tmp_path,
                "--only",
                FAST,
                "--jobs",
                "2",
                "--format",
                "json",
                "--out",
                str(out_dir),
            )
        )
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert [r["experiment"] for r in document["records"]] == [
            "fig7",
            "fig9",
        ]
        required = ("schema", "key", "seed", "child_seed", "scale", "env", "data")
        for record in document["records"]:
            for field in required:
                assert field in record, field
        for name in ("fig7", "fig9"):
            assert (out_dir / f"{name}.json").is_file()
            assert document["experiments"][name]["status"] == "run"
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["jobs"] == 2
        assert manifest["experiments"]["fig9"]["status"] == "run"
        assert (
            manifest["experiments"]["fig9"]["timing"]["elapsed_seconds"] >= 0
        )

    def test_resume_skips_up_to_date_artifacts(
        self, capsys, tmp_path, tiny_scale_cli
    ):
        out_dir = tmp_path / "arts"
        argv = _cli(tmp_path, "--only", "fig9", "--out", str(out_dir))
        assert main(argv) == 0
        first = (out_dir / "fig9.json").read_bytes()
        capsys.readouterr()
        assert main(argv) == 0
        assert "[skipped: artifact up to date" in capsys.readouterr().out
        assert (out_dir / "fig9.json").read_bytes() == first
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["experiments"]["fig9"]["status"] == "skipped"

    def test_resume_reruns_on_seed_change(self, tmp_path, tiny_scale_cli):
        out_dir = tmp_path / "arts"
        base = _cli(tmp_path, "--only", "fig9", "--out", str(out_dir))
        assert main(base + ["--seed", "1"]) == 0
        key_one = json.loads((out_dir / "fig9.json").read_text())["key"]
        assert main(base + ["--seed", "2"]) == 0
        key_two = json.loads((out_dir / "fig9.json").read_text())["key"]
        assert key_one != key_two

    def test_artifacts_exclude_timing_volatile(
        self, tmp_path, tiny_scale_cli
    ):
        out_dir = tmp_path / "arts"
        rc = main(
            _cli(tmp_path, "--only", "table1", "--out", str(out_dir))
        )
        assert rc == 0
        artifact = json.loads((out_dir / "table1.json").read_text())
        assert "timing" not in artifact
        for row in artifact["data"]["rows"]:
            assert "reasoning_seconds" not in row
        manifest = json.loads((out_dir / "manifest.json").read_text())
        timing = manifest["experiments"]["table1"]["timing"]
        assert any(
            path.endswith("reasoning_seconds") for path in timing["volatile"]
        )
        assert timing["shards"], "table1 should fan out in shards"


class TestJobsParity:
    def test_jobs_1_and_4_artifacts_byte_identical(
        self, tmp_path, tiny_scale_cli
    ):
        """Acceptance: same seed => byte-identical artifacts at any --jobs.

        Covers an analytic experiment (fig7), the cycle model (fig9),
        a stochastic attack (fig3) and the sharded table1. Spans are
        always recorded, so this run doubles as the acceptance check
        that tracing never leaks into artifact bytes; the span *shape*
        (names and nesting) in the manifest's volatile section must
        also agree across jobs levels — only the clock values may move.
        """
        names = "table1,fig3,fig7,fig9"
        outputs = {}
        span_shapes = {}
        for jobs in ("1", "4"):
            out_dir = tmp_path / f"jobs{jobs}"
            rc = main(
                [
                    "--only",
                    names,
                    "--jobs",
                    jobs,
                    "--seed",
                    "11",
                    "--out",
                    str(out_dir),
                    # One cache per jobs level: a shared cache would let
                    # the second run replay the first run's intermediates
                    # and mask parallelism-dependent nondeterminism.
                    "--cache",
                    str(tmp_path / f"cache{jobs}"),
                ]
            )
            assert rc == 0
            outputs[jobs] = {
                path.name: path.read_bytes()
                for path in sorted(out_dir.glob("*.json"))
                if path.name != "manifest.json"
            }
            manifest = json.loads((out_dir / "manifest.json").read_text())
            span_shapes[jobs] = {
                name: [
                    (s["name"], s["parent"])
                    for s in status["timing"]["spans"]
                ]
                for name, status in manifest["experiments"].items()
            }
        assert set(outputs["1"]) == {
            "table1.json",
            "fig3.json",
            "fig7.json",
            "fig9.json",
        }
        assert outputs["1"] == outputs["4"]
        assert span_shapes["1"] == span_shapes["4"]
        assert span_shapes["1"]["fig7"] == [("fig7", None)]
        # The sharded experiment records one span per work unit.
        assert len(span_shapes["1"]["table1"]) > 1
        assert all(
            name.startswith("table1/") and parent is None
            for name, parent in span_shapes["1"]["table1"]
        )


class TestModuleEntrypoint:
    def test_python_m_repro_smoke(self, tmp_path):
        """The issue's smoke line: python -m repro --only ... --jobs 2."""
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_FULL_SCALE", None)
        out_dir = tmp_path / "arts"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "--only",
                FAST,
                "--jobs",
                "2",
                "--format",
                "json",
                "--out",
                str(out_dir),
                "--cache",
                str(tmp_path / "cache"),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        document = json.loads(proc.stdout)
        assert {r["experiment"] for r in document["records"]} == {
            "fig7",
            "fig9",
        }
        assert (out_dir / "manifest.json").is_file()
