"""Tests for the attack operating-envelope sweeps."""

from repro.experiments.sweeps import (
    margin_vs_features,
    recovery_vs_dim,
    render_sweeps,
)


class TestRecoveryVsDim:
    def test_large_d_recovers_fully(self):
        points = recovery_vs_dim(dims=(2048,), n_features=48, seed=0)
        assert points[0].feature_accuracy == 1.0
        assert points[0].value_accuracy == 1.0

    def test_margin_grows_with_d(self):
        points = recovery_vs_dim(dims=(256, 2048), n_features=48, seed=1)
        assert points[1].median_margin > points[0].median_margin

    def test_recovery_monotone_in_d(self):
        points = recovery_vs_dim(dims=(128, 512, 2048), n_features=64, seed=2)
        accuracies = [p.feature_accuracy for p in points]
        assert accuracies == sorted(accuracies)
        assert accuracies[-1] == 1.0


class TestMarginVsFeatures:
    def test_dip_present_at_all_widths(self):
        points = margin_vs_features(feature_counts=(64, 256), dim=2048, seed=3)
        for point in points:
            assert point.separation > 0

    def test_margin_shrinks_with_width(self):
        points = margin_vs_features(
            feature_counts=(64, 512), dim=2048, seed=4
        )
        assert points[1].separation < points[0].separation


class TestRender:
    def test_renders_both_tables(self):
        text = render_sweeps(
            recovery_vs_dim(dims=(512,), n_features=32, seed=5),
            margin_vs_features(feature_counts=(32,), dim=512, seed=6),
        )
        assert "Recovery vs dimensionality" in text
        assert "Guess-dip margin" in text
