"""Tests for the FPGA datapath cycle/cost model (Fig. 9 substrate)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.adder_tree import (
    accumulator_width_bits,
    adder_count,
    tree_depth,
    tree_latency_cycles,
)
from repro.hardware.datapath import DatapathConfig
from repro.hardware.encoder_cost import (
    encoding_cycles,
    encoding_seconds,
    relative_encoding_time,
    relative_time_series,
)
from repro.hardware.memory_model import (
    BRAM36_BITS,
    MemoryBank,
    key_to_model_ratio,
    model_footprint,
)
from repro.hardware.pipeline import encoder_stages, schedule_encoder
from repro.hardware.report import estimate_resources, render_resource_table
from repro.hdlock.keygen import generate_key


class TestAdderTree:
    def test_depth(self):
        assert tree_depth(1) == 0
        assert tree_depth(2) == 1
        assert tree_depth(784) == 10
        assert tree_depth(1024) == 10

    def test_adder_count(self):
        assert adder_count(8) == 7
        assert adder_count(1) == 0

    def test_accumulator_width(self):
        # 2-bit inputs, depth 10 -> 12 bits at the root
        assert accumulator_width_bits(784) == 12

    def test_latency_equals_depth(self):
        assert tree_latency_cycles(784) == tree_depth(784)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            tree_depth(0)
        with pytest.raises(ConfigurationError):
            accumulator_width_bits(4, input_bits=0)


class TestDatapathConfig:
    def test_default_beats_at_paper_dim(self):
        cfg = DatapathConfig()
        assert cfg.accumulate_beats(10_000) == 19
        assert cfg.bind_beats(10_000) == 4

    def test_cycle_seconds(self):
        cfg = DatapathConfig(clock_mhz=200.0)
        assert cfg.cycle_seconds == pytest.approx(5e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DatapathConfig(accumulate_lanes=0)
        with pytest.raises(ConfigurationError):
            DatapathConfig(memory_ports=0)
        with pytest.raises(ConfigurationError):
            DatapathConfig(pipeline_fill=-1)
        with pytest.raises(ConfigurationError):
            DatapathConfig(clock_mhz=0)
        with pytest.raises(ConfigurationError):
            DatapathConfig().accumulate_beats(0)


class TestSchedule:
    def test_baseline_has_no_bind_stage(self):
        stages = encoder_stages(10_000, 0, DatapathConfig())
        assert [s.name for s in stages] == ["fetch", "accumulate"]

    def test_single_layer_has_no_bind_stage(self):
        stages = encoder_stages(10_000, 1, DatapathConfig())
        assert [s.name for s in stages] == ["fetch", "accumulate"]

    def test_two_layers_add_one_bind_pass(self):
        stages = encoder_stages(10_000, 2, DatapathConfig())
        bind = next(s for s in stages if s.name == "bind")
        assert bind.beats == DatapathConfig().bind_beats(10_000)

    def test_five_layers_add_four_bind_passes(self):
        stages = encoder_stages(10_000, 5, DatapathConfig())
        bind = next(s for s in stages if s.name == "bind")
        assert bind.beats == 4 * DatapathConfig().bind_beats(10_000)

    def test_cycles_per_sample_formula(self):
        schedule = schedule_encoder(784, 10_000, 0)
        cfg = DatapathConfig()
        expected = (
            cfg.pipeline_fill + tree_latency_cycles(784) + 784 * 19
        )
        assert schedule.cycles_per_sample == expected

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            schedule_encoder(0, 10_000, 1)
        with pytest.raises(ConfigurationError):
            encoder_stages(10_000, -1, DatapathConfig())


class TestEncoderCost:
    def test_paper_headline_l2_is_21_percent(self):
        assert relative_encoding_time(2, 784, 10_000) == pytest.approx(
            1.21, abs=0.005
        )

    def test_l1_is_free(self):
        assert relative_encoding_time(1, 784, 10_000) == pytest.approx(1.0)

    def test_linear_growth_from_l2(self):
        times = [relative_encoding_time(l, 784, 10_000) for l in range(1, 6)]
        increments = [times[i + 1] - times[i] for i in range(len(times) - 1)]
        # equal increments per extra layer (linear, paper Fig. 9)
        assert max(increments) - min(increments) < 1e-9

    def test_dataset_independence(self):
        curves = relative_time_series(
            range(1, 6), {"a": 784, "b": 561, "c": 27}, dim=10_000
        )
        at_l2 = [dict(curve)[2] for curve in curves.values()]
        assert max(at_l2) - min(at_l2) < 0.05

    def test_cycles_monotone_in_layers(self):
        cycles = [encoding_cycles(784, 10_000, l) for l in range(6)]
        assert cycles[0] == cycles[1]  # L=1 free
        assert all(cycles[i + 1] > cycles[i] for i in range(1, 5))

    def test_seconds_conversion(self):
        cfg = DatapathConfig(clock_mhz=100.0)
        cycles = encoding_cycles(100, 1000, 0, cfg)
        assert encoding_seconds(100, 1000, 0, cfg) == pytest.approx(
            cycles * 1e-8
        )


class TestMemoryModel:
    def test_bank_geometry(self):
        bank = MemoryBank("test", rows=784, dim=10_000, width_bits=2560)
        assert bank.words_per_row == 4
        assert bank.total_bits == 7_840_000
        assert bank.bram36_blocks == -(-7_840_000 // BRAM36_BITS)

    def test_rotated_read_costs_same_as_plain(self):
        bank = MemoryBank("test", rows=4, dim=128, width_bits=64)
        assert bank.read_cycles(0) == bank.read_cycles(100) == 1

    def test_rotation_out_of_range(self):
        bank = MemoryBank("test", rows=4, dim=128, width_bits=64)
        with pytest.raises(ConfigurationError):
            bank.read_cycles(128)

    def test_footprint(self):
        fp = model_footprint(784, 16, 10_000, 10)
        assert fp.feature_bits == 7_840_000
        assert fp.value_bits == 160_000
        assert fp.class_bits == 100_000
        assert fp.total_bytes == -(-fp.total_bits // 8)

    def test_key_is_tiny_versus_model(self):
        """The threat-model premise: key fits secure memory, model not."""
        key = generate_key(784, 2, 784, 10_000, rng=0)
        fp = model_footprint(784, 16, 10_000, 10)
        ratio = key_to_model_ratio(key, fp)
        assert ratio < 0.01  # kilobits vs megabits

    def test_invalid_footprint(self):
        with pytest.raises(ConfigurationError):
            model_footprint(0, 16, 10_000, 10)


class TestResourceReport:
    def test_bind_unit_only_from_l2(self):
        r0 = estimate_resources(784, 16, 10_000, 0)
        r1 = estimate_resources(784, 16, 10_000, 1)
        r2 = estimate_resources(784, 16, 10_000, 2)
        assert r0.bind_luts == 0
        assert r1.bind_luts == 0
        assert r2.bind_luts > 0

    def test_lock_logic_is_small_fraction(self):
        r2 = estimate_resources(784, 16, 10_000, 2)
        assert r2.bind_luts < r2.total_luts / 2

    def test_render_table(self):
        reports = [estimate_resources(784, 16, 10_000, l) for l in range(3)]
        text = render_resource_table(reports)
        assert "BRAM36" in text
        assert str(reports[2].total_luts) in text
