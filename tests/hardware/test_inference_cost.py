"""Tests for the end-to-end inference cost extension."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.datapath import DatapathConfig
from repro.hardware.encoder_cost import encoding_cycles, relative_encoding_time
from repro.hardware.inference_cost import (
    inference_cycles,
    relative_inference_time,
    similarity_cycles,
    throughput_samples_per_second,
)


class TestSimilarityCycles:
    def test_scales_with_classes(self):
        c10 = similarity_cycles(10, 10_000)
        c26 = similarity_cycles(26, 10_000)
        assert c26 > c10

    def test_formula(self):
        cfg = DatapathConfig()
        expected = 10 * cfg.accumulate_beats(10_000) + 4  # tree depth of 10
        assert similarity_cycles(10, 10_000, cfg) == expected

    def test_needs_two_classes(self):
        with pytest.raises(ConfigurationError):
            similarity_cycles(1, 10_000)


class TestInferenceCycles:
    def test_is_encode_plus_search(self):
        total = inference_cycles(784, 10_000, 10, 2)
        assert total == encoding_cycles(784, 10_000, 2) + similarity_cycles(
            10, 10_000
        )

    def test_monotone_in_layers(self):
        cycles = [inference_cycles(784, 10_000, 10, l) for l in range(5)]
        assert cycles[0] == cycles[1]
        assert all(b > a for a, b in zip(cycles[1:], cycles[2:], strict=False))


class TestRelativeInferenceTime:
    def test_diluted_below_encoding_overhead(self):
        """The search stage is lock-independent, so end-to-end overhead
        is strictly below the encoding-only overhead of Fig. 9."""
        encode_only = relative_encoding_time(2, 784, 10_000)
        end_to_end = relative_inference_time(2, 784, 10_000, 10)
        assert 1.0 < end_to_end < encode_only

    def test_small_models_dilute_more(self):
        wide = relative_inference_time(2, 784, 10_000, 10)
        narrow = relative_inference_time(2, 27, 10_000, 5)
        assert narrow < wide

    def test_l1_free_end_to_end(self):
        assert relative_inference_time(1, 784, 10_000, 10) == pytest.approx(1.0)


class TestThroughput:
    def test_positive_and_clock_scaled(self):
        slow = throughput_samples_per_second(
            784, 10_000, 10, 2, DatapathConfig(clock_mhz=100)
        )
        fast = throughput_samples_per_second(
            784, 10_000, 10, 2, DatapathConfig(clock_mhz=200)
        )
        assert fast == pytest.approx(2 * slow)

    def test_lock_reduces_throughput_modestly(self):
        base = throughput_samples_per_second(784, 10_000, 10, 0)
        locked = throughput_samples_per_second(784, 10_000, 10, 2)
        assert 0.7 < locked / base < 1.0
