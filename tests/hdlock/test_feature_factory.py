"""Tests for locked feature-hypervector derivation (Eq. 9)."""

import numpy as np
import pytest

from repro.errors import KeyFormatError
from repro.hdlock.feature_factory import derive_feature_hv, derive_feature_matrix
from repro.hdlock.keygen import generate_key
from repro.hv.ops import bind, permute
from repro.hv.properties import orthogonality_report
from repro.hv.random import random_pool
from repro.memory.key import LockKey, SubKey

P, D = 12, 1024


@pytest.fixture
def pool() -> np.ndarray:
    return random_pool(P, D, rng=0)


class TestDeriveFeatureHV:
    def test_single_layer_is_rotation(self, pool):
        sk = SubKey((3,), (17,))
        np.testing.assert_array_equal(
            derive_feature_hv(pool, sk), permute(pool[3], 17)
        )

    def test_two_layers_is_bound_product(self, pool):
        sk = SubKey((1, 4), (5, 250))
        expected = bind(permute(pool[1], 5), permute(pool[4], 250))
        np.testing.assert_array_equal(derive_feature_hv(pool, sk), expected)

    def test_same_base_different_rotations_ok(self, pool):
        sk = SubKey((2, 2), (0, 100))
        out = derive_feature_hv(pool, sk)
        expected = bind(pool[2], permute(pool[2], 100))
        np.testing.assert_array_equal(out, expected)
        # and the result is not degenerate
        assert not (out == 1).all()


class TestDeriveFeatureMatrix:
    def test_matches_per_feature_derivation(self, pool):
        key = generate_key(8, 3, P, D, rng=1)
        matrix = derive_feature_matrix(pool, key)
        for i, sk in enumerate(key.subkeys):
            np.testing.assert_array_equal(matrix[i], derive_feature_hv(pool, sk))

    def test_output_bipolar(self, pool):
        key = generate_key(6, 2, P, D, rng=2)
        matrix = derive_feature_matrix(pool, key)
        assert set(np.unique(matrix)).issubset({-1, 1})

    def test_derived_features_quasi_orthogonal(self, pool):
        key = generate_key(30, 2, P, D, rng=3)
        report = orthogonality_report(derive_feature_matrix(pool, key))
        assert report.mean_distance == pytest.approx(0.5, abs=0.02)

    def test_more_features_than_pool(self, pool):
        """P < N works: features reuse bases under different rotations."""
        key = generate_key(3 * P, 2, P, D, rng=4)
        matrix = derive_feature_matrix(pool, key)
        assert matrix.shape == (3 * P, D)
        report = orthogonality_report(matrix)
        assert report.mean_distance == pytest.approx(0.5, abs=0.03)

    def test_key_pool_mismatch(self, pool):
        bad = LockKey([SubKey((0,), (0,))], pool_size=P + 5, dim=D)
        with pytest.raises(KeyFormatError):
            derive_feature_matrix(pool, bad)

    def test_wrong_dim_key(self, pool):
        bad = LockKey([SubKey((0,), (0,))], pool_size=P, dim=D * 2)
        with pytest.raises(KeyFormatError):
            derive_feature_matrix(pool, bad)

    def test_deterministic(self, pool):
        key = generate_key(5, 2, P, D, rng=5)
        np.testing.assert_array_equal(
            derive_feature_matrix(pool, key), derive_feature_matrix(pool, key)
        )
