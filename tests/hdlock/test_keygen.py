"""Tests for HDLock key generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hdlock.keygen import generate_key, identity_like_key


class TestGenerateKey:
    def test_shape(self):
        key = generate_key(10, 3, 16, 256, rng=0)
        assert key.n_features == 10
        assert key.layers == 3
        assert key.pool_size == 16
        assert key.dim == 256

    def test_ranges(self):
        key = generate_key(50, 2, 8, 128, rng=1)
        idx, rot = key.to_arrays()
        assert idx.min() >= 0 and idx.max() < 8
        assert rot.min() >= 0 and rot.max() < 128

    def test_no_repeated_pairs_within_subkey(self):
        # tiny pair space forces the distinctness logic to matter
        key = generate_key(4, 3, 2, 2, rng=2)
        for sk in key.subkeys:
            assert len(set(sk.pairs())) == sk.layers

    def test_subkeys_distinct_across_features(self):
        key = generate_key(4, 1, 2, 2, rng=3)  # only 4 possible subkeys
        fingerprints = {(sk.indices, sk.rotations) for sk in key.subkeys}
        assert len(fingerprints) == 4

    def test_reproducible(self):
        assert generate_key(8, 2, 8, 64, rng=7) == generate_key(8, 2, 8, 64, rng=7)

    def test_different_seeds_differ(self):
        assert generate_key(8, 2, 8, 64, rng=1) != generate_key(8, 2, 8, 64, rng=2)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            generate_key(0, 1, 4, 16)
        with pytest.raises(ConfigurationError):
            generate_key(1, 0, 4, 16)
        with pytest.raises(ConfigurationError):
            generate_key(1, 1, 0, 16)

    def test_layers_exceeding_pair_space(self):
        with pytest.raises(ConfigurationError):
            generate_key(1, 5, 2, 2)

    def test_more_features_than_distinct_subkeys(self):
        # C(2*2, 3) = 4 possible subkeys < 20 features: must refuse
        # instead of looping forever in rejection sampling.
        with pytest.raises(ConfigurationError):
            generate_key(20, 3, 2, 2)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_always_valid_keys(self, n_features, layers):
        key = generate_key(n_features, layers, 8, 64, rng=n_features)
        idx, rot = key.to_arrays()
        assert idx.shape == (n_features, layers)
        assert rot.shape == (n_features, layers)


class TestIdentityLikeKey:
    def test_single_layer_pool_equals_features(self):
        key = identity_like_key(12, 128, rng=0)
        assert key.layers == 1
        assert key.pool_size == 12
        idx, _ = key.to_arrays()
        # each base used exactly once
        assert sorted(idx[:, 0]) == list(range(12))

    def test_rotations_randomized(self):
        key = identity_like_key(32, 4096, rng=1)
        _, rot = key.to_arrays()
        assert len(np.unique(rot)) > 16
