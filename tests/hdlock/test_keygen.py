"""Tests for HDLock key generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, KeyFormatError
from repro.hdlock.keygen import (
    generate_key,
    generate_key_reference,
    generate_keys,
    identity_like_key,
)
from repro.memory.key import KeyBatch


class TestGenerateKey:
    def test_shape(self):
        key = generate_key(10, 3, 16, 256, rng=0)
        assert key.n_features == 10
        assert key.layers == 3
        assert key.pool_size == 16
        assert key.dim == 256

    def test_ranges(self):
        key = generate_key(50, 2, 8, 128, rng=1)
        idx, rot = key.to_arrays()
        assert idx.min() >= 0 and idx.max() < 8
        assert rot.min() >= 0 and rot.max() < 128

    def test_no_repeated_pairs_within_subkey(self):
        # tiny pair space forces the distinctness logic to matter
        key = generate_key(4, 3, 2, 2, rng=2)
        for sk in key.subkeys:
            assert len(set(sk.pairs())) == sk.layers

    def test_subkeys_distinct_across_features(self):
        key = generate_key(4, 1, 2, 2, rng=3)  # only 4 possible subkeys
        fingerprints = {(sk.indices, sk.rotations) for sk in key.subkeys}
        assert len(fingerprints) == 4

    def test_reproducible(self):
        assert generate_key(8, 2, 8, 64, rng=7) == generate_key(8, 2, 8, 64, rng=7)

    def test_different_seeds_differ(self):
        assert generate_key(8, 2, 8, 64, rng=1) != generate_key(8, 2, 8, 64, rng=2)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            generate_key(0, 1, 4, 16)
        with pytest.raises(ConfigurationError):
            generate_key(1, 0, 4, 16)
        with pytest.raises(ConfigurationError):
            generate_key(1, 1, 0, 16)

    def test_layers_exceeding_pair_space(self):
        with pytest.raises(ConfigurationError):
            generate_key(1, 5, 2, 2)

    def test_more_features_than_distinct_subkeys(self):
        # C(2*2, 3) = 4 possible subkeys < 20 features: must refuse
        # instead of looping forever in rejection sampling.
        with pytest.raises(ConfigurationError):
            generate_key(20, 3, 2, 2)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_always_valid_keys(self, n_features, layers):
        key = generate_key(n_features, layers, 8, 64, rng=n_features)
        idx, rot = key.to_arrays()
        assert idx.shape == (n_features, layers)
        assert rot.shape == (n_features, layers)


class TestGenerateKeys:
    def test_shape_and_metadata(self):
        batch = generate_keys(20, 10, 3, 16, 256, rng=0)
        assert isinstance(batch, KeyBatch)
        assert len(batch) == 20
        assert batch.n_features == 10 and batch.layers == 3
        assert batch.indices.shape == (20, 10, 3)
        assert batch.rotations.shape == (20, 10, 3)

    def test_compact_dtype(self):
        batch = generate_keys(4, 8, 2, 8, 64, rng=1)
        assert batch.indices.dtype == np.int32
        assert batch.rotations.dtype == np.int32

    def test_ranges(self):
        batch = generate_keys(30, 12, 2, 8, 128, rng=2)
        assert batch.indices.min() >= 0 and batch.indices.max() < 8
        assert batch.rotations.min() >= 0 and batch.rotations.max() < 128

    def test_single_device_parity_with_generate_key(self):
        """Same seed => generate_keys(1, ...) == generate_key(...)."""
        for seed in range(5):
            assert (
                generate_keys(1, 8, 2, 8, 64, rng=seed).key(0)
                == generate_key(8, 2, 8, 64, rng=seed)
            )

    def test_within_subkey_pairs_distinct_tiny_space(self):
        # tiny pair space forces the vectorized dedup to actually fire
        batch = generate_keys(40, 4, 3, 2, 2, rng=3)
        for key in batch:
            for sk in key.subkeys:
                assert len(set(sk.pairs())) == sk.layers

    def test_subkeys_distinct_across_features_tiny_space(self):
        # only 4 possible subkeys: every device must use all of them
        batch = generate_keys(40, 4, 1, 2, 2, rng=4)
        for key in batch:
            fingerprints = {(sk.indices, sk.rotations) for sk in key.subkeys}
            assert len(fingerprints) == 4

    def test_reproducible(self):
        a = generate_keys(6, 8, 2, 8, 64, rng=7)
        b = generate_keys(6, 8, 2, 8, 64, rng=7)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.rotations, b.rotations)

    def test_different_seeds_differ(self):
        a = generate_keys(6, 8, 2, 8, 64, rng=1)
        b = generate_keys(6, 8, 2, 8, 64, rng=2)
        assert not np.array_equal(a.indices, b.indices) or not np.array_equal(
            a.rotations, b.rotations
        )

    def test_devices_draw_independent_keys(self):
        batch = generate_keys(8, 16, 2, 16, 512, rng=5)
        assert not np.array_equal(batch.indices[0], batch.indices[1])

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            generate_keys(0, 8, 2, 8, 64)
        with pytest.raises(ConfigurationError):
            generate_keys(1, 0, 2, 8, 64)
        with pytest.raises(ConfigurationError):
            generate_keys(1, 8, 0, 8, 64)
        with pytest.raises(ConfigurationError):
            generate_keys(1, 8, 2, 0, 64)

    def test_infeasible_shapes_refused(self):
        with pytest.raises(ConfigurationError):
            generate_keys(3, 1, 5, 2, 2)  # L > P*D
        with pytest.raises(ConfigurationError):
            generate_keys(3, 20, 3, 2, 2)  # N > C(P*D, L)

    def test_key_accessor_bounds(self):
        batch = generate_keys(3, 4, 1, 4, 16, rng=6)
        with pytest.raises(KeyFormatError):
            batch.key(3)
        with pytest.raises(KeyFormatError):
            batch.key(-1)

    def test_uniform_marginals_at_scale(self):
        """Sanity: bulk draws cover the index and rotation ranges about
        uniformly (chi-square-ish bound, loose)."""
        batch = generate_keys(400, 8, 2, 8, 16, rng=8)
        index_counts = np.bincount(batch.indices.ravel(), minlength=8)
        rotation_counts = np.bincount(batch.rotations.ravel(), minlength=16)
        assert index_counts.min() > 0.8 * index_counts.mean()
        assert rotation_counts.min() > 0.8 * rotation_counts.mean()


class TestReferenceDistributionParity:
    """The scalar reference loop and the vectorized bulk path must draw
    from the same distribution (their seeded streams legitimately
    differ — the bulk path consumes batched draws)."""

    def test_reference_produces_valid_keys(self):
        key = generate_key_reference(6, 2, 4, 32, rng=0)
        assert key.n_features == 6 and key.layers == 2
        for sk in key.subkeys:
            assert len(set(sk.pairs())) == sk.layers

    def test_reference_respects_subkey_distinctness(self):
        key = generate_key_reference(4, 1, 2, 2, rng=1)
        fingerprints = {(sk.indices, sk.rotations) for sk in key.subkeys}
        assert len(fingerprints) == 4

    def test_reference_rejects_infeasible_shapes(self):
        with pytest.raises(ConfigurationError):
            generate_key_reference(20, 3, 2, 2)

    def test_marginals_match_bulk_path(self):
        """Index/rotation marginal frequencies agree between the two
        generators within a loose chi-square-ish tolerance."""
        P, D = 4, 8
        ref_idx = np.concatenate(
            [
                generate_key_reference(16, 2, P, D, rng=seed).to_arrays()[0].ravel()
                for seed in range(40)
            ]
        )
        bulk = generate_keys(40, 16, 2, P, D, rng=99)
        ref_counts = np.bincount(ref_idx, minlength=P) / ref_idx.size
        bulk_counts = (
            np.bincount(bulk.indices.ravel(), minlength=P) / bulk.indices.size
        )
        np.testing.assert_allclose(ref_counts, bulk_counts, atol=0.05)

    def test_subkey_ordering_convention_matches(self):
        """Both paths store each subkey sorted by (index, rotation)."""
        ref = generate_key_reference(8, 3, 8, 16, rng=5)
        bulk = generate_keys(1, 8, 3, 8, 16, rng=5).key(0)
        for key in (ref, bulk):
            idx, rot = key.to_arrays()
            codes = idx * 16 + rot
            assert (np.diff(codes, axis=1) > 0).all()


class TestIdentityLikeKey:
    def test_single_layer_pool_equals_features(self):
        key = identity_like_key(12, 128, rng=0)
        assert key.layers == 1
        assert key.pool_size == 12
        idx, _ = key.to_arrays()
        # each base used exactly once
        assert sorted(idx[:, 0]) == list(range(12))

    def test_rotations_randomized(self):
        key = identity_like_key(32, 4096, rng=1)
        _, rot = key.to_arrays()
        assert len(np.unique(rot)) > 16
