"""Performance gate for fleet-scale bulk keygen.

Marked ``slow`` (nightly ``pytest -m slow`` pass): wall-clock assertions
do not belong in tier-1. The gate sits far under the measured headroom —
bulk keygen runs hundreds of times faster than the per-key Python loop
at fleet shape, and the gate only demands 10x.
"""

from __future__ import annotations

import time

import pytest

from repro.hdlock.keygen import generate_key_reference, generate_keys

#: Fleet shape: the paper's MNIST feature count at key depth 2, at the
#: reduced experiment dimensionality.
FLEET_DEVICES = 100_000
N, L, P, D = 784, 2, 784, 2048

#: Per-key loop sample — looping all 100k would take minutes for no
#: extra statistical power; the loop rate is measured on a sample.
LOOP_SAMPLE = 64


@pytest.mark.slow
def test_bulk_keygen_at_least_10x_per_key_loop():
    start = time.perf_counter()
    batch = generate_keys(FLEET_DEVICES, N, L, P, D, rng=0)
    bulk_seconds = time.perf_counter() - start
    assert len(batch) == FLEET_DEVICES

    start = time.perf_counter()
    for device in range(LOOP_SAMPLE):
        generate_key_reference(N, L, P, D, rng=device)
    loop_seconds = time.perf_counter() - start

    bulk_rate = FLEET_DEVICES / bulk_seconds
    loop_rate = LOOP_SAMPLE / loop_seconds
    assert bulk_rate >= 10 * loop_rate, (
        f"bulk {bulk_rate:.0f} keys/s vs loop {loop_rate:.0f} keys/s "
        f"({bulk_rate / loop_rate:.1f}x < 10x gate)"
    )
